"""EXP-T11: consistency under CAD + EAP is NP-complete (Theorem 11).

The claim has no table in the paper; its measurable shape is *exponential
growth* of any exact decision procedure.  The series below runs the exact
CAD solver on Theorem 11 reduction instances of growing size (planted
NAE-satisfiable formulas, so every instance is consistent and the solver
cannot get lucky with an early refutation), and contrasts it with the
polynomial open-world test (Theorem 12) on the *same databases* — the gap
between the two series is the paper's point.

The reduction is also cross-checked against the brute-force NAE oracle on
every round.
"""

import pytest

from repro.consistency.cad import cad_consistency
from repro.consistency.pd_consistency import pd_consistency
from repro.consistency.reduction import reduce_nae3sat_to_cad_consistency
from repro.dependencies.conversion import fds_to_pds
from repro.sat.nae3sat import nae_backtracking
from repro.workloads.random_formulas import random_nae_satisfiable_3cnf


def _instance(variables: int, seed: int):
    formula = random_nae_satisfiable_3cnf(variables, max(2, variables), seed=seed)
    instance = reduce_nae3sat_to_cad_consistency(formula)
    return formula, instance


@pytest.mark.benchmark(group="EXP-T11 CAD consistency (exact, NP-complete)")
@pytest.mark.parametrize("variables", [3, 4, 5, 6])
def test_cad_solver_scaling(benchmark, variables, rng_seed):
    formula, instance = _instance(variables, rng_seed + variables)

    def run():
        return cad_consistency(instance.database, list(instance.fds))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["search_nodes"] = result.search_nodes
    assert result.consistent  # planted formulas are NAE-satisfiable
    assert nae_backtracking(formula) is not None


@pytest.mark.benchmark(group="EXP-T11 contrast: open-world test on the same databases")
@pytest.mark.parametrize("variables", [3, 4, 5, 6])
def test_open_world_test_on_same_instances(benchmark, variables, rng_seed):
    _, instance = _instance(variables, rng_seed + variables)
    pds = fds_to_pds(instance.fds)

    def run():
        return pd_consistency(instance.database, pds)

    result = benchmark(run)
    assert result.consistent


def _unsatisfiable_formula(variables: int, seed: int):
    """A genuinely NAE-unsatisfiable proper 3CNF (dense random, verified by the oracle).

    Refuting such an instance forces the exact CAD solver to exhaust its
    search space, which is where the exponential behaviour of Theorem 11
    becomes visible (satisfiable instances can be lucky).
    """
    from repro.workloads.random_formulas import random_3cnf

    attempt = 0
    while True:
        formula = random_3cnf(variables, 4 * variables + attempt, seed=seed + attempt)
        if nae_backtracking(formula) is None:
            return formula
        attempt += 1


@pytest.mark.benchmark(group="EXP-T11 unsatisfiable (refutation) instances")
@pytest.mark.parametrize("variables", [3, 4, 5, 6])
def test_cad_solver_on_unsatisfiable_instances(benchmark, variables, rng_seed):
    formula = _unsatisfiable_formula(variables, rng_seed + 17 * variables)
    instance = reduce_nae3sat_to_cad_consistency(formula)

    def run():
        return cad_consistency(instance.database, list(instance.fds))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["search_nodes"] = result.search_nodes
    assert not result.consistent
