"""EXP-T12: the polynomial-time consistency test for a database and a set of PDs.

The series sweeps the database size (relations × tuples) with a fixed mixed
PD set (FPDs plus one sum PD) and measures the full Theorem 12 pipeline:
normalization (binarize, close with ALG, prune) plus the Honeyman chase.
The expected shape is smooth polynomial growth — in contrast to the
exponential EXP-T11 series on comparable input sizes.

A second series isolates the two pipeline stages (normalization vs chase) as
an ablation of where the time goes.
"""

import pytest

from repro.consistency.normalization import normalize_dependencies
from repro.consistency.pd_consistency import pd_consistency, pd_consistency_many
from repro.relational.chase import chase_database
from repro.relational.chase_engine import ChaseEngine
from repro.relational.weak_instance import weak_instance_consistency
from repro.workloads.random_relations import random_consistent_database

CONSTRAINTS = ["A = A*B", "B = B*C", "D = A + B", "C = C*E"]


def _database(scale: int, seed: int):
    database, _hidden = random_consistent_database(
        relation_count=2 + scale,
        universe_size=5,
        attributes_per_relation=3,
        tuples_per_relation=2 * scale,
        seed=seed,
    )
    return database


@pytest.mark.benchmark(group="EXP-T12 PD consistency (polynomial pipeline)")
@pytest.mark.parametrize("scale", [1, 2, 4, 8])
def test_pd_consistency_scaling(benchmark, scale, rng_seed):
    database = _database(scale, rng_seed + scale)

    def run():
        return pd_consistency(database, CONSTRAINTS)

    result = benchmark(run)
    assert result.consistent in (True, False)
    # The verdict must agree with running the chase on the normalized FD set directly.
    normalized = normalize_dependencies(CONSTRAINTS)
    assert result.consistent == weak_instance_consistency(database, normalized.fds).consistent


@pytest.mark.benchmark(group="EXP-T12 ablation: normalization vs chase")
@pytest.mark.parametrize("stage", ["normalize", "chase", "full"])
def test_pipeline_stage_costs(benchmark, stage, rng_seed):
    database = _database(4, rng_seed)
    normalized = normalize_dependencies(CONSTRAINTS)

    if stage == "normalize":
        benchmark(normalize_dependencies, CONSTRAINTS)
    elif stage == "chase":
        result = benchmark(weak_instance_consistency, database, normalized.fds)
        assert result.consistent in (True, False)
    else:
        result = benchmark(pd_consistency, database, CONSTRAINTS)
        assert result.consistent in (True, False)


@pytest.mark.benchmark(group="EXP-T12 chase stage: naive restart vs indexed engine")
@pytest.mark.parametrize("impl", ["naive", "indexed"])
def test_chase_stage_engine_comparison(benchmark, impl, rng_seed):
    """The Honeyman chase over the (large) normalized FD set, both strategies.

    The normalized set for the mixed PD constraints has dozens of FDs over
    the extended universe; the naive chase rescans every row for every FD on
    every pass, the engine only touches merge deltas.
    """
    database = _database(8, rng_seed + 8)
    normalized = normalize_dependencies(CONSTRAINTS)
    engine = ChaseEngine(normalized.fds)

    def run_naive():
        return chase_database(database, normalized.fds)

    def run_indexed():
        return engine.chase_database(database)

    result = benchmark(run_naive if impl == "naive" else run_indexed)
    assert result.consistent in (True, False)


@pytest.mark.benchmark(group="EXP-T12 batched consistency (normalize once vs per call)")
@pytest.mark.parametrize("mode", ["per_call", "batched"])
def test_batched_consistency(benchmark, mode, rng_seed):
    """Amortizing step 1 (normalization + engine build) across many databases."""
    databases = [_database(2, rng_seed + 400 + i) for i in range(6)]

    def per_call():
        return [pd_consistency(database, CONSTRAINTS) for database in databases]

    def batched():
        return pd_consistency_many(databases, CONSTRAINTS)

    results = benchmark(per_call if mode == "per_call" else batched)
    assert len(results) == len(databases)
    verdicts = [r.consistent for r in results]
    assert all(v in (True, False) for v in verdicts)
