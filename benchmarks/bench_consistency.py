"""EXP-T12: the polynomial-time consistency test for a database and a set of PDs.

The series sweeps the database size (relations × tuples) with a fixed mixed
PD set (FPDs plus one sum PD) and measures the full Theorem 12 pipeline:
normalization (binarize, close with ALG, prune) plus the Honeyman chase.
The expected shape is smooth polynomial growth — in contrast to the
exponential EXP-T11 series on comparable input sizes.

A second series isolates the two pipeline stages (normalization vs chase) as
an ablation of where the time goes.
"""

import pytest

from repro.consistency.normalization import normalize_dependencies
from repro.consistency.pd_consistency import pd_consistency
from repro.relational.weak_instance import weak_instance_consistency
from repro.workloads.random_relations import random_consistent_database

CONSTRAINTS = ["A = A*B", "B = B*C", "D = A + B", "C = C*E"]


def _database(scale: int, seed: int):
    database, _hidden = random_consistent_database(
        relation_count=2 + scale,
        universe_size=5,
        attributes_per_relation=3,
        tuples_per_relation=2 * scale,
        seed=seed,
    )
    return database


@pytest.mark.benchmark(group="EXP-T12 PD consistency (polynomial pipeline)")
@pytest.mark.parametrize("scale", [1, 2, 4, 8])
def test_pd_consistency_scaling(benchmark, scale, rng_seed):
    database = _database(scale, rng_seed + scale)

    def run():
        return pd_consistency(database, CONSTRAINTS)

    result = benchmark(run)
    assert result.consistent in (True, False)
    # The verdict must agree with running the chase on the normalized FD set directly.
    normalized = normalize_dependencies(CONSTRAINTS)
    assert result.consistent == weak_instance_consistency(database, normalized.fds).consistent


@pytest.mark.benchmark(group="EXP-T12 ablation: normalization vs chase")
@pytest.mark.parametrize("stage", ["normalize", "chase", "full"])
def test_pipeline_stage_costs(benchmark, stage, rng_seed):
    database = _database(4, rng_seed)
    normalized = normalize_dependencies(CONSTRAINTS)

    if stage == "normalize":
        benchmark(normalize_dependencies, CONSTRAINTS)
    elif stage == "chase":
        result = benchmark(weak_instance_consistency, database, normalized.fds)
        assert result.consistent in (True, False)
    else:
        result = benchmark(pd_consistency, database, CONSTRAINTS)
        assert result.consistent in (True, False)
