"""EXP-FLT: fault tolerance — supervision overhead and restart-to-warm latency.

The supervision claim: replacing the unsupervised ``multiprocessing.Pool``
execution path (PR 7) with the supervised worker pool — liveness sentinels,
reply validation, dynamic unit dealing, the retry/split/quarantine ladder —
costs **under 5%** on fault-free throughput, and a worker crashed mid-stream
comes back *warm* (snapshot-shipped restore) fast enough that the stream's
wall clock barely moves.  Series on the 200-request acceptance-shaped mix:

* **fault-free overhead** — (a) :func:`pool_map_encoded`, the retained PR 7
  ``Pool`` baseline (static greedy deal, no supervision); (b) the supervised
  :class:`ShardExecutor` on the same encoded lines.  Both build their worker
  pools inside the timed region, so the comparison includes process spawn
  and warm-up on both sides.
* **restart-to-warm** — the supervised executor with snapshot-shipped
  workers, (a) fault-free and (b) under a seeded plan that SIGKILLs worker 0
  on its first unit (incarnation 0 only — a transient crash).  The timed
  difference is the cost of detecting the crash, respawning from the
  snapshot and retrying the lost unit; :func:`measure_fault_report` also
  reports the supervisor's own ``restart_seconds`` accounting.

Every round asserts byte-identity against the in-process planner pipeline —
supervision and recovery must never change an answer.
"""

import time

import pytest

from repro.service.executor import ShardExecutor, pool_map_encoded
from repro.service.faults import Fault, FaultPlan
from repro.service.planner import execute_plan
from repro.service.session import Session
from repro.service.snapshot import dump_snapshot
from repro.service.wire import dump_request_line, dump_result_line
from repro.workloads.random_service import random_service_requests

#: The acceptance-shaped mix: 200 mixed requests over two small theories.
STREAM_COUNT = 200

#: A transient crash: worker 0 dies starting its first unit, first life only.
CRASH_ONCE = FaultPlan(
    seed=20260617, faults=(Fault(kind="crash_worker", worker=0, unit=0, incarnation=0),)
)


def _stream(seed: int):
    return random_service_requests(
        STREAM_COUNT,
        seed=seed,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


def _expected(requests):
    return [dump_result_line(result) for result in execute_plan(Session(), requests)]


@pytest.mark.benchmark(group="EXP-FLT fault-free: unsupervised Pool baseline vs supervised executor")
@pytest.mark.parametrize("mode", ["pool_baseline", "supervised"])
def test_supervision_overhead(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)

    if mode == "pool_baseline":

        def run():
            return pool_map_encoded(lines, shards=2)

    else:

        def run():
            with ShardExecutor(shards=2) as executor:
                return executor.execute_encoded(lines, requests=requests)

    out = benchmark(run)
    assert out == expected


@pytest.mark.benchmark(group="EXP-FLT restart-to-warm: snapshot-shipped workers, transient crash")
@pytest.mark.parametrize("mode", ["fault_free", "crash_once"])
def test_restart_to_warm(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)
    snapshot = dump_snapshot(Session())
    fault_plan = CRASH_ONCE.to_json() if mode == "crash_once" else None

    def run():
        with ShardExecutor(shards=2, snapshot=snapshot, fault_plan=fault_plan) as executor:
            out = executor.execute_encoded(lines, requests=requests)
            return out, executor.supervision_stats()

    out, stats = benchmark(run)
    assert out == expected  # recovery never changes an answer
    if mode == "crash_once":
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1


def measure_fault_report(seed: int = 20260617, rounds: int = 3) -> dict:
    """The acceptance measurement: supervision overhead and restart latency.

    Min-of-``rounds`` wall times for the Pool baseline and the supervised
    executor (fault-free), plus one crash-injected supervised run reporting
    the supervisor's restart accounting.  Importable so the CI smoke and the
    README numbers are computed the same way.
    """
    requests = _stream(seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)

    def _time(fn):
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - started)
            assert out == expected
        return best

    def _supervised():
        with ShardExecutor(shards=2) as executor:
            return executor.execute_encoded(lines, requests=requests)

    pool_seconds = _time(lambda: pool_map_encoded(lines, shards=2))
    supervised_seconds = _time(_supervised)

    snapshot = dump_snapshot(Session())
    with ShardExecutor(shards=2, snapshot=snapshot, fault_plan=CRASH_ONCE.to_json()) as executor:
        assert executor.execute_encoded(lines, requests=requests) == expected
        crash_stats = executor.supervision_stats()
    assert crash_stats["restarts"] == 1

    return {
        "stream": {"count": STREAM_COUNT, "seed": seed},
        "pool_seconds": pool_seconds,
        "supervised_seconds": supervised_seconds,
        "overhead": supervised_seconds / pool_seconds - 1.0,
        "restart_to_warm_seconds": crash_stats["restart_seconds"],
        "crash_stats": crash_stats,
    }


def test_supervision_overhead_meets_the_5_percent_bar(rng_seed):
    """The ISSUE 8 acceptance criterion, pinned: supervised within 5% of Pool."""
    report = measure_fault_report(seed=rng_seed, rounds=3)
    assert report["overhead"] < 0.05, report
