"""Merge ``BENCH_*.json`` artifacts into one ``BENCH_trajectory.json``.

Each CI run exports one pytest-benchmark JSON file per experiment
(``BENCH_chase_engine.json``, ``BENCH_implication.json``, ...).  This script
collapses them into a single trajectory artifact so a run's whole benchmark
story ships (and downloads) as one file:

    python benchmarks/collect.py                     # glob BENCH_*.json in cwd
    python benchmarks/collect.py a.json b.json -o out.json

The output keeps, per source file, the experiment map tag (see
``benchmarks/conftest.py``) and per-benchmark summary statistics — enough to
compare runs over time without hauling the full per-round data around.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

#: Summary statistics copied per benchmark (full round data stays behind).
_STATS = ("min", "max", "mean", "stddev", "median", "rounds", "iterations")

#: The merged trajectory's own format version.
TRAJECTORY_VERSION = 1


def summarize_file(path: Path) -> dict:
    """One artifact's summary: file name, experiment map, per-benchmark stats."""
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    benchmarks = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("name"),
                "group": bench.get("group"),
                "params": bench.get("params"),
                "stats": {key: stats.get(key) for key in _STATS},
            }
        )
    benchmarks.sort(key=lambda b: (b["group"] or "", b["name"] or ""))
    return {
        "file": path.name,
        "machine_info": payload.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "experiment_map": payload.get("experiment_map"),
        "benchmark_count": len(benchmarks),
        "benchmarks": benchmarks,
    }


def collect(paths: Sequence[Path]) -> dict:
    """The merged trajectory payload for a list of artifact files."""
    artifacts = [summarize_file(path) for path in sorted(paths, key=lambda p: p.name)]
    return {
        "version": TRAJECTORY_VERSION,
        "artifact_count": len(artifacts),
        "total_benchmarks": sum(a["benchmark_count"] for a in artifacts),
        "artifacts": artifacts,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="artifact files to merge (default: glob BENCH_*.json in the working directory)",
    )
    parser.add_argument("-o", "--output", default="BENCH_trajectory.json")
    parser.add_argument(
        "--min-artifacts",
        type=int,
        default=0,
        help=(
            "fail unless at least this many artifact files were merged "
            "(CI uses this to catch an export job silently dropping a BENCH_*.json)"
        ),
    )
    args = parser.parse_args(argv)

    if args.files:
        paths = [Path(name) for name in args.files]
    else:
        paths = [
            path
            for path in map(Path, sorted(glob.glob("BENCH_*.json")))
            if path.name != Path(args.output).name
        ]
    missing = [str(path) for path in paths if not path.is_file()]
    if missing:
        print(f"error: missing artifact files: {', '.join(missing)}", file=sys.stderr)
        return 2
    if not paths:
        print("error: no BENCH_*.json artifacts found", file=sys.stderr)
        return 2
    if len(paths) < args.min_artifacts:
        print(
            f"error: merged only {len(paths)} artifacts, "
            f"but --min-artifacts {args.min_artifacts} was required",
            file=sys.stderr,
        )
        return 2

    trajectory = collect(paths)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"merged {trajectory['artifact_count']} artifacts "
        f"({trajectory['total_benchmarks']} benchmarks) into {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
