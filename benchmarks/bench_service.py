"""EXP-SVC: the query service — planner batching, shard scaling, async serving.

Series produced:

* **batched vs naive dispatch** — a seeded mixed stream (implication,
  equivalence, weak-instance consistency, FD implication) over a few PD
  theories, answered (a) by the batch planner on one session and (b) by the
  naive one-at-a-time baseline that builds fresh engines per request (the
  pre-service workflow).  The service claim is planner ≥ 2× on non-trivial
  theories; measured on these streams: 1.5× at 4 PDs/theory, 3.4× at 8,
  7.0× at 12 (the win comes from amortizing Γ closures in bounded chunks
  and the Theorem 12 normalization + chase preprocessing per dependency set
  instead of per request — matching the README's EXP-SVC table).
* **shard scaling** — the same largest stream through the multiprocess
  :class:`~repro.service.executor.ShardExecutor` with 1, 2 and 4 workers.
  Each round gets a *fresh* executor (pool startup inside the timed region):
  a persistent pool would answer repeated identical streams from the
  workers' result caches and measure nothing but cache hits.  Workers
  exchange wire-encoded JSONL, so the measured time includes real
  serialization costs.  Wall-clock speedup requires actual cores: on a
  single-CPU machine this series exposes the fan-out overhead instead (the
  plan-aware shard assignment keeps per-worker aggregate compute at ≈63% of
  the whole stream for 2 shards, which is what multi-core machines convert
  into wall-clock wins).

* **open-loop async serving** — the continuous-serving claim.  A seeded
  mixed stream arrives as a Poisson process (open loop: clients do not wait
  for answers) and is served through the
  :class:`~repro.service.microbatch.MicroBatcher`, (a) with a real window
  (``max_wait_ms=10``, ``max_batch=32``) so in-flight requests re-batch
  across arrivals and the planner's group-by amortization survives live
  load, and (b) with the window degenerated to one request
  (``max_batch=1``) — per-request dispatch, the naive serving shape.  At a
  steady arrival rate the batched windows win (the gap is the same group
  amortization the batch series measures, now recovered *in flight*), and
  the stats snapshot reports enqueue→respond latency percentiles
  (p50/p95/p99) plus window occupancy — the numbers CI exports to
  ``BENCH_async.json``.

Every benchmark round cross-checks the results against the naive baseline
(byte-identical wire encodings), so the fast paths cannot silently diverge.
"""

import asyncio
import time

import pytest

from repro.service.executor import ShardExecutor
from repro.service.microbatch import MicroBatcher
from repro.service.planner import execute_plan, naive_dispatch
from repro.service.session import Session
from repro.service.wire import dump_result_line
from repro.workloads.random_service import poisson_arrival_times, random_service_requests

#: (stream length, PDs per theory): bigger theories make per-request engine
#: construction — what the planner amortizes away — dominate.
STREAMS = [(60, 4), (120, 8), (240, 12)]


def _stream(count: int, pds_per_theory: int, seed: int):
    return random_service_requests(
        count,
        seed=seed,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=pds_per_theory,
        max_complexity=3,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "fd_implies": 2},
    )


def _encoded(results):
    return [dump_result_line(result) for result in results]


@pytest.mark.benchmark(group="EXP-SVC batched vs naive dispatch")
@pytest.mark.parametrize("count,pds_per_theory", STREAMS)
@pytest.mark.parametrize("mode", ["planner", "naive"])
def test_service_dispatch(benchmark, mode, count, pds_per_theory, rng_seed):
    requests = _stream(count, pds_per_theory, rng_seed)

    if mode == "planner":

        def run():
            return execute_plan(Session(), requests)

    else:

        def run():
            return naive_dispatch(requests)

    results = benchmark(run)
    # The two modes must agree to the byte.
    reference = naive_dispatch(requests[:20])
    assert _encoded(results[:20]) == _encoded(reference)


@pytest.mark.benchmark(group="EXP-SVC shard scaling")
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_service_shard_scaling(benchmark, shards, rng_seed):
    count, pds_per_theory = STREAMS[-1]
    requests = _stream(count, pds_per_theory, rng_seed)

    def setup():
        return (ShardExecutor(shards=shards),), {}

    def run(executor):
        try:
            return executor.execute(requests)
        finally:
            executor.close()

    results = benchmark.pedantic(run, setup=setup, rounds=3)
    reference = execute_plan(Session(), requests)
    assert _encoded(results) == _encoded(reference)


#: Open-loop workload: stream shape and steady arrival rate (requests/second).
OPEN_LOOP_COUNT, OPEN_LOOP_PDS, OPEN_LOOP_RATE = 120, 8, 500.0


async def _drive_open_loop(requests, arrivals, mode):
    """Serve an arrival-timed stream through the micro-batcher; returns (results, stats)."""
    session = Session()
    window = {"max_wait_ms": 10.0, "max_batch": 32} if mode == "microbatch" else {
        "max_wait_ms": 0.0,
        "max_batch": 1,
    }
    async with MicroBatcher(
        session.execute_many, queue_limit=len(requests), **window
    ) as batcher:

        started = time.perf_counter()

        async def one(arrival, request):
            delay = started + arrival - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            ticket = await batcher.submit(request)
            result = await ticket.result()
            ticket.mark_responded()
            return result

        results = await asyncio.gather(
            *(one(arrival, request) for arrival, request in zip(arrivals, requests))
        )
        stats = batcher.stats.snapshot()
    return list(results), stats


@pytest.mark.benchmark(group="EXP-SVC open-loop async: micro-batch window vs per-request")
@pytest.mark.parametrize("mode", ["microbatch", "per_request"])
def test_service_async_open_loop(benchmark, mode, rng_seed):
    requests = _stream(OPEN_LOOP_COUNT, OPEN_LOOP_PDS, rng_seed)
    arrivals = poisson_arrival_times(OPEN_LOOP_COUNT, OPEN_LOOP_RATE, seed=rng_seed)

    def run():
        return asyncio.run(_drive_open_loop(requests, arrivals, mode))

    results, stats = benchmark(run)
    # Served answers must be byte-identical to the batch pipeline's.
    reference = execute_plan(Session(), requests)
    assert _encoded(results) == _encoded(reference)
    # The latency accounting must actually report percentiles.
    total = stats["latency_ms"]["total"]
    assert total["samples"] == len(requests)
    assert total["p50"] is not None and total["p50"] <= total["p95"] <= total["p99"]
    assert stats["windows"]["count"] >= 1
    if mode == "per_request":
        assert stats["windows"]["max_size"] == 1
