"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment from EXPERIMENTS.md
(a paper figure or a complexity claim).  The modules use ``pytest-benchmark``
groups named after the experiment ids (FIG1..FIG3, EXP-T4..EXP-T12, EXP-FD,
EXP-WI) so that ``pytest benchmarks/ --benchmark-only`` prints one comparison
table per experiment — those tables are the "rows/series" the reproduction
reports.
"""

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Tag the JSON export (if requested) with the experiment grouping."""
    output_json["experiment_map"] = {
        "FIG1": "Figure 1 construction and checks",
        "FIG2": "Figure 2 / Theorem 5 isomorphism",
        "FIG3": "Figure 3 / Theorem 11 reduction instance",
        "EXP-T4": "connectivity PD on path relations",
        "EXP-T9": "ALG implication scaling",
        "EXP-ALG": "incremental implication service vs from-scratch closures",
        "EXP-T10": "identity recognition vs ALG",
        "EXP-T11": "CAD consistency (NP-complete) scaling",
        "EXP-T12": "polynomial PD consistency scaling",
        "EXP-FD": "FD closure vs ALG on FPD translations",
        "EXP-WI": "weak instance chase scaling",
        "EXP-PART": "integer partition kernel vs block oracle; batch PD satisfaction",
        "EXP-LAT": "bitset lattice kernel and class-driven quotient pipeline vs dict-table oracles",
        "EXP-SVC": "query service: planner batching vs naive dispatch; multiprocess shard scaling",
        "EXP-SNAP": "durable Γ snapshots: cold start vs zero-warmup restore (session, shards, server)",
        "EXP-FLT": "fault tolerance: supervision overhead vs Pool baseline; restart-to-warm latency",
        "EXP-TEN": "multi-tenant serving: shared consistently-hashed result cache vs per-worker islands",
        "EXP-OBS": "observability: end-to-end tracing + kernel profiling overhead vs untraced serving",
    }


@pytest.fixture(scope="session")
def rng_seed() -> int:
    """A fixed seed so every benchmark run sees identical workloads."""
    return 20260617
