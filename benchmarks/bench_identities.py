"""EXP-T10: recognizing PD identities (E = ∅) is cheaper than general implication.

Section 5.3 separates two problems: general PD implication (polynomial-time
complete) and recognizing the PDs that are *always* true (lattice identities,
solvable in logarithmic space).  The series below compare, on the same random
equations, three deciders:

* the memoized ``≤_id`` recursion (the practical Theorem 10 checker);
* the explicit-stack, memory-frugal variant (the logspace flavour — slower,
  tiny state);
* full ALG with ``E = ∅`` (overkill for identities).

The expected *shape*: the identity checkers stay far below ALG as the
expression complexity grows, mirroring the logspace-vs-polynomial separation.
"""

import pytest

from repro.implication.alg import pd_leq
from repro.implication.identities import identically_leq, identically_leq_iterative
from repro.workloads.random_expressions import random_expression_of_exact_complexity

ATTRIBUTES = ["A", "B", "C"]


def _pairs(complexity: int, seed: int, count: int = 8):
    pairs = []
    for index in range(count):
        left = random_expression_of_exact_complexity(ATTRIBUTES, complexity, seed + 2 * index)
        right = random_expression_of_exact_complexity(ATTRIBUTES, complexity, seed + 2 * index + 1)
        pairs.append((left, right))
    return pairs


@pytest.mark.benchmark(group="EXP-T10 identity recognition")
@pytest.mark.parametrize("complexity", [2, 4, 6, 8])
@pytest.mark.parametrize("decider", ["leq_id_memoized", "leq_id_iterative", "alg_empty_e"])
def test_identity_deciders(benchmark, complexity, decider, rng_seed):
    pairs = _pairs(complexity, rng_seed)

    functions = {
        "leq_id_memoized": lambda left, right: identically_leq(left, right),
        "leq_id_iterative": lambda left, right: identically_leq_iterative(left, right),
        "alg_empty_e": lambda left, right: pd_leq([], left, right),
    }
    decide = functions[decider]

    def run():
        return [decide(left, right) for left, right in pairs]

    answers = benchmark(run)
    # All deciders agree with the reference (memoized) checker.
    reference = [identically_leq(left, right) for left, right in pairs]
    assert answers == reference


@pytest.mark.benchmark(group="EXP-T10 axiom instances")
def test_lattice_axioms_are_recognized(benchmark):
    from repro.dependencies.pd import lattice_axiom_instances
    from repro.implication.identities import is_pd_identity

    instances = lattice_axiom_instances("A * B", "B + C", "A")

    def run():
        return [is_pd_identity(pd) for pd in instances]

    results = benchmark(run)
    assert all(results)
