"""EXP-FD: FD implication as the word problem for idempotent commutative semigroups (§5.3).

Three deciders answer the same random FD-implication queries:

* classical attribute-set closure (Beeri–Bernstein) — the fast path;
* the semigroup word-problem wrapper (same algorithm, algebraic interface);
* the FPD translation run through ALG — the paper's "FDs are a special case
  of PDs" route, correct but with the overhead of the general machinery.

Expected shape: closure ≈ semigroup ≪ ALG, with all three returning identical
verdicts (asserted every round).
"""

import pytest

from repro.dependencies.conversion import fd_to_pd, fds_to_pds
from repro.implication.alg import pd_implies
from repro.implication.fd_implication import fd_implies_all_via_pds
from repro.implication.word_problems import fd_implication_as_semigroup_problem
from repro.relational.functional_dependencies import implies
from repro.workloads.random_dependencies import random_fd_set


def _workload(fd_count: int, seed: int, attribute_count: int = 6, queries: int = 10):
    fds = random_fd_set(attribute_count, fd_count, seed=seed, max_side=3)
    targets = random_fd_set(attribute_count, queries, seed=seed + 1, max_side=3)
    return fds, targets


@pytest.mark.benchmark(group="EXP-FD FD implication: closure vs semigroup vs ALG")
@pytest.mark.parametrize("fd_count", [4, 8, 16])
@pytest.mark.parametrize("decider", ["closure", "semigroup", "alg_on_fpds"])
def test_fd_implication_deciders(benchmark, fd_count, decider, rng_seed):
    fds, targets = _workload(fd_count, rng_seed + fd_count)

    def closure_decider():
        return [implies(fds, target) for target in targets]

    def semigroup_decider():
        return [fd_implication_as_semigroup_problem(fds, target) for target in targets]

    def alg_decider():
        translated = fds_to_pds(fds)
        return [pd_implies(translated, fd_to_pd(target)) for target in targets]

    run = {"closure": closure_decider, "semigroup": semigroup_decider, "alg_on_fpds": alg_decider}[
        decider
    ]
    answers = benchmark(run)
    assert answers == closure_decider()


@pytest.mark.benchmark(group="EXP-ALG batched FD implication through one engine")
@pytest.mark.parametrize("query_count", [10, 25, 50])
@pytest.mark.parametrize("mode", ["per-target", "batched"])
def test_fd_implication_amortization(benchmark, mode, query_count, rng_seed):
    # One ALG run per FD target vs. all targets batched through a single
    # incremental engine over the same FPD translation.
    fds, targets = _workload(12, rng_seed + query_count, queries=query_count)

    def per_target():
        translated = fds_to_pds(fds)
        return [pd_implies(translated, fd_to_pd(target)) for target in targets]

    def batched():
        return fd_implies_all_via_pds(fds, targets)

    answers = benchmark(per_target if mode == "per-target" else batched)
    assert answers == [implies(fds, target) for target in targets]
