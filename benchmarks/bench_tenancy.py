"""EXP-TEN: multi-tenant serving — shared consistently-hashed cache vs worker islands.

The tenancy claim: on a Zipf-skewed multi-tenant stream, the parent-side
shared result cache (tier 0, misses routed along the consistent-hash ring)
achieves **≥ 2× the aggregate cache hit rate** of the per-worker-island
baseline, and a measured end-to-end speedup — while every served answer
stays byte-identical to naive single-shard no-cache dispatch, including
under a seeded transient worker crash.

The workload is :func:`~repro.workloads.random_service.zipf_multitenant_requests`:
50 tenants drawing from fixed per-tenant request pools with Zipf skew
``s = 1.0``, served over 2 shards in micro-batch-sized windows (so unit
dealing, not one giant batch, decides which worker sees a repeat — exactly
the serving shape).  Both arms run **memory-bounded** workers
(``worker_cache_size=16`` entries, far below the stream's ~140-key working
set), which is the regime the shared tier exists for:

* **islands** (``shared_cache_size=0``): repeats bounce between workers and
  the cold tail churns each island's LRU, so even the hot head keeps
  recomputing — tier-2 hits only.
* **shared** (4096-entry tier 0): the ring gives every key a home shard, the
  parent answers repeats without shipping them to workers at all, and the
  aggregate rate is compulsory-miss-bound.

Aggregate hit rate = (parent tier-0 hits + worker session hits) / requests.
"""

import time

import pytest

from repro.service.executor import ShardExecutor
from repro.service.faults import Fault, FaultPlan
from repro.service.planner import naive_dispatch
from repro.service.wire import dump_request_line, dump_result_line
from repro.workloads.random_service import zipf_multitenant_requests

#: The acceptance-shaped stream: ISSUE 9 pins ≥ 50 tenants and skew ≥ 1.0.
STREAM_COUNT, TENANTS, SKEW, POOL_PER_TENANT = 400, 50, 1.0, 4

#: Requests per serving window — small enough that repeats cross windows.
WINDOW = 25

#: Per-worker result-cache entries: memory-bounded tier-2 islands.
WORKER_CACHE = 16

#: PR 8's transient-crash shape: worker 0 dies on its first unit, once.
CRASH_ONCE = FaultPlan(
    seed=20260617, faults=(Fault(kind="crash_worker", worker=0, unit=0, incarnation=0),)
)


def _stream(seed: int):
    return zipf_multitenant_requests(
        STREAM_COUNT,
        seed=seed,
        tenants=TENANTS,
        skew=SKEW,
        pool_per_tenant=POOL_PER_TENANT,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
    )


def _expected(requests):
    """Naive single-shard no-cache dispatch: the byte-identity reference."""
    return [dump_result_line(result) for result in naive_dispatch(requests)]


def _serve_windows(executor, lines, requests):
    """Serve the stream in ``WINDOW``-sized calls, like the micro-batch loop."""
    out = []
    for start in range(0, len(lines), WINDOW):
        stop = start + WINDOW
        out.extend(executor.execute_encoded(lines[start:stop], requests=requests[start:stop]))
    return out


def _run_stream(lines, requests, shared_cache_size, fault_plan=None):
    """One serving pass; returns (encoded answers, aggregate hit rate, stats)."""
    with ShardExecutor(
        shards=2,
        shared_cache_size=shared_cache_size,
        worker_cache_size=WORKER_CACHE,
        fault_plan=fault_plan,
    ) as executor:
        out = _serve_windows(executor, lines, requests)
        shared = executor.shared_cache_info()
        supervision = executor.supervision_stats()
    hits = shared["hits"] + supervision["worker_cache_hits"]
    return out, hits / len(lines), {"shared": shared, "supervision": supervision}


@pytest.mark.benchmark(group="EXP-TEN Zipf multi-tenant stream: worker islands vs shared cache")
@pytest.mark.parametrize("mode", ["islands", "shared"])
def test_islands_vs_shared_cache(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)
    size = 4096 if mode == "shared" else 0

    def run():
        return _run_stream(lines, requests, shared_cache_size=size)

    out, rate, _ = benchmark(run)
    assert out == expected  # caching must never change an answer
    if mode == "shared":
        assert rate > 0.5  # compulsory-miss-bound on this stream


@pytest.mark.benchmark(group="EXP-TEN shared cache under a transient worker crash")
def test_shared_cache_with_crash(benchmark, rng_seed):
    requests = _stream(rng_seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)

    def run():
        return _run_stream(
            lines, requests, shared_cache_size=4096, fault_plan=CRASH_ONCE.to_json()
        )

    out, _, stats = benchmark(run)
    assert out == expected  # recovery + caching still byte-identical
    assert stats["supervision"]["crashes"] >= 1


def measure_tenancy_report(seed: int = 20260617, rounds: int = 3) -> dict:
    """The acceptance measurement: hit-rate ratio and end-to-end speedup.

    Min-of-``rounds`` wall times per arm (each round builds its own pool —
    steady-state caches must not leak across rounds), hit rates from the
    last round of each, plus one crash-injected shared run.  Every pass is
    checked byte-identical to naive single-shard no-cache dispatch.
    Importable so the CI smoke and the README table are computed the same
    way.
    """
    requests = _stream(seed)
    lines = [dump_request_line(request) for request in requests]
    expected = _expected(requests)

    def _time(size, fault_plan=None):
        best, rate, stats = float("inf"), 0.0, {}
        for _ in range(rounds):
            started = time.perf_counter()
            out, rate, stats = _run_stream(lines, requests, size, fault_plan=fault_plan)
            best = min(best, time.perf_counter() - started)
            assert out == expected
        return best, rate, stats

    islands_seconds, islands_rate, _ = _time(0)
    shared_seconds, shared_rate, shared_stats = _time(4096)
    _, crash_rate, crash_stats = _time(4096, fault_plan=CRASH_ONCE.to_json())
    assert crash_stats["supervision"]["crashes"] >= 1

    return {
        "stream": {
            "count": STREAM_COUNT,
            "tenants": TENANTS,
            "skew": SKEW,
            "pool_per_tenant": POOL_PER_TENANT,
            "window": WINDOW,
            "worker_cache": WORKER_CACHE,
            "seed": seed,
        },
        "islands_seconds": islands_seconds,
        "shared_seconds": shared_seconds,
        "speedup": islands_seconds / shared_seconds if shared_seconds else float("inf"),
        "islands_hit_rate": islands_rate,
        "shared_hit_rate": shared_rate,
        "hit_rate_ratio": shared_rate / islands_rate if islands_rate else float("inf"),
        "crash_hit_rate": crash_rate,
        "shared_tiers": shared_stats,
    }


def test_shared_cache_meets_the_2x_acceptance_bar(rng_seed):
    """The ISSUE 9 acceptance criterion, pinned: ≥ 2× aggregate hit rate + speedup."""
    report = measure_tenancy_report(seed=rng_seed, rounds=3)
    assert report["hit_rate_ratio"] >= 2.0, report
    assert report["speedup"] > 1.0, report
