"""EXP-LAT: the bitset lattice kernel vs the preserved dict-table oracle.

The lattice layer is the last §2.2/§5.1 subsystem rebuilt on an integer
kernel (PR 4).  Series produced:

* **construction + validation scaling** — ``from_partial_order`` on the
  partition lattices Π_4/Π_5 and the Boolean lattice B_5: the kernel probes
  the order once into bitset rows and reads every GLB/LUB off one mask
  intersection, where the oracle runs the O(n³) bound scans and the O(n³)
  axiom sweep;
* **quotient collapse** — the Theorem 8 pool collapsed into ``=_E`` classes:
  one congruence-class-id group-by (`quotient_fragment`) vs the seed's
  pairwise ``engine.leq`` scan (`quotient_fragment_pairwise`), on one shared
  prepared engine so only the collapse strategies differ;
* **finite counterexample** — the full class-driven ``L_H`` pipeline vs the
  seed's linear-scan canonicalization;
* **identity memoization** — a stream of ``≤_id`` queries over overlapping
  subterms answered by the global weak-table memo (cleared per round, so
  each round is a cold-start service) vs per-call caches.

Every benchmark round asserts the fast path's answers against the oracle's,
so the implementations cannot silently diverge.
"""

import random

import pytest

from repro.implication.alg import ImplicationEngine
from repro.implication.identities import (
    clear_identity_cache,
    identically_leq,
    identically_leq_cold,
)
from repro.lattice.core import FiniteLattice
from repro.lattice.free_lattice import bounded_expressions
from repro.lattice.oracle import (
    OracleFiniteLattice,
    finite_counterexample_oracle,
    quotient_fragment_pairwise,
)
from repro.lattice.partition_lattice import set_partitions
from repro.lattice.quotient import finite_counterexample, quotient_fragment
from repro.workloads.random_dependencies import random_pd_set


def _order_workload(family: str):
    """(elements, leq) for one construction workload."""
    if family == "bell4":
        elements = list(set_partitions(range(4)))
        return elements, lambda x, y: x.refines(y)
    if family == "bell5":
        elements = list(set_partitions(range(5)))
        return elements, lambda x, y: x.refines(y)
    if family == "boolean5":
        names = list("ABCDE")
        elements = [
            frozenset(name for bit, name in enumerate(names) if (mask >> bit) & 1)
            for mask in range(1 << len(names))
        ]
        return elements, lambda x, y: x <= y
    raise ValueError(family)


@pytest.mark.benchmark(group="EXP-LAT construction: kernel vs dict-table oracle")
@pytest.mark.parametrize("family", ["bell4", "bell5", "boolean5"])
@pytest.mark.parametrize("variant", ["kernel", "oracle"])
def test_construction_scaling(benchmark, family, variant):
    elements, leq = _order_workload(family)
    if variant == "kernel":
        result = benchmark(FiniteLattice.from_partial_order, elements, leq)
    else:
        result = benchmark(OracleFiniteLattice.from_partial_order, elements, leq)
    reference = FiniteLattice.from_partial_order(elements, leq)
    assert result.elements == reference.elements
    assert result.covers() == reference.covers()


def _quotient_workload(attributes: str, complexity: int, seed: int):
    """A PD set, a bounded expression pool, and one prepared shared engine."""
    pds = tuple(random_pd_set(len(attributes), 2, seed=seed, max_complexity=1))
    pool = bounded_expressions(list(attributes), complexity)
    engine = ImplicationEngine(pds, query_expressions=pool)
    return pds, pool, engine


@pytest.mark.benchmark(group="EXP-LAT quotient collapse: class ids vs pairwise leq")
@pytest.mark.parametrize(
    "attributes,complexity", [("ABC", 1), ("ABC", 2), ("ABCD", 2)], ids=["ABC-1", "ABC-2", "ABCD-2"]
)
@pytest.mark.parametrize("variant", ["classes", "pairwise"])
def test_quotient_collapse_scaling(benchmark, attributes, complexity, variant, rng_seed):
    pds, pool, engine = _quotient_workload(attributes, complexity, rng_seed)
    if variant == "classes":
        result = benchmark(quotient_fragment, pds, pool, engine)
    else:
        result = benchmark(quotient_fragment_pairwise, pds, pool, engine)
    reference = quotient_fragment_pairwise(pds, pool, engine)
    assert result.representatives == reference.representatives
    assert result.order == reference.order


@pytest.mark.benchmark(group="EXP-LAT finite counterexample: worklist vs linear canonicalization")
@pytest.mark.parametrize("variant", ["classes", "oracle"])
def test_finite_counterexample_pipeline(benchmark, variant):
    pds = ["A = A*B"]
    query = "B*(A+C) = B*C"
    if variant == "classes":
        lattice = benchmark(finite_counterexample, pds, query)
    else:
        lattice = benchmark(finite_counterexample_oracle, pds, query)
    assert lattice is not None
    assert lattice.satisfies_all(pds)
    assert not lattice.satisfies(query)


def _identity_queries(count: int, seed: int):
    rng = random.Random(seed)
    pool = bounded_expressions(["A", "B", "C"], 2)
    return [(rng.choice(pool), rng.choice(pool)) for _ in range(count)]


@pytest.mark.benchmark(group="EXP-LAT identity stream: global memo vs per-call caches")
@pytest.mark.parametrize("variant", ["memoized", "cold"])
def test_identity_stream(benchmark, variant, rng_seed):
    queries = _identity_queries(400, rng_seed)
    expected = [identically_leq_cold(left, right) for left, right in queries]

    def memoized():
        clear_identity_cache()
        return [identically_leq(left, right) for left, right in queries]

    def cold():
        return [identically_leq_cold(left, right) for left, right in queries]

    result = benchmark(memoized if variant == "memoized" else cold)
    assert result == expected
