"""EXP-T4: the connectivity PD ``C = A + B`` on growing graphs (Example e / Theorem 4).

The paper's point is qualitative — connectivity is expressible by a PD and by
no first-order sentence — so the series here measure the *cost* of checking
the PD as the Theorem 4 path relations ``r_i`` (single long chain, worst case
for chain-following) and random forests grow:

* the direct characterization (II), essentially two union-finds — near linear;
* the canonical-interpretation route (Definition 7), which builds ``I(r)``
  and the full block structure — noticeably heavier, same verdicts.

Every round asserts the verdict (all these relations genuinely satisfy the PD).
"""

import pytest

from repro.graphs.connectivity import components_by_partition_sum, satisfies_connectivity_pd
from repro.graphs.families import theorem4_path_relation
from repro.workloads.random_graphs import random_sparse_forest_relation


@pytest.mark.benchmark(group="EXP-T4 connectivity check on path relations r_i")
@pytest.mark.parametrize("i", [8, 32, 128, 256])
@pytest.mark.parametrize("method", ["direct", "canonical"])
def test_connectivity_on_theorem4_paths(benchmark, i, method):
    relation = theorem4_path_relation(i)

    def run():
        return satisfies_connectivity_pd(relation, method=method)

    assert benchmark(run) is True


@pytest.mark.benchmark(group="EXP-T4 component counting on random forests")
@pytest.mark.parametrize("vertices", [16, 64, 256])
def test_component_counting_by_partition_sum(benchmark, vertices, rng_seed):
    relation = random_sparse_forest_relation(vertices, seed=rng_seed)

    def run():
        return components_by_partition_sum(relation).block_count()

    components = benchmark(run)
    assert components >= 1
