"""EXP-OBS: observability — end-to-end tracing overhead and trace completeness.

The observability claim: full telemetry — per-request span trees, kernel
profiling counters piggybacked on the deadline check sites, per-work-unit
cost records, and the unified metrics registry — costs **under 3%** on the
200-request acceptance-shaped stream, and changes nothing about answers
(traced result lines are byte-identical to untraced ones).  Series:

* **traced vs untraced** — :func:`~repro.service.cli.serve_lines` on the
  same stream with telemetry off and with ``trace=True``; both arms build a
  fresh session inside the timed region, so the comparison covers trace-id
  stamping, span recording, kernel counters and cost-log appends end to end.
* **completeness** — a ``metrics_dir`` pass asserting the dump invariants:
  one root span (``<trace>.r``) with plan/execute/respond children per
  request, one cost record per executed work unit, and a canonical metrics
  document.

Overhead is measured min-of-rounds (robust to scheduler noise) in
:func:`measure_observability_report`, importable so the CI smoke and the
README numbers are computed the same way.
"""

import json
import time

import pytest

from repro.service import telemetry
from repro.service.cli import serve_lines
from repro.service.config import ServiceConfig
from repro.service.wire import request_cache_key, requests_to_jsonl
from repro.workloads.random_service import random_service_requests

#: The acceptance-shaped mix: 200 mixed requests over two small theories.
STREAM_COUNT = 200

#: The ISSUE 10 acceptance bar: traced within 3% of untraced.
OVERHEAD_BAR = 0.03


def _stream(seed: int):
    return random_service_requests(
        STREAM_COUNT,
        seed=seed,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


def _serve(lines, **config_kwargs):
    telemetry.reset()
    try:
        out, _ = serve_lines(lines, config=ServiceConfig(**config_kwargs))
        return out
    finally:
        telemetry.reset()


@pytest.mark.benchmark(group="EXP-OBS acceptance stream: untraced vs fully traced")
@pytest.mark.parametrize("mode", ["untraced", "traced"])
def test_traced_vs_untraced(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    lines = requests_to_jsonl(requests).strip().split("\n")
    expected = _serve(lines)

    def run():
        return _serve(lines, trace=(mode == "traced"))

    out = benchmark(run)
    assert out == expected  # telemetry must never change an answer


def measure_observability_report(seed: int = 20260617, rounds: int = 5) -> dict:
    """The acceptance measurement: tracing overhead and trace completeness.

    Min-of-``rounds`` wall times per arm (each round builds a fresh session
    — warm caches must not leak between arms), then one ``metrics_dir`` pass
    whose dump is checked for the span-tree and cost-log invariants.
    """
    import tempfile
    from pathlib import Path

    requests = _stream(seed)
    lines = requests_to_jsonl(requests).strip().split("\n")
    expected = _serve(lines)

    def _once(**config_kwargs):
        started = time.perf_counter()
        out = _serve(lines, **config_kwargs)
        elapsed = time.perf_counter() - started
        assert out == expected
        return elapsed

    # Interleave the arms round-by-round so clock-frequency drift over the
    # measurement hits both equally; min-of-rounds then discards the noise.
    untraced_seconds = traced_seconds = float("inf")
    for _ in range(rounds):
        untraced_seconds = min(untraced_seconds, _once())
        traced_seconds = min(traced_seconds, _once(trace=True))

    with tempfile.TemporaryDirectory() as directory:
        telemetry.reset()
        try:
            out, _ = serve_lines(
                lines, config=ServiceConfig(trace=True, metrics_dir=directory)
            )
            assert out == expected
            spans = [
                json.loads(line) for line in (Path(directory) / "trace.jsonl").open()
            ]
            cost = [
                json.loads(line) for line in (Path(directory) / "costlog.jsonl").open()
            ]
        finally:
            telemetry.reset()

    roots = [s for s in spans if s["name"] == "request" and s["span"].endswith(".r")]
    children = {}
    for span in spans:
        children.setdefault(span.get("parent"), set()).add(span["name"])
    assert len(roots) == STREAM_COUNT
    for root in roots:
        assert {"plan", "execute", "respond"} <= children[root["span"]]
    distinct = len({request_cache_key(request) for request in requests})
    assert sum(record["requests"] for record in cost) >= distinct

    return {
        "stream": {"count": STREAM_COUNT, "seed": seed},
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "overhead": traced_seconds / untraced_seconds - 1.0,
        "spans": len(spans),
        "root_spans": len(roots),
        "cost_records": len(cost),
    }


def test_tracing_overhead_meets_the_3_percent_bar(rng_seed):
    """The ISSUE 10 acceptance criterion, pinned: traced within 3% of untraced."""
    report = measure_observability_report(rng_seed)
    assert report["overhead"] < OVERHEAD_BAR, report


if __name__ == "__main__":
    print(json.dumps(measure_observability_report(), indent=2))
