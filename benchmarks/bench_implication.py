"""EXP-T9: ALG decides PD implication in polynomial time (Theorem 9).

Two series are produced:

* scaling of the worklist ALG with the total input size (number of PDs ×
  expression complexity) — the paper's claim is a polynomial (≈ n⁴ for the
  naive formulation) bound, so the measured times should grow smoothly, not
  explode;
* an ablation comparing the worklist implementation against the literal
  "repeat until no change" fixpoint from the paper on a fixed mid-size input.

Workload: random PD sets over 4 attributes plus FD-style chains, generated
with a fixed seed.  Every benchmark round asserts the decision itself so the
two implementations cannot silently diverge.
"""

import pytest

from repro.implication.alg import ImplicationEngine, alg_closure, alg_closure_naive, pd_implies
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_expressions import random_expression

ATTRIBUTES = ["A", "B", "C", "D"]


def _workload(pd_count: int, complexity: int, seed: int):
    dependencies = random_pd_set(len(ATTRIBUTES), pd_count, seed=seed, max_complexity=complexity)
    query_left = random_expression(ATTRIBUTES, seed + 1, complexity)
    query_right = random_expression(ATTRIBUTES, seed + 2, complexity)
    return dependencies, query_left, query_right


@pytest.mark.benchmark(group="EXP-T9 ALG scaling (worklist)")
@pytest.mark.parametrize("pd_count,complexity", [(2, 2), (4, 3), (8, 4), (16, 5), (32, 6)])
def test_alg_scaling(benchmark, pd_count, complexity, rng_seed):
    dependencies, left, right = _workload(pd_count, complexity, rng_seed)

    def run():
        engine = ImplicationEngine(dependencies, query_expressions=[left, right])
        return engine.leq(left, right), engine.leq(right, left)

    result = benchmark(run)
    assert isinstance(result[0], bool) and isinstance(result[1], bool)


@pytest.mark.benchmark(group="EXP-T9 ablation: worklist vs naive fixpoint")
@pytest.mark.parametrize("variant", ["worklist", "naive"])
def test_alg_worklist_vs_naive(benchmark, variant, rng_seed):
    dependencies, left, right = _workload(6, 3, rng_seed)
    closure_fn = alg_closure if variant == "worklist" else alg_closure_naive

    def run():
        return closure_fn(dependencies, [left, right])

    relation = benchmark(run)
    # Both variants must produce the identical arc set (Lemma 9.2).
    reference = alg_closure(dependencies, [left, right])
    assert relation.as_expression_pairs() == reference.as_expression_pairs()


@pytest.mark.benchmark(group="EXP-T9 FD-chain transitivity")
@pytest.mark.parametrize("chain_length", [4, 8, 16, 32])
def test_alg_on_fd_chains(benchmark, chain_length):
    # A1 <= A2 <= ... <= An: the query A1 <= An exercises long transitivity chains.
    attributes = [f"A{i}" for i in range(1, chain_length + 1)]
    dependencies = [
        f"{attributes[i]} = {attributes[i]}*{attributes[i + 1]}" for i in range(chain_length - 1)
    ]
    query = f"{attributes[0]} = {attributes[0]}*{attributes[-1]}"

    result = benchmark(pd_implies, dependencies, query)
    assert result is True
