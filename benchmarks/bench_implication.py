"""EXP-T9 / EXP-ALG: ALG decides PD implication in polynomial time (Theorem 9).

Series produced:

* scaling of the worklist ALG with the total input size (number of PDs ×
  expression complexity) — the paper's claim is a polynomial (≈ n⁴ for the
  naive formulation) bound, so the measured times should grow smoothly, not
  explode;
* an ablation comparing the worklist implementation against the literal
  "repeat until no change" fixpoint from the paper on a fixed mid-size input;
* **EXP-ALG**: growing query streams against one fixed PD set, comparing
  one-closure-per-query (naive fixpoint and worklist) against the persistent
  incremental :class:`~repro.implication.alg.ImplicationEngine`, which
  resumes propagation delta-wise — the implication-service claim of the
  README is that the incremental engine beats from-scratch recomputation by
  ≥3× on streams of ≥50 queries.

Workload: random PD sets plus mixed implied/independent query streams from
:mod:`repro.workloads.random_implication`, generated with a fixed seed.
Every benchmark round asserts the decisions themselves so the
implementations cannot silently diverge.
"""

import pytest

from repro.implication.alg import ImplicationEngine, alg_closure, alg_closure_naive, pd_implies
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_implication import random_implication_workload

ATTRIBUTES = ["A", "B", "C", "D"]


def _workload(pd_count: int, complexity: int, seed: int):
    dependencies = random_pd_set(len(ATTRIBUTES), pd_count, seed=seed, max_complexity=complexity)
    query_left = random_expression(ATTRIBUTES, seed + 1, complexity)
    query_right = random_expression(ATTRIBUTES, seed + 2, complexity)
    return dependencies, query_left, query_right


@pytest.mark.benchmark(group="EXP-T9 ALG scaling (worklist)")
@pytest.mark.parametrize("pd_count,complexity", [(2, 2), (4, 3), (8, 4), (16, 5), (32, 6)])
def test_alg_scaling(benchmark, pd_count, complexity, rng_seed):
    dependencies, left, right = _workload(pd_count, complexity, rng_seed)

    def run():
        engine = ImplicationEngine(dependencies, query_expressions=[left, right])
        return engine.leq(left, right), engine.leq(right, left)

    result = benchmark(run)
    assert isinstance(result[0], bool) and isinstance(result[1], bool)


@pytest.mark.benchmark(group="EXP-T9 ablation: worklist vs naive fixpoint")
@pytest.mark.parametrize("variant", ["worklist", "naive"])
def test_alg_worklist_vs_naive(benchmark, variant, rng_seed):
    dependencies, left, right = _workload(6, 3, rng_seed)
    closure_fn = alg_closure if variant == "worklist" else alg_closure_naive

    def run():
        return closure_fn(dependencies, [left, right])

    relation = benchmark(run)
    # Both variants must produce the identical arc set (Lemma 9.2).
    reference = alg_closure(dependencies, [left, right])
    assert relation.as_expression_pairs() == reference.as_expression_pairs()


# -- EXP-ALG: the incremental implication service on query streams ---------------


def _stream_workload(query_count: int, seed: int):
    return random_implication_workload(
        6, 12, query_count, seed=seed, max_complexity=4, implied_fraction=0.5
    )


def _decide_scratch(theory, queries, closure_fn):
    """One full closure per query — the pre-service behaviour."""
    verdicts = []
    for query in queries:
        relation = closure_fn(theory, [query.left, query.right])
        i = relation.index[query.left]
        j = relation.index[query.right]
        verdicts.append(relation.has(i, j) and relation.has(j, i))
    return verdicts


def _decide_incremental(theory, queries):
    """One persistent engine; each query extends the closure delta-wise."""
    engine = ImplicationEngine(theory)
    return [engine.implies(query) for query in queries]


@pytest.mark.benchmark(group="EXP-ALG query stream: incremental vs from-scratch")
@pytest.mark.parametrize("query_count", [10, 25, 50])
@pytest.mark.parametrize("variant", ["incremental", "scratch-worklist"])
def test_alg_query_stream(benchmark, variant, query_count, rng_seed):
    theory, queries = _stream_workload(query_count, rng_seed)
    if variant == "incremental":
        run = lambda: _decide_incremental(theory, queries)  # noqa: E731
    else:
        run = lambda: _decide_scratch(theory, queries, alg_closure)  # noqa: E731

    verdicts = benchmark(run)
    assert verdicts == _decide_scratch(theory, queries, alg_closure)


@pytest.mark.benchmark(group="EXP-ALG query stream: naive fixpoint baseline")
def test_alg_query_stream_naive(benchmark, rng_seed):
    # The literal repeat-until-stable fixpoint, once per query; kept to a
    # short stream because it is the slowest of the three by far.
    theory, queries = _stream_workload(10, rng_seed)
    verdicts = benchmark(_decide_scratch, theory, queries, alg_closure_naive)
    assert verdicts == _decide_scratch(theory, queries, alg_closure)
    assert verdicts == _decide_incremental(theory, queries)


@pytest.mark.benchmark(group="EXP-ALG incremental dependency growth")
@pytest.mark.parametrize("pd_count", [4, 8, 16])
def test_alg_incremental_dependency_growth(benchmark, pd_count, rng_seed):
    # Interleave add_dependencies with queries: the service keeps its closure
    # alive while the theory itself grows (the Theorem 12 pipeline shape).
    theory, queries = random_implication_workload(
        6, pd_count, pd_count, seed=rng_seed + pd_count, max_complexity=4
    )

    def run():
        engine = ImplicationEngine()
        verdicts = []
        for pd, query in zip(theory, queries):
            engine.add_dependencies([pd])
            verdicts.append(engine.implies(query))
        return verdicts

    verdicts = benchmark(run)
    assert len(verdicts) == pd_count


@pytest.mark.benchmark(group="EXP-T9 FD-chain transitivity")
@pytest.mark.parametrize("chain_length", [4, 8, 16, 32])
def test_alg_on_fd_chains(benchmark, chain_length):
    # A1 <= A2 <= ... <= An: the query A1 <= An exercises long transitivity chains.
    attributes = [f"A{i}" for i in range(1, chain_length + 1)]
    dependencies = [
        f"{attributes[i]} = {attributes[i]}*{attributes[i + 1]}" for i in range(chain_length - 1)
    ]
    query = f"{attributes[0]} = {attributes[0]}*{attributes[-1]}"

    result = benchmark(pd_implies, dependencies, query)
    assert result is True
