"""FIG1 / FIG2 / FIG3: regenerate the paper's three figures and re-check their claims.

The paper has no measured tables; its figures are worked constructions.  The
benchmark value here is (a) the constructions run and all their claims hold
(asserted on every benchmark round) and (b) their cost is recorded so
regressions in the substrates (partition closure, isomorphism search, CAD
solver) are visible.
"""

import pytest

from repro.figures import figure1, figure2, figure3


@pytest.mark.benchmark(group="FIG1 figure 1 construction")
def test_figure1_construction_and_checks(benchmark):
    def run():
        figure = figure1.build()
        return figure.checks()

    checks = benchmark(run)
    assert all(checks.values()), checks


@pytest.mark.benchmark(group="FIG2 figure 2 isomorphism")
def test_figure2_isomorphism(benchmark):
    def run():
        figure = figure2.build()
        return figure.checks(), figure.isomorphism()

    checks, isomorphism = benchmark(run)
    assert all(checks.values()), checks
    assert isomorphism is not None


@pytest.mark.benchmark(group="FIG3 figure 3 reduction")
def test_figure3_reduction_and_solver(benchmark):
    def run():
        figure = figure3.build()
        result = figure.solve_corrected()
        return figure.checks(), result

    checks, result = benchmark(run)
    assert all(checks.values()), checks
    assert result.consistent
