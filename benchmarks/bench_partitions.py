"""EXP-PART: the integer-coded partition kernel vs the block-based oracle.

The partition layer (§3.1 product/sum, Definitions 1–3) is the data structure
every other experiment bottoms out in.  Series produced:

* **product/sum/refines scaling** — the label-array kernel against the
  frozenset-of-frozensets oracle (``repro.partitions.oracle``) on growing
  populations; the partition-kernel claim of the README is that the kernel
  beats the oracle by ≥3× on the largest workload;
* **canonical-interpretation batch satisfaction** — a batch of PDs decided
  against one relation: one canonical interpretation + memoized DAG
  evaluation (``relation_pd_verdicts``) vs one ``I(r)`` per PD (the seed
  behaviour of ``relation_satisfies_pd`` in a loop);
* **Bell-lattice enumeration** — ``set_partitions`` emitting restricted
  growth strings directly as label arrays over one shared universe.

Every benchmark round asserts the computed values against the oracle (or
``bell_number``), so the implementations cannot silently diverge.
"""

import random

import pytest

from repro.dependencies.satisfaction import relation_pd_verdicts, relation_satisfies_pd
from repro.lattice.partition_lattice import bell_number, set_partitions
from repro.partitions.kernel import Universe
from repro.partitions.oracle import block_product, block_refines, block_sum
from repro.partitions.partition import Partition
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_relations import attribute_names, random_relation


def _partition_pair(n: int, seed: int) -> tuple[Partition, Partition]:
    """Two random partitions of ``range(n)`` over one shared universe.

    ``q`` is built as a coarsening-biased relabelling so that ``refines`` is
    non-trivial in both directions.
    """
    rng = random.Random(seed)
    universe = Universe(range(n))
    groups_p = max(2, n // 8)
    groups_q = max(2, n // 32)
    p = Partition.from_labels(universe, (rng.randrange(groups_p) for _ in range(n)))
    q = Partition.from_labels(universe, (rng.randrange(groups_q) for _ in range(n)))
    return p, q


@pytest.mark.benchmark(group="EXP-PART product: kernel vs block oracle")
@pytest.mark.parametrize("n", [256, 1024, 4096])
@pytest.mark.parametrize("variant", ["kernel", "oracle"])
def test_product_scaling(benchmark, n, variant, rng_seed):
    p, q = _partition_pair(n, rng_seed + n)
    if variant == "kernel":
        result = benchmark(p.product, q)
    else:
        result = benchmark(block_product, p, q)
    assert result == block_product(p, q)


@pytest.mark.benchmark(group="EXP-PART sum: kernel vs block oracle")
@pytest.mark.parametrize("n", [256, 1024, 4096])
@pytest.mark.parametrize("variant", ["kernel", "oracle"])
def test_sum_scaling(benchmark, n, variant, rng_seed):
    p, q = _partition_pair(n, rng_seed + n)
    if variant == "kernel":
        result = benchmark(p.sum, q)
    else:
        result = benchmark(block_sum, p, q)
    assert result == block_sum(p, q)


@pytest.mark.benchmark(group="EXP-PART refines: kernel vs block oracle")
@pytest.mark.parametrize("n", [256, 1024, 4096])
@pytest.mark.parametrize("variant", ["kernel", "oracle"])
def test_refines_scaling(benchmark, n, variant, rng_seed):
    p, q = _partition_pair(n, rng_seed + n)
    fine = p.product(q)  # guaranteed to refine both
    if variant == "kernel":
        result = benchmark(fine.refines, q)
    else:
        result = benchmark(block_refines, fine, q)
    assert result is True
    assert fine.refines(q) == block_refines(fine, q)


# -- canonical-interpretation batch satisfaction ---------------------------------


def _satisfaction_workload(tuple_count: int, pd_count: int, seed: int):
    attribute_count = 4
    relation = random_relation(attribute_count, tuple_count, domain_size=5, seed=seed)
    pds = random_pd_set(attribute_count, pd_count, seed=seed + 1, max_complexity=4)
    # Guard against PDs over attributes the relation does not carry.
    universe = set(attribute_names(attribute_count))
    pds = [pd for pd in pds if set(pd.attributes) <= universe]
    return relation, pds


@pytest.mark.benchmark(group="EXP-PART canonical batch satisfaction")
@pytest.mark.parametrize("tuple_count,pd_count", [(30, 10), (60, 25), (120, 50)])
@pytest.mark.parametrize("variant", ["batched", "per-pd"])
def test_batch_satisfaction(benchmark, tuple_count, pd_count, variant, rng_seed):
    relation, pds = _satisfaction_workload(tuple_count, pd_count, rng_seed)
    if variant == "batched":
        verdicts = benchmark(relation_pd_verdicts, relation, pds)
    else:
        verdicts = benchmark(lambda: [relation_satisfies_pd(relation, pd) for pd in pds])
    assert verdicts == [relation_satisfies_pd(relation, pd) for pd in pds]


# -- Bell-lattice enumeration ------------------------------------------------------


@pytest.mark.benchmark(group="EXP-PART Bell-lattice enumeration")
@pytest.mark.parametrize("n", [7, 9])
def test_bell_enumeration(benchmark, n):
    def run():
        count = 0
        for _ in set_partitions(list(range(n))):
            count += 1
        return count

    count = benchmark(run)
    assert count == bell_number(n)
