"""EXP-SNAP: durable Γ snapshots — cold start vs zero-warmup restore.

The snapshot claim: restoring a warm session from its exported snapshot is
≥ 5× faster than recomputing the same state cold, because the restore pays
only parsing + table installation while the cold path pays the ALG closure,
the Theorem 12 normalization, the chase preprocessing and every query in the
stream.  Series produced on the largest ``random_service`` stream (240
requests, 12 PDs/theory — the same workload EXP-SVC scales on):

* **session cold vs restore** — (a) cold: build a :class:`Session` and
  answer the whole stream; (b) restore: rebuild the session from the warm
  snapshot text (digest check, re-interning parse, index installation,
  shipped result cache) and answer the same stream.  Measured here the
  restore lands ≈2 orders of magnitude under cold (the README's EXP-SNAP
  table records the exact ratio per machine).
* **2-shard executor cold vs restore** — worker pools built inside the timed
  region (that *is* the cost being measured): (a) cold workers replay Γ and
  the stream; (b) snapshot-shipped workers restore and answer from warm
  state.  This is the per-worker warm-up the snapshot removes — it used to
  scale with ``shards × |stream|``.
* **server boot-to-first-answer** — an asyncio :class:`QueryServer` booted
  (a) cold and (b) from ``--snapshot-dir``, timed from ``start()`` to the
  first answered request of the acceptance-shaped stream.

Every round cross-checks byte-identity against the cold pipeline's wire
encodings, so the restored fast path cannot silently diverge.
"""

import asyncio
import time

import pytest

from repro.service.config import ServiceConfig
from repro.service.executor import ShardExecutor
from repro.service.planner import execute_plan
from repro.service.server import QueryServer
from repro.service.session import Session
from repro.service.snapshot import dump_snapshot, restore_session, save_snapshot
from repro.service.wire import dump_request_line, dump_result_line
from repro.workloads.random_service import random_service_requests

#: The largest EXP-SVC stream: 240 requests over 2 theories of 12 PDs each.
STREAM_COUNT, STREAM_PDS = 240, 12


def _stream(seed: int):
    return random_service_requests(
        STREAM_COUNT,
        seed=seed,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=STREAM_PDS,
        max_complexity=3,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "fd_implies": 2},
    )


def _encoded(results):
    return [dump_result_line(result) for result in results]


def _warm_snapshot(requests) -> tuple[str, list]:
    """A warm session's snapshot text plus the expected wire lines."""
    warm = Session()
    expected = _encoded(execute_plan(warm, requests))
    return dump_snapshot(warm), expected


@pytest.mark.benchmark(group="EXP-SNAP session: cold Γ recomputation vs snapshot restore")
@pytest.mark.parametrize("mode", ["cold", "restore"])
def test_session_cold_vs_restore(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    snapshot, expected = _warm_snapshot(requests)

    if mode == "cold":

        def run():
            return execute_plan(Session(), requests)

    else:

        def run():
            return execute_plan(restore_session(snapshot), requests)

    results = benchmark(run)
    assert _encoded(results) == expected


@pytest.mark.benchmark(group="EXP-SNAP 2-shard executor: cold worker warm-up vs snapshot ship")
@pytest.mark.parametrize("mode", ["cold", "restore"])
def test_shard_pool_cold_vs_restore(benchmark, mode, rng_seed):
    requests = _stream(rng_seed)
    snapshot, expected = _warm_snapshot(requests)
    kwargs = {} if mode == "cold" else {"snapshot": snapshot}

    def setup():
        return (ShardExecutor(shards=2, **kwargs),), {}

    def run(executor):
        # Pool creation (and hence worker warm-up or restore) happens inside
        # the timed region — that is exactly the cost the snapshot removes.
        try:
            return executor.execute(requests)
        finally:
            executor.close()

    results = benchmark.pedantic(run, setup=setup, rounds=3)
    assert _encoded(results) == expected


async def _boot_to_first_answer(config: ServiceConfig, first_line: str) -> str:
    """Start a server, send one request, return its answer line (then drain)."""
    server = QueryServer(config)
    host, port = await server.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((first_line + "\n").encode("utf-8"))
        await writer.drain()
        writer.write_eof()
        answer = (await reader.readline()).decode("utf-8").rstrip("\n")
        writer.close()
        return answer
    finally:
        await server.drain()


@pytest.mark.benchmark(group="EXP-SNAP server boot-to-first-answer: cold vs --snapshot-dir")
@pytest.mark.parametrize("mode", ["cold", "restore"])
def test_server_boot_to_first_answer(benchmark, mode, rng_seed, tmp_path):
    requests = _stream(rng_seed)
    snapshot, expected = _warm_snapshot(requests)
    first_line = dump_request_line(requests[0])
    if mode == "restore":
        save_snapshot(restore_session(snapshot), tmp_path)
        config = ServiceConfig(max_wait_ms=1.0, snapshot_dir=str(tmp_path))
    else:
        config = ServiceConfig(max_wait_ms=1.0)

    def run():
        return asyncio.run(_boot_to_first_answer(config, first_line))

    answer = benchmark(run)
    assert answer == expected[0]


def measure_snapshot_ratio(seed: int = 20260617, rounds: int = 3) -> dict:
    """The acceptance measurement: cold wall time / restore wall time per round.

    Used by the CI smoke and the README table; kept importable so the ratio
    is computed the same way everywhere.
    """
    requests = _stream(seed)
    snapshot, expected = _warm_snapshot(requests)

    def _time(fn):
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - started)
            assert _encoded(out) == expected
        return best

    cold = _time(lambda: execute_plan(Session(), requests))
    restore = _time(lambda: execute_plan(restore_session(snapshot), requests))
    return {
        "stream": {"count": STREAM_COUNT, "pds_per_theory": STREAM_PDS},
        "cold_seconds": cold,
        "restore_seconds": restore,
        "speedup": cold / restore if restore else float("inf"),
        "snapshot_bytes": len(snapshot),
    }


def test_snapshot_restore_meets_the_5x_acceptance_bar(rng_seed):
    """The ISSUE's acceptance criterion, pinned: restore ≥ 5× faster than cold."""
    report = measure_snapshot_ratio(seed=rng_seed, rounds=3)
    assert report["speedup"] >= 5.0, report
