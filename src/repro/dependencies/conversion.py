"""Conversions between FDs, FPDs and PDs (§3.2 Example a, §4.2 Example f, §5.3).

The paper moves freely between three presentations of functional
determination:

* the FD ``X → Y`` (a first-order sentence about relations);
* the FPD ``X = X·Y`` / ``Y = Y + X`` / ``X ≤ Y`` (a lattice equation);
* within a set ``E`` of FPDs the notation ``E_F`` for the corresponding FDs.

Example f also notes that an equation between two attribute-set products
``X = Y·Z`` is expressed by the *pair* of FDs ``{X → YZ, YZ → X}``; the
helpers here implement all of these translations so the implication and
consistency engines can switch representation as the paper's proofs do.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.dependencies.fpd import FunctionalPartitionDependency, _flatten_product_attributes
from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.relational.attributes import AttributeSet, as_attribute_set
from repro.relational.functional_dependencies import FunctionalDependency


def fd_to_fpd(fd: FunctionalDependency) -> FunctionalPartitionDependency:
    """The FPD ``X = X·Y`` corresponding to an FD ``X → Y`` (the paper's δ_σ)."""
    return FunctionalPartitionDependency.from_fd(fd)


def fpd_to_fd(fpd: FunctionalPartitionDependency) -> FunctionalDependency:
    """The FD ``X → Y`` corresponding to an FPD ``X = X·Y``."""
    return fpd.to_fd()


def fd_to_pd(fd: FunctionalDependency) -> PartitionDependency:
    """The PD (product form) corresponding to an FD."""
    return fd_to_fpd(fd).as_pd()


def fds_to_pds(fds: Iterable[FunctionalDependency]) -> list[PartitionDependency]:
    """The set ``E_Σ`` of FPD translations of a set of FDs (as PDs)."""
    return [fd_to_pd(fd) for fd in fds]


def fds_to_fpds(fds: Iterable[FunctionalDependency]) -> list[FunctionalPartitionDependency]:
    """The set of FPDs corresponding to a set of FDs."""
    return [fd_to_fpd(fd) for fd in fds]


def fpds_to_fds(fpds: Iterable[FunctionalPartitionDependency]) -> list[FunctionalDependency]:
    """``E_F``: the FDs corresponding to a set of FPDs (used in Theorems 6, 11, 12)."""
    return [fpd_to_fd(fpd) for fpd in fpds]


def pds_to_fds(pds: Iterable[PartitionDependencyLike]) -> list[FunctionalDependency]:
    """Translate every *recognizably functional* PD in the input to an FD.

    PDs that are not syntactically FPDs are skipped — this matches the
    paper's usage, where ``E_F`` is only formed from sets of FPDs, but lets
    callers run the translation on mixed sets (the non-functional part is
    handled separately by the Theorem 12 machinery).
    """
    result: list[FunctionalDependency] = []
    for raw in pds:
        pd = as_partition_dependency(raw)
        fpd = FunctionalPartitionDependency.try_from_pd(pd)
        if fpd is not None and not fpd.is_trivial():
            result.append(fpd.to_fd())
    return result


def scheme_equation_to_fds(
    left: Union[str, AttributeSet], right: Union[str, AttributeSet]
) -> list[FunctionalDependency]:
    """Example f: the PD ``X = Y·Z`` (two attribute-set products) as the FD pair ``{X → YZ, YZ → X}``.

    ``left`` and ``right`` are the two attribute sets; the result is the pair
    of FDs expressing the equation over relations.
    """
    left_set = as_attribute_set(left)
    right_set = as_attribute_set(right)
    return [
        FunctionalDependency(left_set, right_set),
        FunctionalDependency(right_set, left_set),
    ]


def pd_between_products_to_fds(pd: PartitionDependencyLike) -> list[FunctionalDependency]:
    """Example f generalized: a PD whose both sides are attribute products, as a pair of FDs.

    Raises ``ValueError`` when a side is not a pure product of attributes.
    """
    parsed = as_partition_dependency(pd)
    left = _flatten_product_attributes(parsed.left)
    right = _flatten_product_attributes(parsed.right)
    if left is None or right is None:
        raise ValueError(
            f"PD {parsed} is not an equation between attribute products; "
            "use the Theorem 12 normalization for general PDs"
        )
    return scheme_equation_to_fds(left, right)
