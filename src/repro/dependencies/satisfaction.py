"""Satisfaction of partition dependencies by relations (Definition 7, §4.1).

A relation ``r`` satisfies a PD ``δ`` iff its canonical interpretation
``I(r)`` satisfies ``δ``.  Besides that definition, §4.1 gives three direct
characterizations for binary PDs over attributes ``A, B, C``:

  (I)   ``r ⊨ C = A·B``  iff for all tuples ``t, h``:
        ``t[C] = h[C]``  ⇔  (``t[A] = h[A]`` and ``t[B] = h[B]``);
  (II)  ``r ⊨ C = A + B`` iff for all tuples ``t, h``:
        ``t[C] = h[C]``  ⇔  ``t`` and ``h`` are linked by a chain of tuples
        consecutively sharing their ``A`` or their ``B`` value;
  (III) same as (II) with "and" in place of "or" — trivially equivalent to (I).

and, from the discussion after Theorem 4, the one-directional variant

  (IV)  ``r ⊨ C ≤ A + B`` iff ``t[C] = h[C]`` *implies* the chain condition.

This module implements Definition 7 (via ``I(r)``) and the direct
characterizations (used to cross-check the canonical-interpretation route in
tests, and by the connectivity benchmark, where they are much faster than
building ``I(r)`` explicitly).
"""

from __future__ import annotations

from collections.abc import Iterable

from typing import Optional

from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.errors import DependencyError
from repro.expressions.ast import ExpressionLike, as_expression
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.kernel import Universe
from repro.partitions.partition import Partition
from repro.relational.attributes import Attribute
from repro.relational.relations import Relation


def relation_satisfies_pd(relation: Relation, dependency: PartitionDependencyLike) -> bool:
    """Definition 7: ``r ⊨ δ`` iff ``I(r) ⊨ δ``.

    The empty relation vacuously satisfies every PD (its canonical
    interpretation is undefined, but every characterization of satisfaction
    quantifies over tuples).
    """
    pd = as_partition_dependency(dependency)
    if len(relation) == 0:
        return True
    missing = pd.attributes - relation.attributes
    if missing:
        raise DependencyError(
            f"relation {relation.name!r} lacks attributes {sorted(missing)} of PD {pd}"
        )
    interpretation = canonical_interpretation(relation)
    return interpretation.satisfies_pd(pd)


def relation_satisfies_all_pds(
    relation: Relation, dependencies: Iterable[PartitionDependencyLike]
) -> bool:
    """Satisfaction of a set of PDs, building ``I(r)`` only once.

    The batch shares the canonical interpretation's memoized DAG evaluator
    (subexpressions shared between PDs are evaluated once) and
    short-circuits on the first violated PD, as the seed did.
    """
    pds = [as_partition_dependency(d) for d in dependencies]
    if len(relation) == 0 or not pds:
        return True
    interpretation = canonical_interpretation(relation)
    return interpretation.satisfies_all_pds(pds)


def relation_pd_verdicts(
    relation: Relation, dependencies: Iterable[PartitionDependencyLike]
) -> list[bool]:
    """Per-PD verdicts for a batch of PDs over one canonical interpretation.

    Mirrors :func:`relation_satisfies_pd`'s contract: the empty relation
    vacuously satisfies every PD, and (like the singular form) no
    missing-attribute validation happens in that case.
    """
    pds = [as_partition_dependency(d) for d in dependencies]
    if not pds:
        return []
    if len(relation) == 0:
        return [True] * len(pds)
    for pd in pds:
        missing = pd.attributes - relation.attributes
        if missing:
            raise DependencyError(
                f"relation {relation.name!r} lacks attributes {sorted(missing)} of PD {pd}"
            )
    interpretation = canonical_interpretation(relation)
    return interpretation.pd_verdicts(pds)


def expression_partition(relation: Relation, expression: ExpressionLike) -> Partition:
    """The partition of tuple identifiers induced by ``expression`` under ``I(r)``.

    Tuple identifiers are 1..n in the relation's deterministic order, matching
    :func:`repro.partitions.canonical.canonical_interpretation`.
    """
    return canonical_interpretation(relation).meaning(as_expression(expression))


def expression_partitions(
    relation: Relation, expressions: Iterable[ExpressionLike]
) -> list[Partition]:
    """The partitions induced by several expressions under one ``I(r)`` (one DAG walk)."""
    interpretation = canonical_interpretation(relation)
    return interpretation.meaning_many([as_expression(e) for e in expressions])


# -- direct characterizations (I), (II), (IV) -------------------------------------


def _column_partition(
    relation: Relation,
    attribute: Attribute,
    universe: Optional[Universe] = None,
    rows: Optional[list] = None,
) -> Partition:
    """The kernel partition of a column: tuples grouped by their value under ``attribute``.

    Pass a shared ``universe`` (tuple identifiers ``1..n``) and the
    ``sorted_rows()`` list when several columns of one relation are compared
    or combined: the partitions then share one universe object (the integer
    kernel's same-universe fast paths) and the rows are sorted only once.
    """
    if rows is None:
        rows = relation.sorted_rows()
    if universe is None:
        universe = Universe(range(1, len(rows) + 1))
    return Partition.from_labels(universe, (rows[i - 1][attribute] for i in universe.elements))


def satisfies_product_characterization(
    relation: Relation, c: Attribute, a: Attribute, b: Attribute
) -> bool:
    """Characterization (I): ``r ⊨ C = A·B`` iff agreeing on C ⇔ agreeing on both A and B."""
    rows = relation.sorted_rows()
    for t in rows:
        for h in rows:
            same_c = t[c] == h[c]
            same_ab = t[a] == h[a] and t[b] == h[b]
            if same_c != same_ab:
                return False
    return True


def satisfies_sum_characterization(
    relation: Relation, c: Attribute, a: Attribute, b: Attribute
) -> bool:
    """Characterization (II): ``r ⊨ C = A + B`` iff agreeing on C ⇔ chain-connected via A or B.

    The chain condition is computed as the partition sum of the two column
    partitions — exactly the connected components of the tuple graph in which
    two tuples are adjacent when they share their A value or their B value.
    """
    if len(relation) == 0:
        return True
    rows = relation.sorted_rows()
    universe = Universe(range(1, len(rows) + 1))
    chain = _column_partition(relation, a, universe, rows) + _column_partition(
        relation, b, universe, rows
    )
    return chain == _column_partition(relation, c, universe, rows)


def satisfies_order_sum_characterization(
    relation: Relation, c: Attribute, a: Attribute, b: Attribute
) -> bool:
    """The one-directional PD ``C ≤ A + B``: agreeing on C *implies* chain-connected via A or B."""
    if len(relation) == 0:
        return True
    rows = relation.sorted_rows()
    universe = Universe(range(1, len(rows) + 1))
    chain = _column_partition(relation, a, universe, rows) + _column_partition(
        relation, b, universe, rows
    )
    return _column_partition(relation, c, universe, rows).refines(chain)


def satisfies_fd_characterization(
    relation: Relation, lhs: Iterable[Attribute], rhs: Iterable[Attribute]
) -> bool:
    """Theorem 3b re-stated on columns: ``r ⊨ X → Y`` iff the X-partition refines the Y-partition.

    (The X-partition groups tuples agreeing on every attribute of X.)  This is
    the "partition view" of FD satisfaction that makes Theorem 3 transparent;
    it is used by tests to cross-check
    :meth:`repro.relational.functional_dependencies.FunctionalDependency.is_satisfied_by`.
    """
    if len(relation) == 0:
        return True
    rows = relation.sorted_rows()
    lhs_list, rhs_list = list(lhs), list(rhs)
    universe = Universe(range(1, len(rows) + 1))
    x_partition = Partition.from_labels(
        universe, (tuple(rows[i - 1][attr] for attr in lhs_list) for i in universe.elements)
    )
    y_partition = Partition.from_labels(
        universe, (tuple(rows[i - 1][attr] for attr in rhs_list) for i in universe.elements)
    )
    return x_partition.refines(y_partition)
