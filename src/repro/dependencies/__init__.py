"""Dependencies under partition semantics: PDs, FPDs, and their FD correspondence (§3.2, §4.1)."""

from repro.dependencies.conversion import (
    fd_to_fpd,
    fd_to_pd,
    fds_to_fpds,
    fds_to_pds,
    fpd_to_fd,
    fpds_to_fds,
    pd_between_products_to_fds,
    pds_to_fds,
    scheme_equation_to_fds,
)
from repro.dependencies.fpd import FunctionalPartitionDependency
from repro.dependencies.pd import (
    PartitionDependency,
    PartitionDependencyLike,
    as_partition_dependency,
    lattice_axiom_instances,
    parse_pd_set,
)
from repro.dependencies.satisfaction import (
    expression_partition,
    expression_partitions,
    relation_pd_verdicts,
    relation_satisfies_all_pds,
    relation_satisfies_pd,
    satisfies_fd_characterization,
    satisfies_order_sum_characterization,
    satisfies_product_characterization,
    satisfies_sum_characterization,
)

__all__ = [
    "PartitionDependency",
    "PartitionDependencyLike",
    "as_partition_dependency",
    "parse_pd_set",
    "lattice_axiom_instances",
    "FunctionalPartitionDependency",
    "fd_to_fpd",
    "fpd_to_fd",
    "fd_to_pd",
    "fds_to_pds",
    "fds_to_fpds",
    "fpds_to_fds",
    "pds_to_fds",
    "scheme_equation_to_fds",
    "pd_between_products_to_fds",
    "relation_satisfies_pd",
    "relation_satisfies_all_pds",
    "relation_pd_verdicts",
    "expression_partition",
    "expression_partitions",
    "satisfies_product_characterization",
    "satisfies_sum_characterization",
    "satisfies_order_sum_characterization",
    "satisfies_fd_characterization",
]
