"""Functional partition dependencies (FPDs): the PD counterpart of FDs (§3.2, §4.1).

An FPD is a partition dependency of the form ``X = X·Y`` where ``X`` and
``Y`` are non-empty sets of attributes (each standing for the product of its
members).  By lattice duality the same constraint can be written
``Y = Y + X`` or, using the natural partial order, ``X ≤ Y``.

Theorem 3 of the paper shows FPDs are the exact partition-semantics
counterpart of FDs: ``r ⊨ X → Y  ⇔  I(r) ⊨ X = X·Y``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional, Union

from repro.errors import DependencyError
from repro.dependencies.pd import PartitionDependency
from repro.expressions.ast import (
    Attr,
    PartitionExpression,
    Product,
    Sum,
    attribute_set_expression,
)
from repro.relational.attributes import Attribute, AttributeSet, as_attribute_set
from repro.relational.functional_dependencies import FunctionalDependency


def _flatten_product_attributes(expression: PartitionExpression) -> Optional[AttributeSet]:
    """If ``expression`` is a pure product of attributes, return its attribute set."""
    if isinstance(expression, Attr):
        return AttributeSet([expression.name])
    if isinstance(expression, Product):
        left = _flatten_product_attributes(expression.left)
        right = _flatten_product_attributes(expression.right)
        if left is None or right is None:
            return None
        return left | right
    return None


def _flatten_sum_attributes(expression: PartitionExpression) -> Optional[AttributeSet]:
    """If ``expression`` is a pure sum of attributes, return its attribute set."""
    if isinstance(expression, Attr):
        return AttributeSet([expression.name])
    if isinstance(expression, Sum):
        left = _flatten_sum_attributes(expression.left)
        right = _flatten_sum_attributes(expression.right)
        if left is None or right is None:
            return None
        return left | right
    return None


class FunctionalPartitionDependency:
    """An FPD ``X ≤ Y`` (equivalently ``X = X·Y`` or ``Y = Y + X``) between attribute sets."""

    __slots__ = ("_lhs", "_rhs")

    def __init__(
        self,
        lhs: Union[str, Iterable[Attribute]],
        rhs: Union[str, Iterable[Attribute]],
    ) -> None:
        left = as_attribute_set(lhs)
        right = as_attribute_set(rhs)
        if not left or not right:
            raise DependencyError("both attribute sets of an FPD must be non-empty")
        self._lhs = left
        self._rhs = right

    @property
    def lhs(self) -> AttributeSet:
        """The attribute set ``X`` (the finer side / FD determinant)."""
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        """The attribute set ``Y`` (the coarser side / FD dependent)."""
        return self._rhs

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned."""
        return self._lhs | self._rhs

    def is_trivial(self) -> bool:
        """True iff ``Y ⊆ X`` — the FPD then holds in every interpretation."""
        return self._rhs <= self._lhs

    # -- the three equivalent syntactic forms of §3.2 ---------------------------------
    def as_product_pd(self) -> PartitionDependency:
        """The form ``X = X·Y``."""
        left = attribute_set_expression(self._lhs)
        return PartitionDependency(left, Product(left, attribute_set_expression(self._rhs)))

    def as_sum_pd(self) -> PartitionDependency:
        """The dual form ``Y = Y + X``."""
        right = attribute_set_expression(self._rhs)
        return PartitionDependency(right, Sum(right, attribute_set_expression(self._lhs)))

    def as_pd(self) -> PartitionDependency:
        """The default PD rendering (the product form ``X = X·Y``)."""
        return self.as_product_pd()

    def as_order_text(self) -> str:
        """The order notation ``X <= Y``."""
        return f"{self._lhs} <= {self._rhs}"

    # -- FD correspondence (Theorem 3) ---------------------------------------------------
    def to_fd(self) -> FunctionalDependency:
        """The corresponding functional dependency ``X → Y``."""
        return FunctionalDependency(self._lhs, self._rhs)

    @classmethod
    def from_fd(cls, fd: FunctionalDependency) -> "FunctionalPartitionDependency":
        """The FPD ``X = X·Y`` corresponding to an FD ``X → Y``."""
        return cls(fd.lhs, fd.rhs)

    # -- recognizing FPDs among PDs ----------------------------------------------------------
    @classmethod
    def try_from_pd(cls, pd: PartitionDependency) -> Optional["FunctionalPartitionDependency"]:
        """Recognize a PD that is syntactically an FPD; return ``None`` otherwise.

        Three shapes are recognized (all products/sums of plain attributes):

        * ``X = X·Y`` with ``X ⊆ X·Y``'s attributes — the product form;
        * ``Y = Y + X`` — the dual sum form;
        * ``X = Y`` with ``X ⊇ Y`` (a degenerate product form where the extra
          factor is absorbed).
        """
        left_prod = _flatten_product_attributes(pd.left)
        right_prod = _flatten_product_attributes(pd.right)
        if left_prod is not None and right_prod is not None:
            if left_prod <= right_prod:
                extra = right_prod - left_prod
                return cls(left_prod, extra if extra else left_prod)
            if right_prod <= left_prod:
                extra = left_prod - right_prod
                return cls(right_prod, extra if extra else right_prod)
            return None
        left_sum = _flatten_sum_attributes(pd.left)
        right_sum = _flatten_sum_attributes(pd.right)
        if left_sum is not None and right_sum is not None:
            # Y = Y + X  (the coarser side is the smaller sum)
            if left_sum <= right_sum:
                extra = right_sum - left_sum
                return cls(extra if extra else left_sum, left_sum)
            if right_sum <= left_sum:
                extra = left_sum - right_sum
                return cls(extra if extra else right_sum, right_sum)
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalPartitionDependency):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs))

    def __repr__(self) -> str:
        return f"FunctionalPartitionDependency({self._lhs.sorted()!r}, {self._rhs.sorted()!r})"

    def __str__(self) -> str:
        return f"{self._lhs} = {self._lhs} * {self._rhs}"
