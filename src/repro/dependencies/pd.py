"""Partition dependencies (PDs): equations between partition expressions (Definition 3, §3.2).

A PD is an equation ``e = e'`` between two partition expressions.  A
partition interpretation satisfies it when the meanings of the two sides are
the same partition over the same population; a *relation* satisfies it when
its canonical interpretation does (Definition 7, implemented in
:mod:`repro.dependencies.satisfaction`).

PDs subsume FDs (via functional partition dependencies, see
:mod:`repro.dependencies.fpd`) and can additionally express connectivity
conditions such as ``C = A + B`` (Example e / Theorem 4).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.errors import DependencyError
from repro.expressions.ast import ExpressionLike, PartitionExpression, as_expression
from repro.expressions.printer import to_infix
from repro.relational.attributes import AttributeSet


class PartitionDependency:
    """An equation ``left = right`` between partition expressions."""

    __slots__ = ("_left", "_right")

    def __init__(self, left: ExpressionLike, right: ExpressionLike) -> None:
        self._left = as_expression(left)
        self._right = as_expression(right)

    @classmethod
    def parse(cls, text: str) -> "PartitionDependency":
        """Parse ``"e = e'"``, the FPD order notation ``"X <= Y"``, or ``"X ≤ Y"``.

        ``X <= Y`` abbreviates the PD ``X = X * Y`` (equivalently
        ``Y = Y + X``), following §3.2 of the paper.
        """
        normalized = text.replace("≤", "<=")
        if "<=" in normalized:
            left_text, right_text = normalized.split("<=", 1)
            left = as_expression(left_text.strip())
            right = as_expression(right_text.strip())
            from repro.expressions.ast import Product

            return cls(left, Product(left, right))
        if "=" not in normalized:
            raise DependencyError(f"cannot parse PD from {text!r}: missing '=' or '<='")
        left_text, right_text = normalized.split("=", 1)
        if not left_text.strip() or not right_text.strip():
            raise DependencyError(f"cannot parse PD from {text!r}: empty side")
        return cls(left_text.strip(), right_text.strip())

    @property
    def left(self) -> PartitionExpression:
        """The left-hand expression ``e``."""
        return self._left

    @property
    def right(self) -> PartitionExpression:
        """The right-hand expression ``e'``."""
        return self._right

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned on either side."""
        return self._left.attributes() | self._right.attributes()

    def reversed(self) -> "PartitionDependency":
        """The same equation with the sides swapped (identical semantics)."""
        return PartitionDependency(self._right, self._left)

    def dual(self) -> "PartitionDependency":
        """The dual PD: swap ``*`` and ``+`` on both sides."""
        return PartitionDependency(self._left.dual(), self._right.dual())

    def complexity(self) -> int:
        """Total operator count of both sides (the measure used in Theorem 8)."""
        return self._left.complexity() + self._right.complexity()

    def size(self) -> int:
        """Total AST size of both sides."""
        return self._left.size() + self._right.size()

    def is_identity_candidate(self) -> bool:
        """True iff both sides are syntactically equal (trivially a lattice identity)."""
        return self._left == self._right

    def is_functional(self) -> bool:
        """True iff this PD has the shape of an FPD ``X = X·Y`` for attribute sets X, Y."""
        from repro.dependencies.fpd import FunctionalPartitionDependency

        return FunctionalPartitionDependency.try_from_pd(self) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionDependency):
            return NotImplemented
        return self._left == other._left and self._right == other._right

    def __hash__(self) -> int:
        return hash((self._left, self._right))

    def __repr__(self) -> str:
        return f"PartitionDependency({to_infix(self._left)!r}, {to_infix(self._right)!r})"

    def __str__(self) -> str:
        return f"{to_infix(self._left)} = {to_infix(self._right)}"


#: Things accepted wherever a PD is expected: a PD, a string like ``"A = A*B"``,
#: or a pair of expressions.
PartitionDependencyLike = Union[PartitionDependency, str, tuple]


def as_partition_dependency(value: PartitionDependencyLike) -> PartitionDependency:
    """Coerce a value to a :class:`PartitionDependency`."""
    if isinstance(value, PartitionDependency):
        return value
    if isinstance(value, str):
        return PartitionDependency.parse(value)
    if isinstance(value, tuple) and len(value) == 2:
        return PartitionDependency(value[0], value[1])
    raise DependencyError(f"cannot interpret {value!r} as a partition dependency")


def parse_pd_set(texts: Iterable[str]) -> list[PartitionDependency]:
    """Parse several PDs given as strings."""
    return [PartitionDependency.parse(text) for text in texts]


def lattice_axiom_instances(
    x: ExpressionLike, y: ExpressionLike, z: ExpressionLike
) -> list[PartitionDependency]:
    """The eight lattice-axiom PDs (LA of §2.2) instantiated at three expressions.

    Every partition interpretation satisfies all of them (§3.2); the property
    tests check this and the identity checker recognizes them with ``E = ∅``.
    """
    a, b, c = as_expression(x), as_expression(y), as_expression(z)
    return [
        PartitionDependency((a * b) * c, a * (b * c)),
        PartitionDependency((a + b) + c, a + (b + c)),
        PartitionDependency(a * b, b * a),
        PartitionDependency(a + b, b + a),
        PartitionDependency(a * a, a),
        PartitionDependency(a + a, a),
        PartitionDependency(a + (a * b), a),
        PartitionDependency(a * (a + b), a),
    ]
