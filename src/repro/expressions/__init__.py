"""Partition expressions: the term language of the paper (§3.1).

AST nodes (:class:`Attr`, :class:`Product`, :class:`Sum`), a parser for the
string notation, pretty-printers, and evaluation under a partition
interpretation.
"""

from repro.expressions.ast import (
    Attr,
    ExpressionLike,
    PartitionExpression,
    Product,
    Sum,
    all_subexpressions,
    as_expression,
    attr,
    attribute_set_expression,
    attrs,
    product_of,
    sum_of,
)
from repro.expressions.evaluation import evaluate, evaluate_many
from repro.expressions.parser import parse_expression, tokenize
from repro.expressions.printer import to_infix, to_paper, to_prefix

__all__ = [
    "PartitionExpression",
    "Attr",
    "Product",
    "Sum",
    "ExpressionLike",
    "attr",
    "attrs",
    "as_expression",
    "product_of",
    "sum_of",
    "attribute_set_expression",
    "all_subexpressions",
    "parse_expression",
    "tokenize",
    "to_infix",
    "to_paper",
    "to_prefix",
    "evaluate",
    "evaluate_many",
]
