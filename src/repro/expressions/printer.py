"""Pretty-printers for partition expressions.

Three styles are provided:

* :func:`to_infix` — minimal-parenthesis infix form using the standard
  precedence (``*`` over ``+``); round-trips through the parser.
* :func:`to_paper` — the paper's fully spaced style (``(A * B) + C``) with
  ``·`` available for products.
* :func:`to_prefix` — LISP-like prefix form, convenient in test failure
  messages because associativity is explicit.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.expressions.ast import Attr, PartitionExpression, Product, Sum


def to_infix(expression: PartitionExpression) -> str:
    """Minimal-parenthesis infix rendering; ``parse_expression`` inverts it exactly.

    Parentheses are emitted only where the parser's precedence (``*`` over
    ``+``) or left-associativity would otherwise rebuild a different tree:
    sums nested under products, and right operands that repeat their parent's
    operator.
    """
    if isinstance(expression, Attr):
        return expression.name
    if isinstance(expression, (Product, Sum)):
        operator = "*" if isinstance(expression, Product) else "+"
        left = _infix_child(expression.left, type(expression), is_right=False)
        right = _infix_child(expression.right, type(expression), is_right=True)
        return f"{left} {operator} {right}"
    raise ExpressionError(f"unknown expression node {expression!r}")


def _infix_child(child: PartitionExpression, parent_type: type, is_right: bool) -> str:
    rendered = to_infix(child)
    needs_parentheses = (parent_type is Product and isinstance(child, Sum)) or (
        is_right and type(child) is parent_type
    )
    return f"({rendered})" if needs_parentheses else rendered


def to_paper(expression: PartitionExpression, product_symbol: str = "*") -> str:
    """Fully parenthesized rendering in the paper's style."""
    if isinstance(expression, Attr):
        return expression.name
    if isinstance(expression, Product):
        return (
            f"({to_paper(expression.left, product_symbol)} {product_symbol} "
            f"{to_paper(expression.right, product_symbol)})"
        )
    if isinstance(expression, Sum):
        return (
            f"({to_paper(expression.left, product_symbol)} + "
            f"{to_paper(expression.right, product_symbol)})"
        )
    raise ExpressionError(f"unknown expression node {expression!r}")


def to_prefix(expression: PartitionExpression) -> str:
    """LISP-like prefix rendering, e.g. ``(+ (* A B) C)``."""
    if isinstance(expression, Attr):
        return expression.name
    if isinstance(expression, Product):
        return f"(* {to_prefix(expression.left)} {to_prefix(expression.right)})"
    if isinstance(expression, Sum):
        return f"(+ {to_prefix(expression.left)} {to_prefix(expression.right)})"
    raise ExpressionError(f"unknown expression node {expression!r}")
