"""Evaluating partition expressions under a partition interpretation.

This is the semantic side of §3.1: given an interpretation ``I`` assigning to
every attribute a population and an atomic partition, the meaning of a
partition expression is computed by structural induction, interpreting ``*``
as partition product and ``+`` as partition sum.

The heavy lifting is done by :class:`repro.partitions.interpretation.PartitionInterpretation`;
this module exposes a small functional facade (useful when the expression is
the primary object, e.g. in property-based tests that quantify over random
expressions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.expressions.ast import ExpressionLike, as_expression

if TYPE_CHECKING:  # pragma: no cover
    from repro.partitions.interpretation import PartitionInterpretation
    from repro.partitions.partition import Partition


def evaluate(expression: ExpressionLike, interpretation: "PartitionInterpretation") -> "Partition":
    """The meaning of ``expression`` in ``interpretation`` (a partition with its population).

    Evaluation is memoized per interpretation on the hash-consed expression
    DAG, so repeated evaluations (and shared subexpressions) are cache hits.
    """
    return interpretation.meaning(as_expression(expression))


def evaluate_many(
    expressions: list[ExpressionLike], interpretation: "PartitionInterpretation"
) -> list["Partition"]:
    """Evaluate several expressions under the same interpretation.

    Routed through :meth:`PartitionInterpretation.meaning_many`: the union of
    the expressions' DAGs is walked once per distinct node, so a batch with
    heavy subexpression sharing costs barely more than its largest member.
    """
    return interpretation.meaning_many(expressions)
