"""A small parser for partition expressions written as strings.

The grammar mirrors the paper's notation, with the usual convention that
``*`` binds tighter than ``+`` and explicit parentheses override precedence::

    expression := term ('+' term)*
    term       := factor ('*' factor)*
    factor     := ATTRIBUTE | '(' expression ')'

Attribute names are maximal runs of letters, digits and underscores
(``A``, ``B1``, ``employee_nr`` are all fine).  Whitespace is ignored.  The
equation forms ``e = e'`` and the FPD shorthand ``X <= Y`` are parsed by
:func:`parse_dependency` in :mod:`repro.dependencies.pd`; this module only
deals with single expressions.

Operators associate to the left, matching :func:`repro.expressions.ast.product_of`.
Because ``*`` and ``+`` are associative in every lattice this choice never
affects the semantics, only the concrete syntax tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ExpressionError
from repro.expressions.ast import Attr, PartitionExpression, Product, Sum

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<attr>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[*+().]))"
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "attr", "*", "+", "(", ")"
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Split an expression string into tokens, validating every character.

    The paper occasionally writes products with ``.`` or ``·``; both are
    accepted as synonyms of ``*``.
    """
    normalized = text.replace("·", "*").replace("⋅", "*")
    tokens: list[_Token] = []
    position = 0
    while position < len(normalized):
        match = _TOKEN_PATTERN.match(normalized, position)
        if match is None:
            remaining = normalized[position:].strip()
            if not remaining:
                break
            raise ExpressionError(
                f"cannot tokenize partition expression at position {position}: {remaining[:10]!r}"
            )
        if match.group("attr"):
            tokens.append(_Token("attr", match.group("attr"), match.start("attr")))
        else:
            op = match.group("op")
            op = "*" if op == "." else op
            tokens.append(_Token(op, op, match.start("op")))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ExpressionError(
                f"expected {kind!r} at position {token.position} in {self._source!r}, "
                f"got {token.text!r}"
            )
        return token

    def parse(self) -> PartitionExpression:
        expression = self._parse_sum()
        leftover = self._peek()
        if leftover is not None:
            raise ExpressionError(
                f"unexpected token {leftover.text!r} at position {leftover.position} "
                f"in {self._source!r}"
            )
        return expression

    def _parse_sum(self) -> PartitionExpression:
        expression = self._parse_product()
        while True:
            token = self._peek()
            if token is None or token.kind != "+":
                return expression
            self._advance()
            expression = Sum(expression, self._parse_product())

    def _parse_product(self) -> PartitionExpression:
        expression = self._parse_factor()
        while True:
            token = self._peek()
            if token is None or token.kind != "*":
                return expression
            self._advance()
            expression = Product(expression, self._parse_factor())

    def _parse_factor(self) -> PartitionExpression:
        token = self._advance()
        if token.kind == "attr":
            return Attr(token.text)
        if token.kind == "(":
            inner = self._parse_sum()
            self._expect(")")
            return inner
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.position} in {self._source!r}"
        )


def parse_expression(text: str) -> PartitionExpression:
    """Parse a partition expression such as ``"A * (B + C)"``.

    Raises :class:`~repro.errors.ExpressionError` on malformed input.
    """
    tokens = tokenize(text)
    if not tokens:
        raise ExpressionError("cannot parse an empty partition expression")
    return _Parser(tokens, text).parse()
