"""Thread-local kernel profiling counters.

The service wants to know *where the time went* inside the four kernel hot
loops (FD chase, implication-closure worklist, consistency backtracking,
NAE3SAT backtracking) without paying for that knowledge when nobody is
looking.  The kernels already touch one shared seam on every hot-loop
iteration — ``repro.deadline.check_deadline()`` — so profiling piggybacks on
those call sites with the same discipline: one thread-local lookup fetched
*once* before the loop, and a plain attribute increment per iteration only
when a profile scope is active.

Usage (instrumented kernel loop)::

    from repro import profiling
    ...
    prof = profiling.active()          # once, before the loop
    while worklist:
        if prof is not None:
            prof.closure_pops += 1
            prof.deadline_checks += 1
        check_deadline()
        ...

Usage (measuring caller)::

    with profiling.profile() as prof:
        run_kernels()
    print(prof.as_dict())

Scopes nest: when an inner ``profile()`` scope exits, its counts are
accumulated into the enclosing scope, so a per-work-unit scope still feeds a
surrounding per-request or per-benchmark scope.  When no scope is active,
``active()`` returns ``None`` and the per-iteration cost in the kernels is a
single identity check.

This module lives at the top level (not under ``repro.service``) so kernels
can import it without pulling in any service machinery.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

__all__ = ["KernelProfile", "active", "profile", "COUNTER_NAMES"]

#: Counter attributes every :class:`KernelProfile` carries, in export order.
COUNTER_NAMES = (
    "chase_steps",
    "closure_pops",
    "backtrack_nodes",
    "deadline_checks",
    "deadline_exceeded",
)


class KernelProfile:
    """A bundle of kernel-work counters for one profiling scope.

    ``chase_steps``
        Merge events applied by the indexed FD chase (``chase_engine``).
    ``closure_pops``
        Worklist elements popped by the lattice quotient closure.
    ``backtrack_nodes``
        Nodes expanded by the consistency (CAD) and NAE3SAT backtrackers.
    ``deadline_checks``
        Cooperative ``check_deadline()`` polls observed at instrumented
        call sites.
    ``deadline_exceeded``
        Times a poll actually raised :class:`~repro.deadline.DeadlineExceeded`.
    """

    __slots__ = COUNTER_NAMES

    def __init__(self) -> None:
        for name in COUNTER_NAMES:
            setattr(self, name, 0)

    def merge(self, other: "KernelProfile") -> None:
        """Accumulate ``other``'s counts into this profile."""
        for name in COUNTER_NAMES:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        """Counter name -> count, in stable export order."""
        return {name: getattr(self, name) for name in COUNTER_NAMES}

    def total_work(self) -> int:
        """Kernel-iteration total (excludes the bookkeeping counters)."""
        return self.chase_steps + self.closure_pops + self.backtrack_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"KernelProfile({inner})"


_LOCAL = threading.local()


def active() -> Optional[KernelProfile]:
    """The innermost active profile for this thread, or ``None``.

    Kernels call this once before a hot loop; the disabled fast path is one
    ``getattr`` with a default plus a truthiness check, mirroring
    ``check_deadline()``.
    """
    stack = getattr(_LOCAL, "scopes", None)
    if not stack:
        return None
    return stack[-1]


class _ProfileScope:
    """Context manager pushing a fresh :class:`KernelProfile` for this thread."""

    __slots__ = ("profile",)

    def __init__(self) -> None:
        self.profile = KernelProfile()

    def __enter__(self) -> KernelProfile:
        stack = getattr(_LOCAL, "scopes", None)
        if stack is None:
            stack = []
            _LOCAL.scopes = stack
        stack.append(self.profile)
        return self.profile

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        stack = _LOCAL.scopes
        stack.pop()
        if stack:
            # Nested scope: fold our counts into the enclosing scope so outer
            # measurements stay complete.
            stack[-1].merge(self.profile)


def profile() -> _ProfileScope:
    """Open a profiling scope; ``with profile() as prof: ...``."""
    return _ProfileScope()


def _iter_scopes() -> Iterator[KernelProfile]:  # pragma: no cover - debugging aid
    yield from getattr(_LOCAL, "scopes", ())
