"""The batch planner: group a mixed request stream into amortized dispatches.

A raw stream interleaves kinds and dependency sets arbitrarily; answering it
one request at a time pays the per-Γ setup (ALG closure, Theorem 12
normalization, chase-engine preprocessing) over and over.  The planner
recovers the batch shape the kernels already serve:

* ``implies`` / ``equivalent`` requests over one Γ are routed into
  :func:`repro.implication.word_problems.lattice_word_problems` in bounded
  chunks (:data:`IMPLICATION_CHUNK` queries per engine).  Chunking matters:
  one engine per query re-pays Γ's closure every time, while one engine for
  the *whole* group drags every query's subexpressions into a single ALG
  vertex set whose arc relation grows quadratically — measured on random
  mixed streams, the bounded chunk beats both ends by 2–6× and the
  unbounded engine by an order of magnitude;
* ``consistent``/``weak_instance`` requests over one Γ share the session's
  normalization artifacts and preprocessed chase engine — the
  :func:`repro.consistency.pd_consistency.pd_consistency_many` /
  :func:`repro.relational.chase_engine.chase_many` route, with only the
  per-database chase left as marginal work;
* ``fd_implies`` requests over one FD set Σ are decided by a single
  :func:`repro.implication.fd_implication.fd_implies_all_via_pds` call (one
  engine over the FPD translation of Σ for all targets).

Grouping is *stable*: batches are emitted in first-appearance order and every
request keeps its stream position, so :func:`execute_plan` returns results in
input order, byte-identical to one-at-a-time :meth:`Session.execute` calls
(``tests/test_service_planner.py`` asserts this on randomized mixed streams).

:func:`naive_dispatch` is the deliberately unamortized baseline — a fresh
:class:`~repro.service.session.Session` per request, the "import the library
and hand-wire an engine per query" workflow the service replaces.  EXP-SVC
benchmarks the two against each other.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import Optional

from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike
from repro.errors import DeadlineExceeded, ServiceError
from repro.implication.fd_implication import fd_implies_all_via_pds
from repro.implication.word_problems import lattice_word_problems
from repro.service import telemetry
from repro.service.session import Session, _faults
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    canonical_dumps,
    encode_fd,
    encode_pd,
    request_cache_key,
    validate_request,
)

#: Group key: (kind, consistency method or "", dependency-set key or None,
#: carries-a-deadline flag).
BatchKey = tuple[str, str, Optional[tuple[str, ...]], bool]

#: Queries per fresh ALG engine in an implication/equivalence batch.  The
#: measured sweet spot: large enough to amortize Γ's closure, small enough
#: that the engine's vertex set (and hence its quadratic arc relation) stays
#: bounded by the chunk instead of the stream.
IMPLICATION_CHUNK = 8


@dataclass(frozen=True)
class Batch:
    """One planned dispatch group: same kind, method and dependency set.

    ``deadline`` marks a group of budget-carrying requests.  Those are kept
    out of the grouped kernel calls (a shared engine cannot charge one
    caller's budget) and dispatched one request at a time, each under its own
    :func:`~repro.deadline.deadline_scope`.
    """

    kind: str
    method: str
    dep_key: Optional[tuple[str, ...]]
    indices: tuple[int, ...]
    deadline: bool = False

    def __len__(self) -> int:
        return len(self.indices)


def _dependency_key(request: QueryRequest) -> Optional[tuple[str, ...]]:
    """The grouping key of a request's reasoning context.

    ``fd_implies`` requests group on their FD set Σ (that is what the batch
    API amortizes over); everything else groups on the PD set Γ.  Requests
    without an explicit dependency set run against *their tenant's* base Γ,
    so the key carries the tenant — two tenants' base-Γ requests must never
    share a batch (their Γs differ even when both streams look identical).
    The ``"\\x00tenant"`` marker cannot collide with encoded PDs (those are
    canonical JSON strings, which never start with a NUL).
    """
    if request.kind == "fd_implies":
        return tuple(canonical_dumps(encode_fd(fd)) for fd in request.fds)
    if request.dependencies is None:
        return None if request.tenant is None else ("\x00tenant", request.tenant)
    return tuple(encode_pd(pd) for pd in request.dependencies)


def plan(requests: Sequence[QueryRequest]) -> list[Batch]:
    """Group a stream into batches, stable in first-appearance order."""
    groups: "OrderedDict[BatchKey, list[int]]" = OrderedDict()
    for index, request in enumerate(requests):
        validate_request(request)
        method = request.method if request.kind == "consistent" else ""
        key: BatchKey = (
            request.kind,
            method,
            _dependency_key(request),
            request.deadline_ms is not None,
        )
        groups.setdefault(key, []).append(index)
    return [
        Batch(kind=kind, method=method, dep_key=dep_key, indices=tuple(indices), deadline=deadline)
        for (kind, method, dep_key, deadline), indices in groups.items()
    ]


def plan_summary(requests: Sequence[QueryRequest]) -> dict:
    """Shape diagnostics for a stream (batch count, sizes per kind)."""
    batches = plan(requests)
    per_kind: dict[str, int] = {}
    for batch in batches:
        per_kind[batch.kind] = per_kind.get(batch.kind, 0) + len(batch)
    return {
        "requests": len(requests),
        "batches": len(batches),
        "largest_batch": max((len(b) for b in batches), default=0),
        "requests_per_kind": dict(sorted(per_kind.items())),
    }


def execute_plan(session: Session, requests: Sequence[QueryRequest]) -> list[QueryResult]:
    """Answer a stream through the planner, preserving input order exactly.

    Results are identical (same values, same errors) to calling
    ``session.execute`` on each request in turn — batching changes the
    amortization, never the answers.
    """
    results: list[Optional[QueryResult]] = [None] * len(requests)
    # Canonical keys are computed once per request and threaded through the
    # probe, the dispatch and the store (encoding a database-carrying request
    # three times was measurable on the hot path).
    keys: dict[int, str] = {}
    for batch in plan(requests):
        pending: list[int] = []
        duplicates: list[tuple[int, int]] = []  # (stream index, index of first occurrence)
        first_by_key: dict[str, int] = {}
        for index in batch.indices:
            if session.cache_enabled:
                keys[index] = request_cache_key(requests[index])
            cached = session.cache_lookup(requests[index], key=keys.get(index))
            if cached is not None:
                results[index] = cached
                continue
            # Identical requests always share a batch (same canonical key ⇒
            # same group key): dispatch the first occurrence, copy the rest.
            key = keys.get(index)
            first = first_by_key.get(key) if key is not None else None
            if first is not None:
                duplicates.append((index, first))
                continue
            if key is not None:
                first_by_key[key] = index
            pending.append(index)
        if pending:
            if batch.deadline:
                # A deadline lane: one dispatch per request so each runs under
                # its own scope and a blown budget costs nobody else anything.
                for index in pending:
                    with telemetry.work_unit(
                        batch.kind,
                        method=batch.method,
                        gamma=_gamma_size(session, requests[index]),
                        requests=1,
                        query_size=telemetry.request_query_size(requests[index]),
                    ):
                        result = session.execute(requests[index], use_cache=False)
                    session.cache_store(requests[index], result, key=keys.get(index))
                    results[index] = result
            elif batch.kind == "fd_implies":
                _execute_fd_batch(session, requests, results, pending, keys)
            elif batch.kind in ("implies", "equivalent"):
                _execute_implication_batch(session, requests, results, pending, keys)
            else:
                with telemetry.work_unit(
                    batch.kind,
                    method=batch.method,
                    gamma=_gamma_size(session, requests[pending[0]]),
                    requests=len(pending),
                    query_size=_batch_query_size(requests, pending),
                ):
                    _warm_batch(
                        session, requests[pending[0]], batch, [requests[i] for i in pending]
                    )
                    for index in pending:
                        # The probe above already recorded the miss; evaluate
                        # directly and store, instead of probing a second time.
                        result = session.execute(requests[index], use_cache=False)
                        session.cache_store(requests[index], result, key=keys.get(index))
                        results[index] = result
        for index, first in duplicates:
            prior = results[first]
            if prior is not None and prior.ok:
                results[index] = replace(prior, id=requests[index].id, cached=True)
            else:
                # Error results are never cached; match the sequential path
                # and recompute (the probe counts this request's own miss).
                results[index] = session.execute(requests[index], cache_key=keys.get(index))
    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # loud, not misaligned: a dropped slot would shift the CLI stream
        raise ServiceError(f"planner produced no result for requests {missing[:5]}")
    return results  # type: ignore[return-value]


def _gamma_size(session: Session, request: QueryRequest) -> int:
    """|Γ| for the cost log: the dependency-set size the request reasons over."""
    if request.kind == "fd_implies":
        return len(request.fds or ())
    if request.dependencies is not None:
        return len(request.dependencies)
    return len(session.dependencies_for(request.tenant))


def _batch_query_size(requests: Sequence[QueryRequest], indices: Sequence[int]) -> int:
    return sum(telemetry.request_query_size(requests[index]) for index in indices)


def _warm_batch(
    session: Session, representative: QueryRequest, batch: Batch, pending: Sequence[QueryRequest]
) -> None:
    """Pay the group's shared setup once, before the per-request loop."""
    context = session.context_for(representative)
    if batch.kind == "consistent" and batch.method == "weak_instance":
        # Normalization + chase-engine preprocessing once per Γ (the
        # pd_consistency_many shape); each pending query then only chases.
        context.chase_engine  # noqa: B018 - property access builds both artifacts
    elif batch.kind == "quotient":
        pools = [e for request in pending for e in request.pool]
        context.engine.prepare(pools)


def _execute_implication_batch(
    session: Session,
    requests: Sequence[QueryRequest],
    results: list[Optional[QueryResult]],
    pending: list[int],
    keys: dict[int, str],
) -> None:
    """Decide a same-Γ implication/equivalence group in bounded fresh-engine chunks.

    Each chunk of :data:`IMPLICATION_CHUNK` queries shares one
    :func:`~repro.implication.word_problems.lattice_word_problems` engine —
    Γ's closure is paid once per chunk, and no chunk's subexpressions bloat
    the closure another chunk (or the session's own index) propagates over.
    """
    representative = requests[pending[0]]
    if representative.dependencies is not None:
        # Churn-free probe: reuse the cached context if this Γ is already
        # live (counts a hit, keeps it warm in the LRU) but never *insert*
        # one — the chunks build their own engines, so a fresh entry's
        # artifacts would go unused while evicting a context other requests
        # still share.
        context = session.context_for(representative, create=False)
        dependencies: Sequence[PartitionDependency] = (
            context.dependencies if context is not None else representative.dependencies
        )
    else:
        dependencies = session.context_for(representative).dependencies
    for start in range(0, len(pending), IMPLICATION_CHUNK):
        chunk = pending[start : start + IMPLICATION_CHUNK]
        queries = []
        for index in chunk:
            request = requests[index]
            if request.kind == "implies":
                queries.append(request.query)
            else:
                queries.append(PartitionDependency(request.left, request.right))
        # The grouped kernel bypasses Session._evaluate, so the injection
        # hook fires here — a poison request kills its worker whichever lane
        # it rides in (the chunk has no deadline scopes; this is a no-op
        # without an installed fault plan).
        for index in chunk:
            _faults().on_request(requests[index].id)
        try:
            with telemetry.work_unit(
                representative.kind,
                gamma=len(dependencies),
                requests=len(chunk),
                query_size=sum(q.left.size() + q.right.size() for q in queries),
            ):
                verdicts = lattice_word_problems(dependencies, queries)
        except DeadlineExceeded:
            raise  # an enclosing budget (window budget) owns this, not a line
        except Exception:
            # Fall back to per-request dispatch so errors are reported per line.
            for index in chunk:
                results[index] = session.execute(requests[index], cache_key=keys.get(index))
            continue
        for index, verdict in zip(chunk, verdicts):
            request = requests[index]
            field = "implied" if request.kind == "implies" else "equivalent"
            result = QueryResult(kind=request.kind, ok=True, id=request.id, value={field: verdict})
            session.cache_store(request, result, key=keys.get(index))
            results[index] = result


def _execute_fd_batch(
    session: Session,
    requests: Sequence[QueryRequest],
    results: list[Optional[QueryResult]],
    pending: list[int],
    keys: dict[int, str],
) -> None:
    """Decide a same-Σ ``fd_implies`` group with one engine over the FPD translation."""
    fds = requests[pending[0]].fds
    targets = [requests[index].target for index in pending]
    for index in pending:  # injection hook; see _execute_implication_batch
        _faults().on_request(requests[index].id)
    try:
        with telemetry.work_unit(
            "fd_implies",
            gamma=len(fds),
            requests=len(pending),
            query_size=len(targets),
        ):
            verdicts = fd_implies_all_via_pds(fds, targets)
    except DeadlineExceeded:
        raise  # an enclosing budget (window budget) owns this, not a line
    except Exception:
        # Fall back to per-request dispatch so errors are reported per line.
        for index in pending:
            results[index] = session.execute(requests[index], cache_key=keys.get(index))
        return
    for index, verdict in zip(pending, verdicts):
        request = requests[index]
        result = QueryResult(kind="fd_implies", ok=True, id=request.id, value={"implied": verdict})
        session.cache_store(request, result, key=keys.get(index))
        results[index] = result


def naive_dispatch(
    requests: Sequence[QueryRequest],
    dependencies: Sequence[PartitionDependencyLike] = (),
) -> list[QueryResult]:
    """The unamortized baseline: a fresh session (and hence fresh engines) per request.

    This is what "import the library and wire up an engine for each query"
    costs; it produces byte-identical results to :func:`execute_plan` because
    every decision procedure is deterministic in its inputs.  EXP-SVC's
    batched-vs-naive comparison measures this function against the planner.
    """
    base: list[PartitionDependency] = list(dependencies)  # type: ignore[arg-type]
    out: list[QueryResult] = []
    for request in requests:
        fresh = Session(base, result_cache_size=0)
        out.append(fresh.execute(request, use_cache=False))
    return out
