"""Versioned, deterministic JSON codecs for the query service (the wire layer).

Every object the service accepts or produces — expressions, PDs/FPDs/FDs,
partitions and universes, relations/databases/schemas, query requests and
query results — has an ``encode_*``/``decode_*`` pair here.  The codecs obey
two contracts that the rest of the service (and its tests) lean on:

* **Determinism** — encoding is a pure function of the object's *semantics*:
  attribute sets and relation rows are emitted sorted, partitions are emitted
  in canonical first-occurrence label form, JSON is serialized with sorted
  keys and no whitespace (:func:`canonical_dumps`).  Two equal objects encode
  to identical bytes, so encoded results can be compared with ``==`` across
  processes (the shard executor's ordering test and the CLI's byte-identical
  end-to-end check both do exactly that).
* **Round-tripping through the interned substrate** — decoding re-interns on
  the way in: expressions go through the parser (so ``decode(encode(e)) is
  e`` inside one process, by PR 2's hash-consing), partitions are rebuilt on
  a fresh :class:`~repro.partitions.kernel.Universe` in canonical label form,
  and ``encode → decode → encode`` is byte-identical for every wire type
  (``tests/test_wire.py`` checks this on randomized inputs).

The envelope carries ``{"v": WIRE_VERSION}``; :func:`decode_request` and
:func:`decode_result` require the version *explicitly* and reject everything
outside :data:`SUPPORTED_WIRE_VERSIONS` — a payload without ``"v"`` is
refused, never silently assumed current, so incompatible format changes must
bump :data:`WIRE_VERSION` and old envelopes cannot be mis-versioned by
omission.  Version 2 added the optional ``deadline_ms`` request field (a
per-query wall-clock budget); version-1 payloads still decode, but a v1
envelope carrying ``deadline_ms`` is rejected — an old peer echoing unknown
fields must not silently gain semantics.  Version 3 added the optional
``tenant`` request field (the keyspace a request reasons and caches under);
v1/v2 payloads decode as the *default* tenant, and an older envelope
carrying ``tenant`` is rejected on the same principle.  Version 3 also
carries the optional ``trace`` request field — a caller-supplied trace id
for end-to-end observability; it is metadata only (excluded from cache keys
and absent from results), and an older envelope carrying ``trace`` is
rejected like the other post-v1 fields.  Malformed payloads
raise
:class:`~repro.errors.ServiceError` — never ``KeyError``/``TypeError`` — so
the CLI can turn them into structured error results.

Expressions travel as their minimal-parenthesis infix rendering
(:func:`repro.expressions.printer.to_infix`), which the parser inverts
exactly; PDs travel as ``"lhs = rhs"`` over the same rendering.  This keeps
request files human-writable: ``{"v": 1, "kind": "implies", "dependencies":
["A = A * B"], "query": "A = A * B"}`` is a valid line of a JSONL stream.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.dependencies.fpd import FunctionalPartitionDependency
from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.expressions.ast import PartitionExpression
from repro.expressions.parser import parse_expression
from repro.expressions.printer import to_infix
from repro.partitions.kernel import Universe
from repro.partitions.partition import Partition
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.schema import DatabaseScheme, RelationScheme
from repro.relational.tuples import Row

#: Wire format version; bump on any incompatible payload change.
WIRE_VERSION = 3

#: Versions this service still decodes (encoding always emits WIRE_VERSION).
SUPPORTED_WIRE_VERSIONS = (1, 2, 3)

#: The query kinds the service understands.
REQUEST_KINDS = (
    "implies",
    "equivalent",
    "fd_implies",
    "consistent",
    "quotient",
    "counterexample",
)

#: Consistency methods (Theorem 12 weak-instance test; Theorem 11 CAD search).
CONSISTENT_METHODS = ("weak_instance", "cad")

_SCALAR_TYPES = (str, int, float, bool, type(None))


def canonical_dumps(payload: Any) -> str:
    """Serialize a payload to its canonical JSON form (sorted keys, no spaces).

    This is the *only* serializer the service uses, so equal payloads always
    produce identical bytes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def canonical_loads(text: str) -> Any:
    """Inverse of :func:`canonical_dumps` (plain ``json.loads`` with error wrapping)."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"invalid JSON on the wire: {exc}") from None


def _require(payload: Any, key: str, context: str) -> Any:
    if not isinstance(payload, dict):
        raise ServiceError(f"{context} payload must be a JSON object, got {type(payload).__name__}")
    if key not in payload:
        raise ServiceError(f"{context} payload is missing the {key!r} field")
    return payload[key]


def _require_int(payload: dict, key: str, context: str, default=None, allow_none=False):
    value = payload.get(key, default)
    if value is None:
        if allow_none or key not in payload:
            return default
        raise ServiceError(f"{context} field {key!r} must be an integer, got null")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{context} field {key!r} must be an integer, got {value!r}")
    return value


def _check_version(payload: dict, context: str, expected=SUPPORTED_WIRE_VERSIONS) -> int:
    accepted = expected if isinstance(expected, tuple) else (expected,)
    if len(accepted) == 1:
        spoken = f"version {accepted[0]}"
    else:
        listed = [str(v) for v in accepted]
        spoken = "versions " + ", ".join(listed[:-1]) + f" and {listed[-1]}"
    if "v" not in payload:
        raise ServiceError(
            f"{context} payload is missing the 'v' version field; "
            f"this service speaks {spoken} and requires it explicitly"
        )
    version = payload["v"]
    if version not in accepted:
        raise ServiceError(f"{context} uses version {version!r}; this service speaks {spoken}")
    return version


# -- expressions and dependencies ------------------------------------------------


def encode_expression(expression: PartitionExpression) -> str:
    """An expression as its minimal-parenthesis infix string (parser-invertible)."""
    return to_infix(expression)


def decode_expression(text: Any) -> PartitionExpression:
    """Parse an expression string, re-interning through the hash-consed AST."""
    if not isinstance(text, str):
        raise ServiceError(f"expression payload must be a string, got {text!r}")
    try:
        return parse_expression(text)
    except Exception as exc:
        raise ServiceError(f"cannot decode expression {text!r}: {exc}") from None


def encode_pd(pd: PartitionDependency) -> str:
    """A PD as ``"lhs = rhs"`` over the infix rendering."""
    return f"{to_infix(pd.left)} = {to_infix(pd.right)}"


def decode_pd(text: Any) -> PartitionDependency:
    """Parse a PD string (``"e = e'"`` or the FPD shorthand ``"X <= Y"``)."""
    if not isinstance(text, str):
        raise ServiceError(f"PD payload must be a string, got {text!r}")
    try:
        return PartitionDependency.parse(text)
    except Exception as exc:
        raise ServiceError(f"cannot decode PD {text!r}: {exc}") from None


def encode_fd(fd: FunctionalDependency) -> dict:
    """An FD as sorted attribute lists (robust for multi-character names)."""
    return {"lhs": fd.lhs.sorted(), "rhs": fd.rhs.sorted()}


def decode_fd(payload: Any) -> FunctionalDependency:
    lhs = _require(payload, "lhs", "FD")
    rhs = _require(payload, "rhs", "FD")
    try:
        return FunctionalDependency(lhs, rhs)
    except Exception as exc:
        raise ServiceError(f"cannot decode FD {payload!r}: {exc}") from None


def encode_fpd(fpd: FunctionalPartitionDependency) -> dict:
    """An FPD in the same shape as an FD (it *is* one, semantically)."""
    return {"lhs": fpd.lhs.sorted(), "rhs": fpd.rhs.sorted()}


def decode_fpd(payload: Any) -> FunctionalPartitionDependency:
    lhs = _require(payload, "lhs", "FPD")
    rhs = _require(payload, "rhs", "FPD")
    try:
        return FunctionalPartitionDependency(lhs, rhs)
    except Exception as exc:
        raise ServiceError(f"cannot decode FPD {payload!r}: {exc}") from None


# -- partitions and universes ----------------------------------------------------


def _check_elements(elements: Iterable[Any], context: str) -> list:
    checked = []
    for element in elements:
        if not isinstance(element, _SCALAR_TYPES):
            raise ServiceError(
                f"{context} elements must be JSON scalars, got {type(element).__name__}: {element!r}"
            )
        checked.append(element)
    return checked


def encode_universe(universe: Universe) -> list:
    """A universe as its element list, in interning (id) order."""
    return _check_elements(universe.elements, "universe")


def decode_universe(payload: Any) -> Universe:
    if not isinstance(payload, list):
        raise ServiceError(f"universe payload must be a list, got {type(payload).__name__}")
    return Universe(_check_elements(payload, "universe"))


def encode_partition(partition: Partition) -> dict:
    """A partition as ``{"universe": [...], "labels": [...]}`` in canonical label form."""
    return {
        "universe": _check_elements(partition.universe.elements, "partition"),
        "labels": list(partition.labels),
    }


def decode_partition(payload: Any) -> Partition:
    elements = _require(payload, "universe", "partition")
    labels = _require(payload, "labels", "partition")
    if not isinstance(elements, list) or not isinstance(labels, list):
        raise ServiceError("partition payload needs list-valued 'universe' and 'labels'")
    if len(elements) != len(labels):
        raise ServiceError(
            f"partition payload has {len(elements)} elements but {len(labels)} labels"
        )
    try:
        return Partition.from_labels(Universe(elements), labels)
    except Exception as exc:
        raise ServiceError(f"cannot decode partition: {exc}") from None


# -- relational objects ----------------------------------------------------------


def encode_scheme(scheme: RelationScheme) -> dict:
    """A relation scheme as its name plus sorted attribute list."""
    return {"name": scheme.name, "attributes": scheme.attributes.sorted()}


def decode_scheme(payload: Any) -> RelationScheme:
    name = _require(payload, "name", "scheme")
    attributes = _require(payload, "attributes", "scheme")
    try:
        return RelationScheme(name, attributes)
    except Exception as exc:
        raise ServiceError(f"cannot decode relation scheme {payload!r}: {exc}") from None


def encode_database_scheme(scheme: DatabaseScheme) -> list:
    """A database scheme as its relation schemes sorted by name."""
    return [encode_scheme(s) for s in sorted(scheme, key=lambda s: s.name)]


def decode_database_scheme(payload: Any) -> DatabaseScheme:
    if not isinstance(payload, list):
        raise ServiceError("database scheme payload must be a list of relation schemes")
    return DatabaseScheme([decode_scheme(item) for item in payload])


def encode_relation(relation: Relation) -> dict:
    """A relation as sorted attribute columns and lexicographically sorted rows."""
    attributes = relation.attributes.sorted()
    rows = sorted([row[a] for a in attributes] for row in relation.rows)
    return {"name": relation.name, "attributes": attributes, "rows": rows}


def decode_relation(payload: Any) -> Relation:
    name = _require(payload, "name", "relation")
    attributes = _require(payload, "attributes", "relation")
    raw_rows = _require(payload, "rows", "relation")
    if not isinstance(attributes, list) or not isinstance(raw_rows, list):
        raise ServiceError("relation payload needs list-valued 'attributes' and 'rows'")
    try:
        scheme = RelationScheme(name, attributes)
        rows = []
        for cells in raw_rows:
            if not isinstance(cells, list) or len(cells) != len(attributes):
                raise ServiceError(
                    f"relation row {cells!r} does not match the {len(attributes)} attributes"
                )
            rows.append(Row(dict(zip(attributes, cells))))
        return Relation(scheme, rows)
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"cannot decode relation {name!r}: {exc}") from None


def encode_database(database: Database) -> dict:
    """A database as its relations sorted by name."""
    return {
        "relations": [
            encode_relation(r) for r in sorted(database.relations, key=lambda r: r.name)
        ]
    }


def decode_database(payload: Any) -> Database:
    relations = _require(payload, "relations", "database")
    if not isinstance(relations, list):
        raise ServiceError("database payload needs a list-valued 'relations' field")
    try:
        return Database([decode_relation(item) for item in relations])
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"cannot decode database: {exc}") from None


# -- the request/response surface ------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One query against the service — the uniform unit of work.

    ``dependencies`` is the PD set Γ the query reasons over; ``None`` means
    "use the session's own Γ" (the stateful mode).  ``tenant`` names the
    keyspace that Γ (and the request's cache slot) lives in; ``None`` is the
    default tenant, which is how every pre-v3 request decodes.  ``trace`` is
    an optional caller-supplied trace id: pure observability metadata that
    never influences the answer (it is excluded from cache keys and results);
    when absent, a tracing-enabled server mints one at decode.  The remaining
    fields are kind-specific; :func:`validate_request` states which are
    required.
    """

    kind: str
    id: Optional[str] = None
    tenant: Optional[str] = None
    dependencies: Optional[tuple[PartitionDependency, ...]] = None
    query: Optional[PartitionDependency] = None
    left: Optional[PartitionExpression] = None
    right: Optional[PartitionExpression] = None
    fds: Optional[tuple[FunctionalDependency, ...]] = None
    target: Optional[FunctionalDependency] = None
    database: Optional[Database] = None
    method: str = "weak_instance"
    pool: Optional[tuple[PartitionExpression, ...]] = None
    max_pool: int = 400
    max_nodes: Optional[int] = None
    deadline_ms: Optional[int] = None
    trace: Optional[str] = None

    def with_id(self, new_id: Optional[str]) -> "QueryRequest":
        """The same request under another id (results are id-independent)."""
        return replace(self, id=new_id)


@dataclass(frozen=True)
class QueryResult:
    """The service's answer to one :class:`QueryRequest`.

    ``value`` is a canonical-JSON-ready dict (kind-specific); on failure
    ``ok`` is ``False`` and ``error`` carries ``{"type", "message"}``.
    ``cached`` reports whether the session answered from its result cache —
    it is *transport metadata*, deliberately excluded from the wire encoding
    so cached and computed answers are byte-identical.
    """

    kind: str
    ok: bool
    id: Optional[str] = None
    value: Optional[dict] = None
    error: Optional[dict] = None
    cached: bool = field(default=False, compare=False)


def validate_request(request: QueryRequest) -> None:
    """Check the kind-specific field contract; raise :class:`ServiceError` if broken."""
    if request.kind not in REQUEST_KINDS:
        raise ServiceError(f"unknown request kind {request.kind!r}; expected one of {REQUEST_KINDS}")
    if request.kind in ("implies", "counterexample") and request.query is None:
        raise ServiceError(f"a {request.kind!r} request needs a 'query' PD")
    if request.kind == "equivalent" and (request.left is None or request.right is None):
        raise ServiceError("an 'equivalent' request needs 'left' and 'right' expressions")
    if request.kind == "fd_implies" and (request.fds is None or request.target is None):
        raise ServiceError("an 'fd_implies' request needs 'fds' and a 'target' FD")
    if request.kind == "consistent":
        if request.database is None:
            raise ServiceError("a 'consistent' request needs a 'database'")
        if request.method not in CONSISTENT_METHODS:
            raise ServiceError(
                f"unknown consistency method {request.method!r}; expected one of {CONSISTENT_METHODS}"
            )
    if request.kind == "quotient" and not request.pool:
        raise ServiceError("a 'quotient' request needs a non-empty 'pool' of expressions")
    if request.deadline_ms is not None:
        if isinstance(request.deadline_ms, bool) or not isinstance(request.deadline_ms, int):
            raise ServiceError(
                f"'deadline_ms' must be a positive integer, got {request.deadline_ms!r}"
            )
        if request.deadline_ms <= 0:
            raise ServiceError(
                f"'deadline_ms' must be a positive integer, got {request.deadline_ms}"
            )
    if request.tenant is not None:
        if not isinstance(request.tenant, str) or not request.tenant:
            raise ServiceError(
                f"'tenant' must be a non-empty string, got {request.tenant!r}"
            )
    if request.trace is not None:
        if not isinstance(request.trace, str) or not request.trace:
            raise ServiceError(
                f"'trace' must be a non-empty string, got {request.trace!r}"
            )


def encode_request(request: QueryRequest) -> dict:
    """A request as its canonical wire dict (only the fields its kind uses)."""
    validate_request(request)
    payload: dict[str, Any] = {"v": WIRE_VERSION, "kind": request.kind}
    if request.id is not None:
        payload["id"] = request.id
    if request.tenant is not None:
        payload["tenant"] = request.tenant
    if request.dependencies is not None:
        payload["dependencies"] = [encode_pd(pd) for pd in request.dependencies]
    if request.kind in ("implies", "counterexample"):
        payload["query"] = encode_pd(request.query)
    if request.kind == "counterexample":
        payload["max_pool"] = request.max_pool
    if request.kind == "equivalent":
        payload["left"] = encode_expression(request.left)
        payload["right"] = encode_expression(request.right)
    if request.kind == "fd_implies":
        payload["fds"] = [encode_fd(fd) for fd in request.fds]
        payload["target"] = encode_fd(request.target)
    if request.kind == "consistent":
        payload["database"] = encode_database(request.database)
        payload["method"] = request.method
        if request.max_nodes is not None:
            payload["max_nodes"] = request.max_nodes
    if request.kind == "quotient":
        payload["pool"] = [encode_expression(e) for e in request.pool]
    if request.deadline_ms is not None:
        payload["deadline_ms"] = request.deadline_ms
    if request.trace is not None:
        payload["trace"] = request.trace
    return payload


def decode_request(payload: Any) -> QueryRequest:
    """Rebuild a :class:`QueryRequest`, re-interning every expression on the way in."""
    kind = _require(payload, "kind", "request")
    version = _check_version(payload, "request")
    if "deadline_ms" in payload and version < 2:
        raise ServiceError(
            "'deadline_ms' needs wire version 2; a version-1 request cannot carry a deadline"
        )
    if "tenant" in payload and version < 3:
        raise ServiceError(
            f"'tenant' needs wire version 3; a version-{version} request cannot carry a tenant"
        )
    if "trace" in payload and version < 3:
        raise ServiceError(
            f"'trace' needs wire version 3; a version-{version} request cannot carry a trace id"
        )
    if kind not in REQUEST_KINDS:
        raise ServiceError(f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}")
    raw_deps = payload.get("dependencies")
    dependencies = None
    if raw_deps is not None:
        if not isinstance(raw_deps, list):
            raise ServiceError("'dependencies' must be a list of PD strings")
        dependencies = tuple(decode_pd(text) for text in raw_deps)
    kwargs: dict[str, Any] = {
        "kind": kind,
        "id": payload.get("id"),
        "tenant": payload.get("tenant"),
        "dependencies": dependencies,
    }
    if kind in ("implies", "counterexample"):
        kwargs["query"] = decode_pd(_require(payload, "query", kind))
    if kind == "counterexample":
        kwargs["max_pool"] = _require_int(payload, "max_pool", kind, default=400)
    if kind == "equivalent":
        kwargs["left"] = decode_expression(_require(payload, "left", kind))
        kwargs["right"] = decode_expression(_require(payload, "right", kind))
    if kind == "fd_implies":
        fds = _require(payload, "fds", kind)
        if not isinstance(fds, list):
            raise ServiceError("'fds' must be a list of FD payloads")
        kwargs["fds"] = tuple(decode_fd(item) for item in fds)
        kwargs["target"] = decode_fd(_require(payload, "target", kind))
    if kind == "consistent":
        kwargs["database"] = decode_database(_require(payload, "database", kind))
        kwargs["method"] = payload.get("method", "weak_instance")
        # max_nodes is an optional bound: explicit null means "unbounded".
        kwargs["max_nodes"] = _require_int(payload, "max_nodes", kind, allow_none=True)
    if kind == "quotient":
        pool = _require(payload, "pool", kind)
        if not isinstance(pool, list):
            raise ServiceError("'pool' must be a list of expression strings")
        kwargs["pool"] = tuple(decode_expression(text) for text in pool)
    # Explicit null means "no deadline", same as omission.
    kwargs["deadline_ms"] = _require_int(payload, "deadline_ms", "request", allow_none=True)
    kwargs["trace"] = payload.get("trace")
    request = QueryRequest(**kwargs)
    validate_request(request)
    return request


def encode_result(result: QueryResult) -> dict:
    """A result as its canonical wire dict (``cached`` transport flag excluded)."""
    payload: dict[str, Any] = {"v": WIRE_VERSION, "kind": result.kind, "ok": result.ok}
    if result.id is not None:
        payload["id"] = result.id
    if result.ok:
        payload["value"] = result.value
    else:
        payload["error"] = result.error
    return payload


def decode_result(payload: Any) -> QueryResult:
    kind = _require(payload, "kind", "result")
    ok = _require(payload, "ok", "result")
    _check_version(payload, "result")
    if not isinstance(ok, bool):
        raise ServiceError(f"result 'ok' must be a boolean, got {ok!r}")
    if ok:
        value = _require(payload, "value", "result")
        if not isinstance(value, dict):
            raise ServiceError("result 'value' must be a JSON object")
        return QueryResult(kind=kind, ok=True, id=payload.get("id"), value=value)
    error = _require(payload, "error", "result")
    if not isinstance(error, dict):
        raise ServiceError("result 'error' must be a JSON object")
    return QueryResult(kind=kind, ok=False, id=payload.get("id"), error=error)


def request_cache_key(request: QueryRequest) -> str:
    """The canonical bytes of a request *minus id, deadline and trace* — the cache key.

    Two requests asking the same question under different ids share one cache
    slot; the session re-stamps the stored result with the caller's id.  The
    deadline is excluded too: a budget changes *whether* an answer arrives in
    time, never what the answer is, and timeouts are error results, which are
    never cached.  ``trace`` is excluded for the same reason tracing must be
    invisible end to end: a trace id labels the observation, not the
    question, so traced and untraced repeats share one slot and tracing can
    never change an answer.  The ``tenant`` field *stays in*: the key is effectively
    ``(tenant, canonical request bytes)``, so one tenant's repeats can never
    be served from (or poison) another tenant's cache slot — tenant isolation
    is enforced at the key, in every cache tier that uses this function.
    """
    payload = encode_request(request)
    payload.pop("id", None)
    payload.pop("deadline_ms", None)
    payload.pop("trace", None)
    return canonical_dumps(payload)


def request_id_hint(payload: Any) -> Optional[str]:
    """The ``id`` of a request payload that *parsed* but failed to decode.

    Takes either the raw line text or an already-parsed payload.  Returns the
    id only when it is a string (the wire type of request ids); malformed or
    missing ids yield ``None`` so error results fall back to line numbers.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError:
            return None
    if isinstance(payload, dict):
        request_id = payload.get("id")
        if isinstance(request_id, str):
            return request_id
    return None


def error_result_for_line(text: Any, line_number: int, exc: Exception) -> QueryResult:
    """The structured error result for an undecodable request line.

    The result echoes the request's own ``id`` whenever the line parsed far
    enough to carry one — async clients correlate failures by id, and a
    line number alone is meaningless across concurrent connections.  Only
    unparseable lines fall back to the ``"lineN"`` position id.
    """
    return QueryResult(
        kind="invalid",
        ok=False,
        id=request_id_hint(text) or f"line{line_number}",
        error={"type": type(exc).__name__, "message": str(exc)},
    )


def dump_request_line(request: QueryRequest) -> str:
    """One JSONL line for a request (canonical form, no trailing newline)."""
    return canonical_dumps(encode_request(request))


def load_request_line(line: str) -> QueryRequest:
    """Parse one JSONL request line."""
    return decode_request(canonical_loads(line))


def dump_result_line(result: QueryResult) -> str:
    """One JSONL line for a result (canonical form, no trailing newline)."""
    return canonical_dumps(encode_result(result))


def load_result_line(line: str) -> QueryResult:
    """Parse one JSONL result line."""
    return decode_result(canonical_loads(line))


def requests_to_jsonl(requests: Sequence[QueryRequest]) -> str:
    """A whole request stream as JSONL text (one canonical line per request)."""
    return "".join(dump_request_line(r) + "\n" for r in requests)
