"""The supervised worker pool: crash-isolated, deadline-enforced shard execution.

``multiprocessing.Pool`` is the wrong substrate for a service: a worker
killed mid-task (OOM, segfault, a poison request) loses the whole ``map``
call, and there is no per-task wall-clock control at all.  This module
replaces it with an explicit supervision loop:

* each worker is a plain :class:`multiprocessing.Process` holding one warm
  :class:`~repro.service.session.Session`, spoken to over a duplex pipe
  with wire-format strings (the same transport discipline as the old pool);
* the parent multiplexes worker pipes *and* process sentinels through
  :func:`multiprocessing.connection.wait`, so a reply, a crash and a blown
  wall clock are all just events on one loop;
* work is dealt dynamically — largest unit first to whichever worker is
  idle — and every reply is validated (sequence number, index set, each
  line parses as a result object) before it is trusted;
* failures follow a bounded escalation ladder per :class:`WorkUnit`:
  **retry** the unit (a fresh worker may simply succeed), then **split** a
  multi-request unit to singletons (isolating the culprit), then
  **quarantine** the lone survivor with a typed ``WorkerCrashed`` error
  result.  Every other request in the stream still gets its byte-identical
  answer — the blast radius of a poison request is exactly one line;
* a unit whose requests carry ``deadline_ms`` budgets gets a **hard
  wall-clock limit** (max budget + grace) on top of the workers'
  cooperative :func:`~repro.deadline.check_deadline` hooks: a kernel that
  never reaches a check point is reclaimed by SIGKILL and the request is
  answered with a typed ``Timeout`` error result.

Restarted workers are re-warmed exactly like fresh ones — from the shipped
snapshot when the executor has one (the
:mod:`~repro.service.snapshot` zero-warmup path), else by replaying Γ — and
restart latency is accounted in :class:`SupervisorStats` (the EXP-FLT
benchmark pins it).  The deterministic chaos hooks live in
:mod:`repro.service.faults`; workers arm them via
:func:`~repro.service.faults.set_worker_context` so a seeded
:class:`~repro.service.faults.FaultPlan` can exercise every branch of this
file from pytest.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Optional

from repro.errors import ServiceError
from repro.service import telemetry
from repro.service.session import Session
from repro.service.wire import (
    QueryResult,
    dump_result_line,
    error_result_for_line,
    load_request_line,
)


@dataclass(frozen=True)
class WorkItem:
    """One request of a work unit: stream position, wire line, routing facts.

    ``trace`` is the request's trace id (when tracing is on): the supervisor
    parents escalation spans to ``<trace>.r`` so retries, splits and
    quarantines land on the affected request's own tree.
    """

    index: int
    line: str
    request_id: Optional[str]
    kind: str
    deadline_ms: Optional[int] = None
    trace: Optional[str] = None


@dataclass
class WorkUnit:
    """A batch-aligned dispatch quantum with its remaining delivery attempts.

    ``preferred`` is the consistent-hash shard the executor routed this unit
    to (``None`` = no affinity).  It is a *hint*: the scheduler keeps a
    pinned queue per worker so repeats land on the worker whose session
    cache is warm for them, but an idle worker steals from the longest
    pinned backlog rather than wait — affinity never costs wall clock.
    """

    items: tuple[WorkItem, ...]
    attempts_left: int = 2
    preferred: Optional[int] = None

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class SupervisorStats:
    """Counters the health endpoint and the EXP-FLT benchmark report."""

    crashes: int = 0
    restarts: int = 0
    retries: int = 0
    splits: int = 0
    quarantined: int = 0
    timeouts: int = 0
    corrupted: int = 0
    units_dispatched: int = 0
    restart_seconds: float = 0.0
    last_restart_seconds: Optional[float] = None
    restarts_by_worker: dict = field(default_factory=dict)
    # Aggregated worker-session result-cache traffic (the second cache tier):
    # each validated reply carries the unit's hit/miss delta.
    worker_cache_hits: int = 0
    worker_cache_misses: int = 0

    def as_dict(self) -> dict:
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "retries": self.retries,
            "splits": self.splits,
            "quarantined": self.quarantined,
            "timeouts": self.timeouts,
            "corrupted": self.corrupted,
            "units_dispatched": self.units_dispatched,
            "restart_seconds": round(self.restart_seconds, 6),
            # Warm-restart latency, surfaced where operators look for it
            # ({"control": "health"}): the mean and most recent re-warm.
            "restart_mean_ms": (
                round(self.restart_seconds / self.restarts * 1000.0, 3) if self.restarts else None
            ),
            "last_restart_ms": (
                round(self.last_restart_seconds * 1000.0, 3)
                if self.last_restart_seconds is not None
                else None
            ),
            # Worker slot → restart count, keyed by the slot's string index
            # (sorted, so the dict itself is deterministic).
            "restarts_by_worker": {
                str(index): self.restarts_by_worker[index]
                for index in sorted(self.restarts_by_worker)
            },
            "worker_cache_hits": self.worker_cache_hits,
            "worker_cache_misses": self.worker_cache_misses,
        }


def _worker_main(
    conn,
    worker_index: int,
    incarnation: int,
    encoded_dependencies: list[str],
    snapshot_text: Optional[str],
    fault_plan_json: Optional[str],
    worker_cache_size: Optional[int] = None,
    telemetry_enabled: bool = False,
) -> None:
    """One supervised worker: warm a session, then serve units until the sentinel.

    Each unit is answered request-by-request through the worker's planner —
    an undecodable line becomes an in-place error result (the rest of the
    unit still computes), mirroring the CLI's per-line isolation.
    """
    from repro.service import faults

    if telemetry_enabled:
        # Collect spans/cost in this process too; the reply carries them back
        # (the fork hook already cleared any buffers inherited from the parent).
        telemetry.configure(trace=True)
    faults.set_worker_context(worker_index, incarnation)
    if fault_plan_json is not None:
        faults.install_fault_plan(fault_plan_json)
    else:
        faults.install_from_env()
    # Per-worker result-cache capacity: the memory-bounded tier-2 islands
    # EXP-TEN sizes explicitly (None keeps the Session default).
    cache_kwargs = {} if worker_cache_size is None else {"result_cache_size": worker_cache_size}
    if snapshot_text is not None:
        from repro.service.snapshot import restore_session

        session = restore_session(snapshot_text, **cache_kwargs)
    else:
        from repro.dependencies.pd import parse_pd_set

        session = Session(parse_pd_set(encoded_dependencies), **cache_kwargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # the parent is gone; so are we
            break
        if message is None:
            break
        unit_seq, lines = message
        faults.on_unit_start()
        requests = []
        positions: list[int] = []
        encoded: dict[int, str] = {}
        for original_index, line in lines:
            try:
                requests.append(load_request_line(line))
                positions.append(original_index)
            except Exception as exc:  # isolate the bad line, answer the rest
                encoded[original_index] = dump_result_line(
                    error_result_for_line(line, original_index + 1, exc)
                )
        before = session.cache_info()
        results = session.execute_many(requests, batch=True)
        after = session.cache_info()
        for original_index, request, result in zip(positions, requests, results):
            encoded[original_index] = faults.corrupt_result_line(
                request.id, dump_result_line(result)
            )
        # The unit's session-cache delta rides back with the reply, so the
        # parent can account the warm per-worker tier without another RPC.
        info = {
            "cache_hits": after["hits"] - before["hits"],
            "cache_misses": after["misses"] - before["misses"],
        }
        # Spans and cost records produced while executing this unit ride the
        # same reply — that is how a trace crosses the process boundary.
        info.update(telemetry.drain_for_reply())
        conn.send((unit_seq, [(index, encoded[index]) for index, _ in lines], info))
    conn.close()


class _WorkerHandle:
    """Parent-side record of one worker: process, pipe, and in-flight unit."""

    __slots__ = (
        "index",
        "incarnation",
        "process",
        "conn",
        "unit",
        "unit_seq",
        "expires_at",
        "budget_ms",
        "dispatched_at",
    )

    def __init__(self, index: int, incarnation: int, process, conn) -> None:
        self.index = index
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        self.unit: Optional[WorkUnit] = None
        self.unit_seq = -1
        self.expires_at: Optional[float] = None
        self.budget_ms: Optional[float] = None
        self.dispatched_at: Optional[float] = None


class SupervisedPool:
    """A pool of supervised workers executing :class:`WorkUnit` streams.

    The pool is synchronous from the caller's side — :meth:`run_units` blocks
    until every unit has a result line for every item — while internally the
    supervision loop juggles replies, crashes, restarts and wall clocks.
    """

    def __init__(
        self,
        workers: int,
        encoded_dependencies: list[str],
        snapshot: Optional[str] = None,
        start_method: str = "fork",
        fault_plan_json: Optional[str] = None,
        unit_timeout_ms: Optional[float] = None,
        deadline_grace_ms: float = 2000.0,
        worker_cache_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"worker count must be positive, got {workers}")
        self._context = multiprocessing.get_context(start_method)
        self._encoded_dependencies = list(encoded_dependencies)
        self._snapshot = snapshot
        self._fault_plan_json = fault_plan_json
        self._worker_cache_size = worker_cache_size
        self._unit_timeout_ms = unit_timeout_ms
        self._deadline_grace_ms = deadline_grace_ms
        self.stats = SupervisorStats()
        self._workers = [self._spawn(index, 0) for index in range(workers)]

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, index: int, incarnation: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                index,
                incarnation,
                self._encoded_dependencies,
                self._snapshot,
                self._fault_plan_json,
                self._worker_cache_size,
                telemetry.enabled(),
            ),
            daemon=True,
            name=f"repro-shard-{index}.{incarnation}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, incarnation, process, parent_conn)

    def _respawn(self, worker: _WorkerHandle) -> None:
        """Replace a dead (or killed) worker in place, timing the re-warm."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        started = time.perf_counter()
        fresh = self._spawn(worker.index, worker.incarnation + 1)
        elapsed = time.perf_counter() - started
        self.stats.restarts += 1
        self.stats.restart_seconds += elapsed
        self.stats.last_restart_seconds = elapsed
        self.stats.restarts_by_worker[worker.index] = (
            self.stats.restarts_by_worker.get(worker.index, 0) + 1
        )
        self._workers[worker.index] = fresh

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: sentinel every worker, join, escalate only if stuck.

        Workers finish their in-flight unit (replies are simply dropped),
        see the ``None`` sentinel and exit 0; a worker that does not make the
        deadline is terminated, then killed.
        """
        if not self._workers:
            return
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass  # already dead; join below reaps it
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    @property
    def incarnations(self) -> list[int]:
        """Current incarnation per worker slot (restart provenance)."""
        return [worker.incarnation for worker in self._workers]

    # -- the supervision loop --------------------------------------------------

    def run_units(self, units: list[WorkUnit]) -> dict[int, str]:
        """Execute units to completion; returns stream index → result line.

        Units with a ``preferred`` shard queue on that worker (largest first)
        so consistently-hashed repeats land where the session cache is warm;
        unpinned units share one queue.  An idle worker drains its own pinned
        queue, then the shared queue, then steals from the longest pinned
        backlog — affinity is a hint, never a stall.  Failures re-enter the
        *shared* queue via the retry → split → quarantine ladder (the culprit
        already cost its preferred worker an incarnation), so the returned
        mapping always covers every item of every unit.
        """
        if not self._workers:
            raise ServiceError("the supervised pool is closed")
        results: dict[int, str] = {}
        queue: deque[WorkUnit] = deque()  # the shared (unpinned + retry) queue
        pinned: dict[int, deque[WorkUnit]] = {w.index: deque() for w in self._workers}
        for unit in sorted(units, key=lambda unit: len(unit.items), reverse=True):
            if unit.preferred is not None:
                pinned[unit.preferred % len(self._workers)].append(unit)
            else:
                queue.append(unit)

        def take_for(worker: _WorkerHandle) -> Optional[WorkUnit]:
            own = pinned[worker.index]
            if own:
                return own.popleft()
            if queue:
                return queue.popleft()
            longest = max(pinned.values(), key=len)
            if longest:
                return longest.popleft()
            return None

        next_seq = 0
        while (
            queue
            or any(pinned.values())
            or any(worker.unit is not None for worker in self._workers)
        ):
            for worker in self._workers:
                if worker.unit is None:
                    unit = take_for(worker)
                    if unit is not None:
                        self._dispatch(worker, unit, next_seq, results, queue)
                        next_seq += 1
            busy = [worker for worker in self._workers if worker.unit is not None]
            if not busy:
                continue
            now = time.monotonic()
            expiries = [w.expires_at for w in busy if w.expires_at is not None]
            timeout = max(0.0, min(expiries) - now) if expiries else None
            waitable = [w.conn for w in busy] + [w.process.sentinel for w in busy]
            ready = set(connection.wait(waitable, timeout=timeout))
            now = time.monotonic()
            for worker in busy:
                if worker.unit is None:
                    continue  # already handled earlier in this sweep
                if worker.conn in ready:
                    self._handle_reply(worker, results, queue)
                elif worker.process.sentinel in ready:
                    self._handle_crash(worker, results, queue)
                elif worker.expires_at is not None and now >= worker.expires_at:
                    self._handle_timeout(worker, results, queue)
        return results

    def _dispatch(
        self,
        worker: _WorkerHandle,
        unit: WorkUnit,
        seq: int,
        results: dict[int, str],
        queue: deque,
    ) -> None:
        budgets = [item.deadline_ms for item in unit.items if item.deadline_ms is not None]
        if budgets:
            budget_ms: Optional[float] = max(budgets) + self._deadline_grace_ms
        else:
            budget_ms = self._unit_timeout_ms
        worker.unit = unit
        worker.unit_seq = seq
        worker.budget_ms = budget_ms
        worker.expires_at = None if budget_ms is None else time.monotonic() + budget_ms / 1000.0
        worker.dispatched_at = time.perf_counter()
        payload = (seq, [(item.index, item.line) for item in unit.items])
        try:
            worker.conn.send(payload)
        except (OSError, BrokenPipeError, ValueError):
            # The worker died idle (e.g. between units); replace it and treat
            # the dispatch as a crash of this unit.
            self.stats.crashes += 1
            worker.unit = None
            self._respawn(worker)
            self._fail_unit(unit, "crash", results, queue)
            return
        self.stats.units_dispatched += 1

    def _handle_reply(self, worker: _WorkerHandle, results: dict[int, str], queue: deque) -> None:
        unit = worker.unit
        assert unit is not None
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._handle_crash(worker, results, queue)
            return
        validated = self._validate_reply(worker, message)
        if validated is None:
            # The reply channel lied (torn write, codec bug): the worker's
            # state is no longer trusted — replace it and escalate the unit.
            self.stats.corrupted += 1
            worker.unit = None
            self._respawn(worker)
            self._fail_unit(unit, "corrupt", results, queue)
            return
        lines, info = validated
        results.update(lines)
        # Adopt the worker's spans/cost first (it pops them out of info, so
        # the counter loop below sees only the ints it expects).
        telemetry.adopt_reply(info)
        telemetry.record_unit_dispatch(
            [item.trace for item in unit.items],
            worker=worker.index,
            items=len(unit.items),
            wall_ms=(
                (time.perf_counter() - worker.dispatched_at) * 1000.0
                if worker.dispatched_at is not None
                else 0.0
            ),
            attempt=unit.attempts_left,
        )
        self.stats.worker_cache_hits += info.get("cache_hits", 0)
        self.stats.worker_cache_misses += info.get("cache_misses", 0)
        worker.unit = None
        worker.expires_at = None

    def _handle_crash(self, worker: _WorkerHandle, results: dict[int, str], queue: deque) -> None:
        unit = worker.unit
        assert unit is not None
        self.stats.crashes += 1
        worker.unit = None
        self._respawn(worker)
        self._fail_unit(unit, "crash", results, queue)

    def _handle_timeout(self, worker: _WorkerHandle, results: dict[int, str], queue: deque) -> None:
        unit = worker.unit
        assert unit is not None
        budget_ms = worker.budget_ms
        self.stats.timeouts += 1
        worker.unit = None
        self._respawn(worker)
        self._fail_unit(unit, "timeout", results, queue, budget_ms=budget_ms)

    def _validate_reply(
        self, worker: _WorkerHandle, message
    ) -> Optional[tuple[dict[int, str], dict]]:
        """The reply's (index → line mapping, info dict), or ``None`` if untrusted."""
        unit = worker.unit
        assert unit is not None
        if not isinstance(message, tuple) or len(message) != 3:
            return None
        seq, payload, info = message
        if seq != worker.unit_seq or not isinstance(payload, list):
            return None
        if not isinstance(info, dict):
            return None
        for key, value in info.items():
            if key in ("spans", "cost"):
                # Telemetry payloads are lists of dicts; anything else means
                # the channel is torn.
                if not isinstance(value, list):
                    return None
            elif not isinstance(value, int):
                return None
        expected = {item.index for item in unit.items}
        out: dict[int, str] = {}
        for entry in payload:
            if not isinstance(entry, (tuple, list)) or len(entry) != 2:
                return None
            index, line = entry
            if index not in expected or index in out or not isinstance(line, str):
                return None
            try:
                parsed = json.loads(line)
            except (ValueError, TypeError):
                return None
            if not isinstance(parsed, dict) or "ok" not in parsed:
                return None
            out[index] = line
        if set(out) != expected:
            return None
        return out, info

    # -- the escalation ladder -------------------------------------------------

    def _fail_unit(
        self,
        unit: WorkUnit,
        reason: str,
        results: dict[int, str],
        queue: deque,
        budget_ms: Optional[float] = None,
    ) -> None:
        if reason == "timeout":
            if len(unit.items) == 1:
                # The culprit is isolated: answer it as a typed timeout (no
                # retry — the wall clock already ran once, in full).
                item = unit.items[0]
                telemetry.record_escalation(
                    item.trace, "timeout", reason, request_id=item.request_id
                )
                results[item.index] = self._timeout_line(item, budget_ms)
                return
            # Re-run each request alone so only the slow one pays.
            self.stats.splits += 1
            for item in unit.items:
                telemetry.record_escalation(
                    item.trace, "split", reason, request_id=item.request_id, unit_size=len(unit.items)
                )
            for item in reversed(unit.items):
                queue.appendleft(WorkUnit(items=(item,), attempts_left=unit.attempts_left))
            return
        unit.attempts_left -= 1
        if unit.attempts_left > 0:
            self.stats.retries += 1
            for item in unit.items:
                telemetry.record_escalation(
                    item.trace, "retry", reason, request_id=item.request_id, unit_size=len(unit.items)
                )
            queue.appendleft(unit)
            return
        if len(unit.items) > 1:
            # The unit killed a worker twice: isolate the culprit by retrying
            # every request as its own singleton (one attempt each).
            self.stats.splits += 1
            for item in unit.items:
                telemetry.record_escalation(
                    item.trace, "split", reason, request_id=item.request_id, unit_size=len(unit.items)
                )
            for item in reversed(unit.items):
                queue.appendleft(WorkUnit(items=(item,), attempts_left=1))
            return
        item = unit.items[0]
        self.stats.quarantined += 1
        telemetry.record_escalation(item.trace, "quarantine", reason, request_id=item.request_id)
        results[item.index] = dump_result_line(
            QueryResult(
                kind=item.kind,
                ok=False,
                id=item.request_id,
                error={
                    "type": "WorkerCrashed",
                    "message": (
                        f"request repeatedly crashed its shard worker ({reason}) "
                        "and was quarantined"
                    ),
                },
            )
        )

    def _timeout_line(self, item: WorkItem, budget_ms: Optional[float]) -> str:
        if item.deadline_ms is not None:
            message = (
                f"deadline of {item.deadline_ms} ms exceeded; the shard worker was "
                f"hard-killed after {budget_ms:g} ms wall clock"
            )
        else:
            message = (
                f"unit wall-clock limit of {budget_ms:g} ms exceeded; "
                "the shard worker was hard-killed"
            )
        return dump_result_line(
            QueryResult(
                kind=item.kind,
                ok=False,
                id=item.request_id,
                error={"type": "Timeout", "message": message},
            )
        )
