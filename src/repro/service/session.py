"""Stateful query sessions: one shared implication index behind every decision procedure.

A :class:`Session` is the in-process front door of the query service.  It
owns, for its base PD set Γ:

* one persistent :class:`~repro.implication.index.ImplicationIndex` (wrapped
  in an :class:`~repro.implication.alg.ImplicationEngine`), shared by every
  implication, equivalence and quotient query — each query only extends the
  incremental closure instead of recomputing it;
* the Theorem 12 **normalization cache**: the
  :class:`~repro.consistency.normalization.NormalizedDependencies` artifacts
  and the preprocessed :class:`~repro.relational.chase_engine.ChaseEngine`
  are built once per Γ generation and reused by every weak-instance
  consistency query;
* an **LRU result cache** keyed on the canonical wire bytes of each request
  (:func:`repro.service.wire.request_cache_key`).  The cache is invalidated
  *precisely* when Γ grows: :meth:`add_dependencies` bumps the generation
  and evicts exactly the entries that were answered against the session's Γ
  — results for requests that carried their *own* dependency set are
  unaffected, because growing the session's Γ cannot change them.

Requests carrying an explicit ``dependencies`` field are served from a
bounded LRU of per-Γ contexts (engine + normalization artifacts per foreign
dependency set), so a mixed stream over a handful of theories — the shape
:mod:`repro.workloads.random_service` generates — stays amortized without
the caller managing engines.  The batch planner
(:mod:`repro.service.planner`) reuses the same contexts, which is what makes
its results byte-identical to one-at-a-time :meth:`execute` calls.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import replace
from typing import Optional

from repro.consistency.cad import cad_consistency_for_fpds
from repro.consistency.normalization import NormalizedDependencies, normalize_dependencies
from repro.consistency.pd_consistency import pd_consistency
from repro.deadline import deadline_scope
from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.errors import DeadlineExceeded, ServiceError
from repro.expressions.printer import to_infix
from repro.implication.alg import ImplicationEngine
from repro.implication.fd_implication import fd_implies_via_pds
from repro.lattice.quotient import finite_counterexample, quotient_fragment
from repro.relational.chase_engine import ChaseEngine
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    encode_pd,
    request_cache_key,
    validate_request,
)


_FAULTS = None


def _faults():
    """The fault-injection module, imported lazily (hot path stays import-free)."""
    global _FAULTS
    if _FAULTS is None:
        from repro.service import faults

        _FAULTS = faults
    return _FAULTS


class DependencyContext:
    """Per-Γ artifacts, built lazily and shared by every query over that Γ.

    ``engine`` is the incremental ALG engine (the shared implication index);
    ``normalized``/``chase_engine`` are the Theorem 12 step-1 artifacts.
    Each is constructed on first use and cached until :meth:`extend` (which
    resumes the engine's closure delta-wise and drops only the chase-side
    artifacts, since those are not incremental).
    """

    __slots__ = ("_dependencies", "_engine", "_normalized", "_chase_engine")

    def __init__(self, dependencies: Sequence[PartitionDependency]) -> None:
        self._dependencies: tuple[PartitionDependency, ...] = tuple(dependencies)
        self._engine: Optional[ImplicationEngine] = None
        self._normalized: Optional[NormalizedDependencies] = None
        self._chase_engine: Optional[ChaseEngine] = None

    @property
    def dependencies(self) -> tuple[PartitionDependency, ...]:
        return self._dependencies

    @property
    def engine(self) -> ImplicationEngine:
        if self._engine is None:
            self._engine = ImplicationEngine(self._dependencies)
        return self._engine

    @property
    def normalized(self) -> NormalizedDependencies:
        if self._normalized is None:
            self._normalized = normalize_dependencies(list(self._dependencies))
        return self._normalized

    @property
    def chase_engine(self) -> ChaseEngine:
        if self._chase_engine is None:
            self._chase_engine = ChaseEngine(self.normalized.fds)
        return self._chase_engine

    def peek_normalized(self) -> Optional[NormalizedDependencies]:
        """The normalization artifacts if already built, without forcing them.

        The snapshot codec uses this so snapshotting never *computes*
        anything: a session that has not run a weak-instance query yet
        snapshots ``normalized: null`` and the restore stays lazy too.
        """
        return self._normalized

    def extend(self, dependencies: Sequence[PartitionDependency]) -> None:
        """Grow Γ in place; the ALG engine resumes, the chase artifacts rebuild."""
        self._dependencies = self._dependencies + tuple(dependencies)
        if self._engine is not None:
            self._engine.add_dependencies(dependencies)
        self._normalized = None
        self._chase_engine = None

    def warm_up(self) -> None:
        """Force the implication engine into existence (worker warm-up hook)."""
        self.engine  # noqa: B018 - property access builds the engine

    @classmethod
    def from_artifacts(
        cls,
        dependencies: Sequence[PartitionDependency],
        engine: ImplicationEngine,
        normalized: Optional[NormalizedDependencies] = None,
        chase_engine: Optional[ChaseEngine] = None,
    ) -> "DependencyContext":
        """A context over pre-built artifacts (the snapshot restore path).

        The lazy properties then simply *find* the artifacts instead of
        computing them; anything passed as ``None`` stays lazy exactly as in
        a freshly constructed context.
        """
        context = cls(dependencies)
        context._engine = engine
        context._normalized = normalized
        context._chase_engine = chase_engine
        return context


class Session:
    """The stateful ``QueryRequest → QueryResult`` surface over one growing Γ."""

    def __init__(
        self,
        dependencies: Iterable[PartitionDependencyLike] = (),
        result_cache_size: int = 1024,
        foreign_context_limit: int = 16,
    ) -> None:
        base = tuple(as_partition_dependency(pd) for pd in dependencies)
        self._base = DependencyContext(base)
        self._base.warm_up()
        self._generation = 0
        self._result_cache_size = max(0, result_cache_size)
        # key -> (uses_base_gamma, result-without-caller-id)
        self._results: "OrderedDict[str, tuple[bool, QueryResult]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._foreign_context_limit = max(1, foreign_context_limit)
        self._foreign: "OrderedDict[tuple[str, ...], DependencyContext]" = OrderedDict()

    # -- durable snapshots -----------------------------------------------------

    def export_snapshot(self) -> str:
        """This session's warm Γ state as one canonical snapshot document.

        See :mod:`repro.service.snapshot` for the format.  The export never
        computes anything new — it captures the implication index fixpoint,
        whatever normalization artifacts exist, and the result cache as they
        stand — so it is cheap enough to run on a live server's worker
        thread between micro-batch windows.
        """
        from repro.service.snapshot import dump_snapshot

        return dump_snapshot(self)

    @classmethod
    def restore(
        cls,
        snapshot,
        result_cache_size: int = 1024,
        foreign_context_limit: int = 16,
        expected_generation: Optional[int] = None,
        expected_dependencies=None,
    ) -> "Session":
        """A warm session rebuilt from :meth:`export_snapshot` output.

        Expressions and results re-enter through the wire codecs (and hence
        the hash-consed AST), so the restored session answers byte-identically
        to the warm one it was captured from.  ``expected_generation`` /
        ``expected_dependencies`` refuse stale or mismatched snapshots with a
        :class:`~repro.errors.ServiceError`.
        """
        from repro.service.snapshot import restore_session

        return restore_session(
            snapshot,
            result_cache_size=result_cache_size,
            foreign_context_limit=foreign_context_limit,
            expected_generation=expected_generation,
            expected_dependencies=expected_dependencies,
        )

    def _snapshot_state(self) -> dict:
        """The raw material the snapshot codec serializes (internal)."""
        return {
            "generation": self._generation,
            "context": self._base,
            "results": list(self._results.items()),
        }

    @classmethod
    def _from_restored(
        cls,
        base: DependencyContext,
        generation: int,
        results: Sequence[tuple[str, tuple[bool, QueryResult]]],
        result_cache_size: int,
        foreign_context_limit: int,
    ) -> "Session":
        """Assemble a session around restored artifacts (internal; codec-only).

        Hit/miss counters restart at zero — they are per-process diagnostics,
        not Γ state — and cache entries beyond the configured capacity are
        dropped from the cold (least recent) end.
        """
        session = cls.__new__(cls)
        session._base = base
        session._generation = generation
        session._result_cache_size = max(0, result_cache_size)
        entries = list(results)
        if len(entries) > session._result_cache_size:
            entries = entries[len(entries) - session._result_cache_size :]
        session._results = OrderedDict(entries)
        session._hits = 0
        session._misses = 0
        session._foreign_context_limit = max(1, foreign_context_limit)
        session._foreign = OrderedDict()
        return session

    # -- Γ management ----------------------------------------------------------

    @property
    def dependencies(self) -> list[PartitionDependency]:
        """The session's base PD set Γ."""
        return list(self._base.dependencies)

    @property
    def generation(self) -> int:
        """Bumped once per :meth:`add_dependencies` call (cache-invalidation marker)."""
        return self._generation

    def add_dependencies(self, dependencies: Iterable[PartitionDependencyLike]) -> None:
        """Grow Γ and invalidate exactly the cached results that depended on it."""
        added = [as_partition_dependency(pd) for pd in dependencies]
        if not added:
            return
        self._base.extend(added)
        self._generation += 1
        self._results = OrderedDict(
            (key, entry) for key, entry in self._results.items() if not entry[0]
        )

    def context_for(self, request: QueryRequest) -> DependencyContext:
        """The dependency context a request runs against (base Γ or its own)."""
        if request.dependencies is None:
            return self._base
        key = tuple(encode_pd(pd) for pd in request.dependencies)
        context = self._foreign.get(key)
        if context is None:
            context = DependencyContext(request.dependencies)
            self._foreign[key] = context
            while len(self._foreign) > self._foreign_context_limit:
                self._foreign.popitem(last=False)
        else:
            self._foreign.move_to_end(key)
        return context

    # -- the query surface -----------------------------------------------------

    def execute(
        self, request: QueryRequest, use_cache: bool = True, cache_key: Optional[str] = None
    ) -> QueryResult:
        """Answer one request (uniformly, whatever its kind).

        Failures of the decision procedures are captured as ``ok=False``
        results — a service must answer every line of its stream — but a
        *malformed request* (unknown kind, missing fields) raises
        :class:`~repro.errors.ServiceError` so programming errors stay loud.
        Error results are never cached.  ``cache_key`` lets the planner pass
        the canonical key it already computed for its own cache probe.
        """
        validate_request(request)
        key = None
        if use_cache and self._result_cache_size:
            key = cache_key if cache_key is not None else request_cache_key(request)
            cached = self.cache_lookup(request, key=key)
            if cached is not None:
                return cached
        result = self._evaluate(request)
        if key is not None:
            self.cache_store(request, result, key=key)
        return result

    def cache_lookup(self, request: QueryRequest, key: Optional[str] = None) -> Optional[QueryResult]:
        """The cached result for a request (re-stamped with its id), or ``None``.

        Exposed for the batch planner, which probes the cache up front so
        that only genuinely uncached requests enter the grouped dispatch.
        Callers holding the canonical key already (the planner, or
        :meth:`execute` itself) pass it to skip re-encoding the request —
        the encode is the expensive part for database-carrying requests.
        """
        if not self._result_cache_size:
            return None
        if key is None:
            key = request_cache_key(request)
        entry = self._results.get(key)
        if entry is not None:
            self._results.move_to_end(key)
            self._hits += 1
            return replace(entry[1], id=request.id, cached=True)
        self._misses += 1
        return None

    def cache_store(
        self, request: QueryRequest, result: QueryResult, key: Optional[str] = None
    ) -> None:
        """Insert a computed result (error results are never cached)."""
        if not self._result_cache_size or not result.ok:
            return
        if key is None:
            key = request_cache_key(request)
        # fd_implies reasons over its own Σ, never the session's Γ, so its
        # entries survive add_dependencies like explicit-Γ requests do.
        uses_base_gamma = request.dependencies is None and request.kind != "fd_implies"
        self._results[key] = (uses_base_gamma, replace(result, id=None))
        while len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)

    def execute_many(self, requests: Sequence[QueryRequest], batch: bool = True) -> list[QueryResult]:
        """Answer a request stream; with ``batch=True`` the planner groups it first."""
        if batch:
            from repro.service.planner import execute_plan

            return execute_plan(self, requests)
        return [self.execute(request) for request in requests]

    # -- the typed convenience surface -----------------------------------------
    #
    # Thin factories over the uniform execute(): each builds the canonical
    # QueryRequest (repro.service.api), runs it through the same caches and
    # dispatch as any wire request, and returns a typed answer — failures
    # raise QueryFailedError instead of coming back as ok=false results.

    def implies(self, query, rhs=None, *, dependencies=None, deadline_ms=None):
        """Does Γ imply the PD (``implies(pd)`` or ``implies(lhs, rhs)``)?"""
        from repro.service import api

        request = api.implies_request(
            query, rhs, dependencies=dependencies, deadline_ms=deadline_ms
        )
        return api.answer_for(self.execute(request))

    def equivalent(self, left, right, *, dependencies=None, deadline_ms=None):
        """Are two expressions Γ-equivalent?"""
        from repro.service import api

        request = api.equivalent_request(
            left, right, dependencies=dependencies, deadline_ms=deadline_ms
        )
        return api.answer_for(self.execute(request))

    def consistent(
        self,
        database,
        *,
        method="weak_instance",
        dependencies=None,
        max_nodes=None,
        deadline_ms=None,
    ):
        """Is a database consistent with Γ (Theorem 12 weak-instance or Theorem 11 CAD)?"""
        from repro.service import api

        request = api.consistent_request(
            database,
            method=method,
            dependencies=dependencies,
            max_nodes=max_nodes,
            deadline_ms=deadline_ms,
        )
        return api.answer_for(self.execute(request))

    def quotient(self, expressions, *, dependencies=None, deadline_ms=None):
        """The Γ-congruence classes and order of an expression pool."""
        from repro.service import api

        request = api.quotient_request(
            expressions, dependencies=dependencies, deadline_ms=deadline_ms
        )
        return api.answer_for(self.execute(request))

    def counterexample(self, query, *, max_pool=400, dependencies=None, deadline_ms=None):
        """A finite lattice refuting Γ ⊨ query, or the verdict that none exists."""
        from repro.service import api

        request = api.counterexample_request(
            query, max_pool=max_pool, dependencies=dependencies, deadline_ms=deadline_ms
        )
        return api.answer_for(self.execute(request))

    @property
    def cache_enabled(self) -> bool:
        """Whether this session keeps a result cache at all."""
        return self._result_cache_size > 0

    def cache_info(self) -> dict:
        """Result-cache and context diagnostics (hits/misses/size/generation)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._results),
            "maxsize": self._result_cache_size,
            "generation": self._generation,
            "foreign_contexts": len(self._foreign),
        }

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, request: QueryRequest) -> QueryResult:
        scope = None
        try:
            with deadline_scope(request.deadline_ms) as scope:
                _faults().on_request(request.id)
                value = self._value_for(request)
        except ServiceError:
            raise
        except DeadlineExceeded as exc:
            if scope is None or exc.scope is not scope:
                # An enclosing budget (e.g. the micro-batcher's window budget)
                # expired, not this request's — let its owner handle it.
                raise
            return QueryResult(
                kind=request.kind,
                ok=False,
                id=request.id,
                error={"type": "Timeout", "message": str(exc)},
            )
        except Exception as exc:  # a service answers every request
            return QueryResult(
                kind=request.kind,
                ok=False,
                id=request.id,
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        return QueryResult(kind=request.kind, ok=True, id=request.id, value=value)

    def _value_for(self, request: QueryRequest) -> dict:
        kind = request.kind
        if kind == "implies":
            engine = self.context_for(request).engine
            return {"implied": engine.implies(request.query)}
        if kind == "equivalent":
            engine = self.context_for(request).engine
            equal = engine.implies(PartitionDependency(request.left, request.right))
            return {"equivalent": equal}
        if kind == "fd_implies":
            return {"implied": fd_implies_via_pds(request.fds, request.target)}
        if kind == "consistent":
            return self._consistency_value(request)
        if kind == "quotient":
            context = self.context_for(request)
            fragment = quotient_fragment(
                context.dependencies, request.pool, engine=context.engine
            )
            return {
                "classes": [to_infix(r) for r in fragment.representatives],
                "order": sorted([i, j] for (i, j) in fragment.order),
            }
        if kind == "counterexample":
            context = self.context_for(request)
            lattice = finite_counterexample(
                context.dependencies, request.query, max_pool=request.max_pool
            )
            if lattice is None:
                return {"implied": True, "size": None, "constants": []}
            return {
                "implied": False,
                "size": len(lattice),
                "constants": sorted(lattice.constants),
            }
        raise ServiceError(f"unknown request kind {kind!r}")  # unreachable after validate

    def _consistency_value(self, request: QueryRequest) -> dict:
        context = self.context_for(request)
        if request.method == "weak_instance":
            outcome = pd_consistency(
                request.database,
                list(context.dependencies),
                engine=context.chase_engine,
                normalized=context.normalized,
            )
            witness_rows = len(outcome.weak_instance) if outcome.consistent else None
            return {
                "consistent": outcome.consistent,
                "method": "weak_instance",
                "witness_rows": witness_rows,
            }
        outcome = cad_consistency_for_fpds(
            request.database, list(context.dependencies), max_nodes=request.max_nodes
        )
        return {
            "consistent": outcome.consistent,
            "method": "cad",
            "search_nodes": outcome.search_nodes,
        }
