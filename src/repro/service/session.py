"""Stateful query sessions: a tenant keyspace of implication indexes and caches.

A :class:`Session` is the in-process front door of the query service.  Since
wire v3 it is **multi-tenant**: requests carry an optional ``tenant`` field,
and the session keeps one :class:`TenantState` per tenant — the tenant's own
PD set Γ, generation counter, and lazily built per-Γ artifacts
(:class:`DependencyContext`).  Requests without a tenant run under the
*default* tenant, which is exactly the pre-v3 behaviour.  Per tenant the
session owns:

* one persistent :class:`~repro.implication.index.ImplicationIndex` (wrapped
  in an :class:`~repro.implication.alg.ImplicationEngine`), shared by every
  implication, equivalence and quotient query of that tenant — each query
  only extends the incremental closure instead of recomputing it;
* the Theorem 12 **normalization cache**: the
  :class:`~repro.consistency.normalization.NormalizedDependencies` artifacts
  and the preprocessed :class:`~repro.relational.chase_engine.ChaseEngine`
  are built once per Γ generation and reused by every weak-instance
  consistency query;
* a slice of the session-wide **LRU result cache** keyed on the canonical
  wire bytes of each request (:func:`repro.service.wire.request_cache_key`,
  which embeds the tenant — tenants can never share or poison each other's
  slots).  Invalidation is *scoped to the growing tenant*:
  :meth:`add_dependencies` bumps that tenant's generation and evicts exactly
  the entries that were answered against that tenant's Γ — every other
  tenant's entries, and results for requests that carried their *own*
  dependency set, are unaffected.

Hash-consed expression ASTs remain **shared globally across tenants** (the
intern table is process-wide), so a million tenants asking about the same
subexpressions pay for them once.  Requests carrying an explicit
``dependencies`` field are served from a bounded LRU of per-Γ contexts
(engine + normalization artifacts per foreign dependency set) that is
likewise shared across tenants — the context is a pure function of the
dependency set; only the *result cache slot* is tenant-scoped.  The context
LRU keeps hit/miss/eviction counters (:meth:`Session.cache_info`) and
supports churn-free probes (``context_for(request, create=False)``), which
is how the batch planner reuses contexts without evicting live ones.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import replace
from typing import Optional

from repro import profiling
from repro.consistency.cad import cad_consistency_for_fpds
from repro.consistency.normalization import NormalizedDependencies, normalize_dependencies
from repro.consistency.pd_consistency import pd_consistency
from repro.deadline import deadline_scope
from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.errors import DeadlineExceeded, ServiceError
from repro.expressions.printer import to_infix
from repro.implication.alg import ImplicationEngine
from repro.implication.fd_implication import fd_implies_via_pds
from repro.lattice.quotient import finite_counterexample, quotient_fragment
from repro.relational.chase_engine import ChaseEngine
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    encode_pd,
    request_cache_key,
    validate_request,
)


_FAULTS = None


def _faults():
    """The fault-injection module, imported lazily (hot path stays import-free)."""
    global _FAULTS
    if _FAULTS is None:
        from repro.service import faults

        _FAULTS = faults
    return _FAULTS


_TELEMETRY = None


def _telemetry():
    """The telemetry module, imported lazily (same discipline as :func:`_faults`)."""
    global _TELEMETRY
    if _TELEMETRY is None:
        from repro.service import telemetry

        _TELEMETRY = telemetry
    return _TELEMETRY


class DependencyContext:
    """Per-Γ artifacts, built lazily and shared by every query over that Γ.

    ``engine`` is the incremental ALG engine (the shared implication index);
    ``normalized``/``chase_engine`` are the Theorem 12 step-1 artifacts.
    Each is constructed on first use and cached until :meth:`extend` (which
    resumes the engine's closure delta-wise and drops only the chase-side
    artifacts, since those are not incremental).
    """

    __slots__ = ("_dependencies", "_engine", "_normalized", "_chase_engine")

    def __init__(self, dependencies: Sequence[PartitionDependency]) -> None:
        self._dependencies: tuple[PartitionDependency, ...] = tuple(dependencies)
        self._engine: Optional[ImplicationEngine] = None
        self._normalized: Optional[NormalizedDependencies] = None
        self._chase_engine: Optional[ChaseEngine] = None

    @property
    def dependencies(self) -> tuple[PartitionDependency, ...]:
        return self._dependencies

    @property
    def engine(self) -> ImplicationEngine:
        if self._engine is None:
            self._engine = ImplicationEngine(self._dependencies)
        return self._engine

    @property
    def normalized(self) -> NormalizedDependencies:
        if self._normalized is None:
            self._normalized = normalize_dependencies(list(self._dependencies))
        return self._normalized

    @property
    def chase_engine(self) -> ChaseEngine:
        if self._chase_engine is None:
            self._chase_engine = ChaseEngine(self.normalized.fds)
        return self._chase_engine

    def peek_engine(self) -> Optional[ImplicationEngine]:
        """The implication engine if already built, without forcing it.

        The snapshot codec exports non-default tenants lazily: a tenant that
        never ran an implication query snapshots ``index: null`` and stays
        lazy through the restore.
        """
        return self._engine

    def peek_normalized(self) -> Optional[NormalizedDependencies]:
        """The normalization artifacts if already built, without forcing them.

        The snapshot codec uses this so snapshotting never *computes*
        anything: a session that has not run a weak-instance query yet
        snapshots ``normalized: null`` and the restore stays lazy too.
        """
        return self._normalized

    def extend(self, dependencies: Sequence[PartitionDependency]) -> None:
        """Grow Γ in place; the ALG engine resumes, the chase artifacts rebuild."""
        self._dependencies = self._dependencies + tuple(dependencies)
        if self._engine is not None:
            self._engine.add_dependencies(dependencies)
        self._normalized = None
        self._chase_engine = None

    def warm_up(self) -> None:
        """Force the implication engine into existence (worker warm-up hook)."""
        self.engine  # noqa: B018 - property access builds the engine

    @classmethod
    def from_artifacts(
        cls,
        dependencies: Sequence[PartitionDependency],
        engine: ImplicationEngine,
        normalized: Optional[NormalizedDependencies] = None,
        chase_engine: Optional[ChaseEngine] = None,
    ) -> "DependencyContext":
        """A context over pre-built artifacts (the snapshot restore path).

        The lazy properties then simply *find* the artifacts instead of
        computing them; anything passed as ``None`` stays lazy exactly as in
        a freshly constructed context.
        """
        context = cls(dependencies)
        context._engine = engine
        context._normalized = normalized
        context._chase_engine = chase_engine
        return context


class TenantState:
    """One tenant's keyspace entry: its Γ context and cache-invalidation marker."""

    __slots__ = ("context", "generation")

    def __init__(self, context: DependencyContext, generation: int = 0) -> None:
        self.context = context
        self.generation = generation


def tenant_label(tenant: Optional[str]) -> str:
    """The display name of a tenant key (``None`` is the default tenant)."""
    return "default" if tenant is None else tenant


class Session:
    """The stateful ``QueryRequest → QueryResult`` surface over a tenant keyspace."""

    def __init__(
        self,
        dependencies: Iterable[PartitionDependencyLike] = (),
        result_cache_size: int = 1024,
        foreign_context_limit: int = 16,
    ) -> None:
        base = tuple(as_partition_dependency(pd) for pd in dependencies)
        context = DependencyContext(base)
        context.warm_up()
        # tenant key (None = default) -> TenantState; the default tenant
        # always exists, others are created on first use.
        self._tenants: "OrderedDict[Optional[str], TenantState]" = OrderedDict()
        self._tenants[None] = TenantState(context)
        self._result_cache_size = max(0, result_cache_size)
        # key -> (uses_tenant_gamma, tenant, result-without-caller-id)
        self._results: "OrderedDict[str, tuple[bool, Optional[str], QueryResult]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._tenant_hits: dict[Optional[str], int] = {}
        self._tenant_misses: dict[Optional[str], int] = {}
        self._foreign_context_limit = max(1, foreign_context_limit)
        self._foreign: "OrderedDict[tuple[str, ...], DependencyContext]" = OrderedDict()
        self._context_hits = 0
        self._context_misses = 0
        self._context_evictions = 0

    # -- durable snapshots -----------------------------------------------------

    def export_snapshot(self) -> str:
        """This session's warm Γ state as one canonical snapshot document.

        See :mod:`repro.service.snapshot` for the format.  The export never
        computes anything new — it captures the implication index fixpoint,
        whatever normalization artifacts exist, and the result cache as they
        stand — so it is cheap enough to run on a live server's worker
        thread between micro-batch windows.
        """
        from repro.service.snapshot import dump_snapshot

        return dump_snapshot(self)

    @classmethod
    def restore(
        cls,
        snapshot,
        result_cache_size: int = 1024,
        foreign_context_limit: int = 16,
        expected_generation: Optional[int] = None,
        expected_dependencies=None,
    ) -> "Session":
        """A warm session rebuilt from :meth:`export_snapshot` output.

        Expressions and results re-enter through the wire codecs (and hence
        the hash-consed AST), so the restored session answers byte-identically
        to the warm one it was captured from.  ``expected_generation`` /
        ``expected_dependencies`` refuse stale or mismatched snapshots with a
        :class:`~repro.errors.ServiceError`.
        """
        from repro.service.snapshot import restore_session

        return restore_session(
            snapshot,
            result_cache_size=result_cache_size,
            foreign_context_limit=foreign_context_limit,
            expected_generation=expected_generation,
            expected_dependencies=expected_dependencies,
        )

    def _snapshot_state(self) -> dict:
        """The raw material the snapshot codec serializes (internal).

        ``generation``/``context`` describe the *default* tenant (which is
        what pre-tenancy snapshot consumers — the executor's warm-boot check,
        the CLI staleness guard — care about); ``tenants`` carries every
        named tenant's keyspace entry.
        """
        default = self._tenants[None]
        return {
            "generation": default.generation,
            "context": default.context,
            "tenants": [
                (name, state.context, state.generation)
                for name, state in self._tenants.items()
                if name is not None
            ],
            "results": list(self._results.items()),
        }

    @classmethod
    def _from_restored(
        cls,
        base: DependencyContext,
        generation: int,
        results: Sequence[tuple[str, tuple[bool, Optional[str], QueryResult]]],
        result_cache_size: int,
        foreign_context_limit: int,
        tenants: Sequence[tuple[str, DependencyContext, int]] = (),
    ) -> "Session":
        """Assemble a session around restored artifacts (internal; codec-only).

        Hit/miss counters restart at zero — they are per-process diagnostics,
        not Γ state — and cache entries beyond the configured capacity are
        dropped from the cold (least recent) end.
        """
        session = cls.__new__(cls)
        session._tenants = OrderedDict()
        session._tenants[None] = TenantState(base, generation)
        for name, context, tenant_generation in tenants:
            session._tenants[name] = TenantState(context, tenant_generation)
        session._result_cache_size = max(0, result_cache_size)
        entries = list(results)
        if len(entries) > session._result_cache_size:
            entries = entries[len(entries) - session._result_cache_size :]
        session._results = OrderedDict(entries)
        session._hits = 0
        session._misses = 0
        session._tenant_hits = {}
        session._tenant_misses = {}
        session._foreign_context_limit = max(1, foreign_context_limit)
        session._foreign = OrderedDict()
        session._context_hits = 0
        session._context_misses = 0
        session._context_evictions = 0
        return session

    # -- Γ management ----------------------------------------------------------

    def _tenant_state(self, tenant: Optional[str]) -> TenantState:
        """The tenant's keyspace entry, created on first use (empty Γ)."""
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState(DependencyContext(()))
            self._tenants[tenant] = state
        return state

    @property
    def dependencies(self) -> list[PartitionDependency]:
        """The default tenant's base PD set Γ."""
        return list(self._tenants[None].context.dependencies)

    @property
    def generation(self) -> int:
        """The default tenant's generation (bumped per :meth:`add_dependencies`)."""
        return self._tenants[None].generation

    def dependencies_for(self, tenant: Optional[str]) -> list[PartitionDependency]:
        """A tenant's base PD set Γ (empty for tenants never seen)."""
        state = self._tenants.get(tenant)
        return list(state.context.dependencies) if state is not None else []

    def generation_for(self, tenant: Optional[str]) -> int:
        """A tenant's cache-invalidation generation (0 for tenants never seen)."""
        state = self._tenants.get(tenant)
        return state.generation if state is not None else 0

    def tenant_names(self) -> list[Optional[str]]:
        """Every tenant key with a keyspace entry (``None`` = default, first)."""
        return list(self._tenants)

    def add_dependencies(
        self,
        dependencies: Iterable[PartitionDependencyLike],
        tenant: Optional[str] = None,
    ) -> None:
        """Grow one tenant's Γ and invalidate exactly that tenant's Γ-results.

        Entries answered against the *growing tenant's* base Γ are evicted;
        every other tenant's entries — and entries for requests that carried
        their own explicit dependency set — survive untouched.
        """
        added = [as_partition_dependency(pd) for pd in dependencies]
        if not added:
            return
        state = self._tenant_state(tenant)
        state.context.extend(added)
        state.generation += 1
        self._results = OrderedDict(
            (key, entry)
            for key, entry in self._results.items()
            if not (entry[0] and entry[1] == tenant)
        )

    def context_for(self, request: QueryRequest, create: bool = True) -> Optional[DependencyContext]:
        """The dependency context a request runs against (tenant Γ or its own).

        Requests without an explicit ``dependencies`` field run against their
        tenant's base Γ (the tenant keyspace entry is created on demand —
        tenant states are cheap and never evicted).  Requests *with* explicit
        dependencies share a bounded LRU of per-Γ contexts across tenants;
        ``create=False`` turns that path into a churn-free probe that returns
        the cached context or ``None`` without inserting or evicting — the
        batch planner uses this so a stream of one-off dependency sets cannot
        flush contexts that live requests still share.
        """
        if request.dependencies is None:
            return self._tenant_state(request.tenant).context
        key = tuple(encode_pd(pd) for pd in request.dependencies)
        context = self._foreign.get(key)
        if context is not None:
            self._foreign.move_to_end(key)
            self._context_hits += 1
            return context
        self._context_misses += 1
        if not create:
            return None
        context = DependencyContext(request.dependencies)
        self._foreign[key] = context
        while len(self._foreign) > self._foreign_context_limit:
            self._foreign.popitem(last=False)
            self._context_evictions += 1
        return context

    # -- the query surface -----------------------------------------------------

    def execute(
        self, request: QueryRequest, use_cache: bool = True, cache_key: Optional[str] = None
    ) -> QueryResult:
        """Answer one request (uniformly, whatever its kind).

        Failures of the decision procedures are captured as ``ok=False``
        results — a service must answer every line of its stream — but a
        *malformed request* (unknown kind, missing fields) raises
        :class:`~repro.errors.ServiceError` so programming errors stay loud.
        Error results are never cached.  ``cache_key`` lets the planner pass
        the canonical key it already computed for its own cache probe.
        """
        validate_request(request)
        key = None
        if use_cache and self._result_cache_size:
            key = cache_key if cache_key is not None else request_cache_key(request)
            cached = self.cache_lookup(request, key=key)
            if cached is not None:
                return cached
        result = self._evaluate(request)
        if key is not None:
            self.cache_store(request, result, key=key)
        return result

    def cache_lookup(self, request: QueryRequest, key: Optional[str] = None) -> Optional[QueryResult]:
        """The cached result for a request (re-stamped with its id), or ``None``.

        Exposed for the batch planner, which probes the cache up front so
        that only genuinely uncached requests enter the grouped dispatch.
        Callers holding the canonical key already (the planner, or
        :meth:`execute` itself) pass it to skip re-encoding the request —
        the encode is the expensive part for database-carrying requests.
        """
        if not self._result_cache_size:
            return None
        if key is None:
            key = request_cache_key(request)
        entry = self._results.get(key)
        if entry is not None:
            self._results.move_to_end(key)
            self._hits += 1
            self._tenant_hits[request.tenant] = self._tenant_hits.get(request.tenant, 0) + 1
            return replace(entry[2], id=request.id, cached=True)
        self._misses += 1
        self._tenant_misses[request.tenant] = self._tenant_misses.get(request.tenant, 0) + 1
        return None

    def cache_store(
        self, request: QueryRequest, result: QueryResult, key: Optional[str] = None
    ) -> None:
        """Insert a computed result (error results are never cached)."""
        if not self._result_cache_size or not result.ok:
            return
        if key is None:
            key = request_cache_key(request)
        # fd_implies reasons over its own Σ, never a tenant's Γ, so its
        # entries survive add_dependencies like explicit-Γ requests do.
        uses_gamma = request.dependencies is None and request.kind != "fd_implies"
        self._results[key] = (uses_gamma, request.tenant, replace(result, id=None))
        while len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)

    def execute_many(self, requests: Sequence[QueryRequest], batch: bool = True) -> list[QueryResult]:
        """Answer a request stream; with ``batch=True`` the planner groups it first."""
        if batch:
            from repro.service.planner import execute_plan

            return execute_plan(self, requests)
        return [self.execute(request) for request in requests]

    # -- the typed convenience surface -----------------------------------------
    #
    # Thin factories over the uniform execute(): each builds the canonical
    # QueryRequest (repro.service.api), runs it through the same caches and
    # dispatch as any wire request, and returns a typed answer — failures
    # raise QueryFailedError instead of coming back as ok=false results.

    def implies(self, query, rhs=None, *, dependencies=None, deadline_ms=None, tenant=None):
        """Does Γ imply the PD (``implies(pd)`` or ``implies(lhs, rhs)``)?"""
        from repro.service import api

        request = api.implies_request(
            query, rhs, dependencies=dependencies, deadline_ms=deadline_ms, tenant=tenant
        )
        return api.answer_for(self.execute(request))

    def equivalent(self, left, right, *, dependencies=None, deadline_ms=None, tenant=None):
        """Are two expressions Γ-equivalent?"""
        from repro.service import api

        request = api.equivalent_request(
            left, right, dependencies=dependencies, deadline_ms=deadline_ms, tenant=tenant
        )
        return api.answer_for(self.execute(request))

    def consistent(
        self,
        database,
        *,
        method="weak_instance",
        dependencies=None,
        max_nodes=None,
        deadline_ms=None,
        tenant=None,
    ):
        """Is a database consistent with Γ (Theorem 12 weak-instance or Theorem 11 CAD)?"""
        from repro.service import api

        request = api.consistent_request(
            database,
            method=method,
            dependencies=dependencies,
            max_nodes=max_nodes,
            deadline_ms=deadline_ms,
            tenant=tenant,
        )
        return api.answer_for(self.execute(request))

    def quotient(self, expressions, *, dependencies=None, deadline_ms=None, tenant=None):
        """The Γ-congruence classes and order of an expression pool."""
        from repro.service import api

        request = api.quotient_request(
            expressions, dependencies=dependencies, deadline_ms=deadline_ms, tenant=tenant
        )
        return api.answer_for(self.execute(request))

    def counterexample(
        self, query, *, max_pool=400, dependencies=None, deadline_ms=None, tenant=None
    ):
        """A finite lattice refuting Γ ⊨ query, or the verdict that none exists."""
        from repro.service import api

        request = api.counterexample_request(
            query,
            max_pool=max_pool,
            dependencies=dependencies,
            deadline_ms=deadline_ms,
            tenant=tenant,
        )
        return api.answer_for(self.execute(request))

    @property
    def cache_enabled(self) -> bool:
        """Whether this session keeps a result cache at all."""
        return self._result_cache_size > 0

    def cache_info(self) -> dict:
        """Result-cache, tenant, and context diagnostics.

        The flat ``hits``/``misses``/``size``/``maxsize``/``generation``/
        ``foreign_contexts`` keys keep their pre-tenancy meaning (generation
        is the default tenant's); ``tenants`` counts keyspace entries,
        ``per_tenant`` breaks result-cache traffic down by tenant, and
        ``contexts`` reports the foreign-context LRU's hit/miss/eviction
        counters.
        """
        per_tenant: dict[str, dict[str, int]] = {}
        # Sorted by label so the dict itself (not just its canonical-JSON
        # rendering) is deterministic — stats consumers can pin it.
        for tenant in sorted(set(self._tenant_hits) | set(self._tenant_misses), key=tenant_label):
            per_tenant[tenant_label(tenant)] = {
                "hits": self._tenant_hits.get(tenant, 0),
                "misses": self._tenant_misses.get(tenant, 0),
            }
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._results),
            "maxsize": self._result_cache_size,
            "generation": self._tenants[None].generation,
            "foreign_contexts": len(self._foreign),
            "tenants": len(self._tenants),
            "per_tenant": per_tenant,
            "contexts": {
                "hits": self._context_hits,
                "misses": self._context_misses,
                "evictions": self._context_evictions,
                "size": len(self._foreign),
                "maxsize": self._foreign_context_limit,
            },
        }

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self, request: QueryRequest) -> QueryResult:
        telemetry = _telemetry()
        if not telemetry.enabled():
            return self._evaluate_inner(request)
        span = telemetry.evaluate_span(request)
        with profiling.profile() as prof:
            try:
                result = self._evaluate_inner(request)
            except BaseException:
                # An enclosing budget (window) expired mid-evaluate; close the
                # span before handing the exception to its owner.
                telemetry.finish_evaluate(span, None, prof)
                raise
        telemetry.finish_evaluate(span, result, prof)
        return result

    def _evaluate_inner(self, request: QueryRequest) -> QueryResult:
        scope = None
        try:
            with deadline_scope(request.deadline_ms) as scope:
                _faults().on_request(request.id)
                value = self._value_for(request)
        except ServiceError:
            raise
        except DeadlineExceeded as exc:
            if scope is None or exc.scope is not scope:
                # An enclosing budget (e.g. the micro-batcher's window budget)
                # expired, not this request's — let its owner handle it.
                raise
            return QueryResult(
                kind=request.kind,
                ok=False,
                id=request.id,
                error={"type": "Timeout", "message": str(exc)},
            )
        except Exception as exc:  # a service answers every request
            return QueryResult(
                kind=request.kind,
                ok=False,
                id=request.id,
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        return QueryResult(kind=request.kind, ok=True, id=request.id, value=value)

    def _value_for(self, request: QueryRequest) -> dict:
        kind = request.kind
        if kind == "implies":
            engine = self.context_for(request).engine
            return {"implied": engine.implies(request.query)}
        if kind == "equivalent":
            engine = self.context_for(request).engine
            equal = engine.implies(PartitionDependency(request.left, request.right))
            return {"equivalent": equal}
        if kind == "fd_implies":
            return {"implied": fd_implies_via_pds(request.fds, request.target)}
        if kind == "consistent":
            return self._consistency_value(request)
        if kind == "quotient":
            context = self.context_for(request)
            fragment = quotient_fragment(
                context.dependencies, request.pool, engine=context.engine
            )
            return {
                "classes": [to_infix(r) for r in fragment.representatives],
                "order": sorted([i, j] for (i, j) in fragment.order),
            }
        if kind == "counterexample":
            context = self.context_for(request)
            lattice = finite_counterexample(
                context.dependencies, request.query, max_pool=request.max_pool
            )
            if lattice is None:
                return {"implied": True, "size": None, "constants": []}
            return {
                "implied": False,
                "size": len(lattice),
                "constants": sorted(lattice.constants),
            }
        raise ServiceError(f"unknown request kind {kind!r}")  # unreachable after validate

    def _consistency_value(self, request: QueryRequest) -> dict:
        context = self.context_for(request)
        if request.method == "weak_instance":
            outcome = pd_consistency(
                request.database,
                list(context.dependencies),
                engine=context.chase_engine,
                normalized=context.normalized,
            )
            witness_rows = len(outcome.weak_instance) if outcome.consistent else None
            return {
                "consistent": outcome.consistent,
                "method": "weak_instance",
                "witness_rows": witness_rows,
            }
        outcome = cad_consistency_for_fpds(
            request.database, list(context.dependencies), max_nodes=request.max_nodes
        )
        return {
            "consistent": outcome.consistent,
            "method": "cad",
            "search_nodes": outcome.search_nodes,
        }
