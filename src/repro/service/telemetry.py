"""End-to-end observability: trace spans, a metrics registry, and the cost log.

The service spans five layers (wire → micro-batch → planner → shard executor/
supervisor → kernels); this module is the one place their telemetry meets.
It deliberately changes *nothing* about answers: trace ids are excluded from
cache keys and results (see :func:`repro.service.wire.request_cache_key`), a
traced stream is byte-identical on its result lines to an untraced one, and
every hook no-ops behind a single ``enabled()`` check when telemetry is off.

Three coordinated pieces:

**Trace spans** (:class:`Tracer`, :class:`Span`).  A trace id is minted at
decode (or propagated from the request's optional wire-v3 ``trace`` field).
The *root span id is derived from the trace id* (``<trace>.r``), so any
layer that knows only ``request.trace`` — the session evaluating in a worker
process, the supervisor annotating an escalation — can parent spans to the
request's root without extra plumbing.  Completed spans buffer in a bounded
deque; worker processes drain theirs into the supervisor reply's ``info``
dict (``{"spans": [...], "cost": [...]}``) and the parent adopts them, so
one request's tree is whole even when its work crossed process boundaries.

**Metrics registry** (:class:`MetricsRegistry`).  Counters, gauges, and
bounded fixed-bucket histograms under flat dotted names.  ``absorb()``
flattens the service's pre-existing stats dicts (micro-batch, supervision,
cache tiers) into gauges, so ``{"control": "metrics"}`` and the
``--metrics-dir`` dump expose *one* deterministic canonical-JSON document
instead of today's per-layer patchwork.

**Cost log** (:class:`CostLog`).  Every executed work unit appends one
``(kind, method, |Γ|, request count, query size, kernel counters, wall
time)`` record — the calibration feed the ROADMAP's capacity-aware adaptive
planner will learn per-group cost models from.

Process-global state is intentional (one service process, one telemetry
sink); ``os.register_at_fork`` clears inherited buffers in forked workers so
parent spans are never double-reported, and :func:`reset` gives tests a
clean slate.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro import profiling
from repro.service.wire import QueryRequest, QueryResult, canonical_dumps

__all__ = [
    "Span",
    "Tracer",
    "MetricsRegistry",
    "CostLog",
    "configure",
    "enabled",
    "reset",
    "registry",
    "tracer",
    "cost_log",
    "new_trace_id",
    "root_span_id",
    "ensure_trace",
    "begin_request",
    "finish_request",
    "record_request_tree",
    "evaluate_span",
    "finish_evaluate",
    "work_unit",
    "record_escalation",
    "drain_for_reply",
    "adopt_reply",
    "metrics_export",
    "flush",
]

#: Default histogram bucket upper bounds, in milliseconds.
DEFAULT_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)

#: Bounded-buffer sizes: old entries are dropped, never blocked on.
SPAN_BUFFER_LIMIT = 65536
COST_LOG_LIMIT = 65536


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class Span:
    """One timed operation in a trace tree.

    Times are captured on ``time.perf_counter()`` and converted to wall-clock
    milliseconds at export through the tracer's anchor, so spans recorded in
    different processes on one machine land on a shared timeline.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "attrs", "events", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter() if start is None else start
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[dict] = []

    def annotate(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def event(self, name: str, at: Optional[float] = None, **attrs: Any) -> "Span":
        entry: Dict[str, Any] = {"name": name, "at": time.perf_counter() if at is None else at}
        if attrs:
            entry.update(attrs)
        self.events.append(entry)
        return self

    def end(self, at: Optional[float] = None) -> None:
        """Close the span and hand it to the tracer's buffer."""
        finish = time.perf_counter() if at is None else at
        self._tracer._record(self, finish)


class _NullSpan:
    """The disabled-path span: every method is a no-op returning ``self``."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None

    def annotate(self, key: str, value: Any) -> "_NullSpan":
        return self

    def event(self, name: str, at: Optional[float] = None, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, at: Optional[float] = None) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Mints span ids and buffers completed spans (bounded, oldest dropped)."""

    def __init__(self, limit: int = SPAN_BUFFER_LIMIT) -> None:
        self._spans: deque = deque(maxlen=limit)
        self._counter = itertools.count(1)
        self._prefix = f"{os.getpid():x}"
        # wall(perf_t) = anchor + perf_t: one wall-clock timeline per machine.
        self._anchor = time.time() - time.perf_counter()
        self.started = 0
        self.recorded = 0
        self.adopted = 0

    def new_id(self, tag: str = "s") -> str:
        """A process-unique id; the pid prefix keeps workers from colliding."""
        return f"{tag}{self._prefix}-{next(self._counter):x}"

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> Span:
        self.started += 1
        return Span(
            self,
            name,
            trace_id=trace_id if trace_id is not None else self.new_id("t"),
            span_id=span_id if span_id is not None else self.new_id("s"),
            parent_id=parent_id,
            start=start,
            attrs=attrs,
        )

    def _wall_ms(self, perf_time: float) -> float:
        return round((self._anchor + perf_time) * 1000.0, 3)

    def _record(self, span: Span, finish: float) -> None:
        payload: Dict[str, Any] = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start_ms": self._wall_ms(span.start),
            "duration_ms": round(max(0.0, finish - span.start) * 1000.0, 3),
        }
        if span.attrs:
            payload["attrs"] = span.attrs
        if span.events:
            payload["events"] = [
                {**{k: v for k, v in event.items() if k != "at"}, "at_ms": self._wall_ms(event["at"])}
                for event in span.events
            ]
        self._spans.append(payload)
        self.recorded += 1

    def adopt(self, payloads: Sequence[dict]) -> None:
        """Take already-exported span dicts from another process's tracer."""
        for payload in payloads:
            if isinstance(payload, dict):
                self._spans.append(payload)
                self.adopted += 1

    def drain(self) -> List[dict]:
        """Remove and return every buffered span payload."""
        drained: List[dict] = []
        while True:
            try:
                drained.append(self._spans.popleft())
            except IndexError:
                return drained

    def snapshot(self) -> Dict[str, int]:
        return {
            "started": self.started,
            "recorded": self.recorded,
            "adopted": self.adopted,
            "pending": len(self._spans),
        }


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class _Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow slot."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }


class MetricsRegistry:
    """Counters, gauges, and bounded histograms under flat dotted names.

    The export is a plain dict ready for :func:`canonical_dumps`: three
    top-level sections whose keys sort deterministically, so two registries
    fed the same observations export byte-identical documents.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    def inc(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BUCKETS_MS) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram(bounds)
        histogram.observe(value)

    def absorb(self, prefix: str, mapping: Any) -> None:
        """Flatten a nested stats dict into gauges under dotted names.

        Numbers become gauges (bools as 0/1); nested dicts recurse with a
        dotted prefix; strings, lists, and ``None`` values are skipped —
        they belong in the structured stats document, not in metrics.
        """
        if isinstance(mapping, dict):
            for key in sorted(mapping, key=str):
                self.absorb(f"{prefix}.{key}", mapping[key])
            return
        if isinstance(mapping, bool):
            self._gauges[prefix] = int(mapping)
        elif isinstance(mapping, (int, float)):
            self._gauges[prefix] = mapping

    def export(self) -> dict:
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {
                name: (round(value, 6) if isinstance(value, float) else value)
                for name, value in sorted(self._gauges.items())
            },
            "histograms": {name: self._histograms[name].as_dict() for name in sorted(self._histograms)},
        }


# ---------------------------------------------------------------------------
# Cost log
# ---------------------------------------------------------------------------


class CostLog:
    """Bounded buffer of per-work-unit cost records (the planner's feedstock)."""

    def __init__(self, limit: int = COST_LOG_LIMIT) -> None:
        self._records: deque = deque(maxlen=limit)
        self.recorded = 0

    def append(self, record: dict) -> None:
        self._records.append(record)
        self.recorded += 1

    def extend(self, records: Sequence[dict]) -> None:
        for record in records:
            if isinstance(record, dict):
                self.append(record)

    def drain(self) -> List[dict]:
        drained: List[dict] = []
        while True:
            try:
                drained.append(self._records.popleft())
            except IndexError:
                return drained

    def snapshot(self) -> Dict[str, int]:
        return {"recorded": self.recorded, "pending": len(self._records)}


# ---------------------------------------------------------------------------
# Process-global state
# ---------------------------------------------------------------------------


class _TelemetryState:
    def __init__(self) -> None:
        self.enabled = False
        self.metrics_dir: Optional[Path] = None
        self.interval_ms = 1000.0
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.cost_log = CostLog()


_STATE = _TelemetryState()
_FLUSH_LOCK = threading.Lock()


def configure(
    *,
    trace: bool = False,
    metrics_dir: Optional[str] = None,
    interval_ms: Optional[float] = None,
) -> None:
    """Turn telemetry on or off for this process.

    Tracing is enabled when either flag asks for it: an explicit ``trace``
    request, or a ``metrics_dir`` (a dump destination implies collection).
    Existing buffers are kept — reconfiguring mid-run must not lose spans.
    """
    _STATE.metrics_dir = Path(metrics_dir) if metrics_dir else None
    _STATE.enabled = bool(trace) or _STATE.metrics_dir is not None
    if interval_ms is not None:
        _STATE.interval_ms = float(interval_ms)


def enabled() -> bool:
    return _STATE.enabled


def reset() -> None:
    """Fresh disabled state — test isolation."""
    _STATE.enabled = False
    _STATE.metrics_dir = None
    _STATE.interval_ms = 1000.0
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = Tracer()
    _STATE.cost_log = CostLog()


def registry() -> MetricsRegistry:
    return _STATE.registry


def tracer() -> Tracer:
    return _STATE.tracer


def cost_log() -> CostLog:
    return _STATE.cost_log


def interval_ms() -> float:
    return _STATE.interval_ms


def metrics_dir() -> Optional[Path]:
    return _STATE.metrics_dir


def _after_fork() -> None:
    # A forked worker inherits the parent's buffers; drop them (they are the
    # parent's to report) and re-anchor ids on the child's pid.  The enabled
    # flag is inherited on purpose — a traced parent wants traced workers —
    # but the child never writes the parent's dump files.
    _STATE.metrics_dir = None
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = Tracer()
    _STATE.cost_log = CostLog()


os.register_at_fork(after_in_child=_after_fork)


# ---------------------------------------------------------------------------
# Request-level span helpers
# ---------------------------------------------------------------------------


def new_trace_id() -> str:
    return _STATE.tracer.new_id("t")


def root_span_id(trace_id: str) -> str:
    """The request root's span id, derivable from the trace id alone.

    This convention is what lets spans parent correctly across process
    boundaries: a worker that knows only ``request.trace`` can still attach
    its evaluate span to the right root.
    """
    return f"{trace_id}.r"


def ensure_trace(request: QueryRequest) -> QueryRequest:
    """The request with a trace id — the caller's if present, minted otherwise."""
    if request.trace is not None:
        return request
    return replace(request, trace=new_trace_id())


def begin_request(request: QueryRequest) -> tuple:
    """Mint/propagate the trace id at decode and open the root span."""
    request = ensure_trace(request)
    span = _STATE.tracer.start_span(
        "request",
        trace_id=request.trace,
        span_id=root_span_id(request.trace),
        attrs={"kind": request.kind, "id": request.id, "tenant": request.tenant},
    )
    _STATE.registry.inc("trace.requests_started")
    return request, span


def _annotate_outcome(span: Any, result: Optional[QueryResult]) -> None:
    if result is None:
        return
    span.annotate("ok", result.ok)
    if result.ok:
        return
    error_type = (result.error or {}).get("type")
    if error_type:
        span.annotate("error_type", error_type)
    if error_type == "Timeout":
        span.event("deadline_exceeded")
    elif error_type == "Overloaded":
        span.event("shed")
    elif error_type == "WorkerCrashed":
        span.event("worker_crashed")


def finish_request(span: Span, ticket: Any, result: Optional[QueryResult]) -> None:
    """Close a root span from a micro-batch ticket's lifecycle stamps.

    Emits the ``plan`` / ``execute`` / ``respond`` children retrospectively —
    the ticket's monotonic stamps already delimit them exactly, so the hot
    path never touches the tracer.
    """
    state = _STATE
    enqueued = getattr(ticket, "enqueued_at", None)
    window_closed = getattr(ticket, "window_closed_at", None)
    planned = getattr(ticket, "planned_at", None)
    executed = getattr(ticket, "executed_at", None)
    responded = getattr(ticket, "responded_at", None)
    if getattr(ticket, "shed", False):
        span.event("shed", at=responded)
    window_size = getattr(ticket, "window_size", None)
    if window_size is not None:
        span.annotate("window_size", window_size)
        span.annotate("window_closed_by", getattr(ticket, "window_reason", None))

    def child(name: str, start: Optional[float], finish: Optional[float]) -> None:
        if start is None or finish is None:
            return
        state.tracer.start_span(
            name,
            trace_id=span.trace_id,
            parent_id=span.span_id,
            start=start,
            attrs=None,
        ).end(at=finish)

    child("plan", enqueued, planned)
    child("execute", planned, executed)
    child("respond", executed, responded)
    if window_closed is not None:
        span.event("window_closed", at=window_closed)
    _annotate_outcome(span, result)
    state.registry.inc("trace.requests_finished")
    if enqueued is not None and responded is not None:
        state.registry.observe("request.latency_ms", (responded - enqueued) * 1000.0)
    span.end(at=responded)


def record_request_tree(
    request: QueryRequest,
    result: Optional[QueryResult],
    *,
    admitted_at: float,
    planned_at: float,
    executed_at: float,
    responded_at: float,
) -> None:
    """One-shot root + plan/execute/respond tree from coarse timestamps.

    The file CLI has no per-request tickets — the whole stream shares one
    decode / dispatch / write timeline — so its spans are cut from the shared
    stamps instead.
    """
    if not _STATE.enabled or request.trace is None:
        return
    state = _STATE
    root = state.tracer.start_span(
        "request",
        trace_id=request.trace,
        span_id=root_span_id(request.trace),
        start=admitted_at,
        attrs={"kind": request.kind, "id": request.id, "tenant": request.tenant},
    )
    state.registry.inc("trace.requests_started")
    for name, start, finish in (
        ("plan", admitted_at, planned_at),
        ("execute", planned_at, executed_at),
        ("respond", executed_at, responded_at),
    ):
        state.tracer.start_span(
            name, trace_id=root.trace_id, parent_id=root.span_id, start=start
        ).end(at=finish)
    _annotate_outcome(root, result)
    state.registry.inc("trace.requests_finished")
    state.registry.observe("request.latency_ms", (responded_at - admitted_at) * 1000.0)
    root.end(at=responded_at)


def evaluate_span(request: QueryRequest) -> Any:
    """A session-evaluate span parented to the request's root (or a no-op)."""
    if not _STATE.enabled or request.trace is None:
        return NULL_SPAN
    return _STATE.tracer.start_span(
        "evaluate",
        trace_id=request.trace,
        parent_id=root_span_id(request.trace),
        attrs={"kind": request.kind, "id": request.id},
    )


def finish_evaluate(span: Any, result: Optional[QueryResult], prof: Optional[profiling.KernelProfile]) -> None:
    if span is NULL_SPAN:
        return
    if prof is not None:
        span.annotate("kernel", prof.as_dict())
    _annotate_outcome(span, result)
    span.end()


# ---------------------------------------------------------------------------
# Work units and escalations
# ---------------------------------------------------------------------------


@contextmanager
def work_unit(
    kind: str,
    *,
    method: str = "",
    gamma: int = 0,
    requests: int = 1,
    query_size: int = 0,
) -> Iterator[Optional[profiling.KernelProfile]]:
    """Profile one planner dispatch quantum and append its cost record.

    The record lands even when the wrapped kernel call raises (the fallback
    path still did the work), so "one record per executed work unit" holds
    under faults too.
    """
    if not _STATE.enabled:
        yield None
        return
    state = _STATE
    start = time.perf_counter()
    with profiling.profile() as prof:
        try:
            yield prof
        finally:
            wall_ms = (time.perf_counter() - start) * 1000.0
            kernel = prof.as_dict()
            state.cost_log.append(
                {
                    "kind": kind,
                    "method": method,
                    "gamma": gamma,
                    "requests": requests,
                    "query_size": query_size,
                    "kernel": kernel,
                    "wall_ms": round(wall_ms, 3),
                }
            )
            state.registry.inc("costlog.records")
            state.registry.observe("work_unit.wall_ms", wall_ms)
            for name, value in kernel.items():
                if value:
                    state.registry.inc(f"kernel.{name}", value)


def request_query_size(request: QueryRequest) -> int:
    """A size proxy for the request's question (AST nodes / FD count / rows)."""
    if request.query is not None:
        return request.query.left.size() + request.query.right.size()
    if request.left is not None and request.right is not None:
        return request.left.size() + request.right.size()
    if request.fds is not None:
        return len(request.fds) + (1 if request.target is not None else 0)
    if request.database is not None:
        return sum(len(relation.rows) for relation in request.database.relations)
    if request.pool is not None:
        return sum(expression.size() for expression in request.pool)
    return 0


def record_escalation(trace: Optional[str], step: str, reason: str, **attrs: Any) -> None:
    """One annotated instantaneous span per escalation step on a request.

    ``step`` is the ladder rung (``retry`` / ``split`` / ``quarantine`` /
    ``timeout``); the span parents to the affected request's root when the
    request carried a trace id.
    """
    if not _STATE.enabled:
        return
    state = _STATE
    span = state.tracer.start_span(
        "escalation",
        trace_id=trace if trace is not None else state.tracer.new_id("t"),
        parent_id=root_span_id(trace) if trace is not None else None,
        attrs={"step": step, "reason": reason, **attrs},
    )
    if step == "timeout":
        span.event("deadline_exceeded")
    span.end()
    state.registry.inc(f"supervisor.escalations.{step}")


def record_unit_dispatch(
    traces: Sequence[Optional[str]],
    *,
    worker: int,
    items: int,
    wall_ms: float,
    attempt: int,
) -> None:
    """One span per supervised work-unit round trip, parented to its first
    traced request's root (the others are listed in the attrs)."""
    if not _STATE.enabled:
        return
    state = _STATE
    traced = [trace for trace in traces if trace]
    parent_trace = traced[0] if traced else None
    span = state.tracer.start_span(
        "work_unit_dispatch",
        trace_id=parent_trace if parent_trace is not None else state.tracer.new_id("t"),
        parent_id=root_span_id(parent_trace) if parent_trace is not None else None,
        start=time.perf_counter() - wall_ms / 1000.0,
        attrs={"worker": worker, "items": items, "attempt": attempt, "traces": traced},
    )
    span.end()
    state.registry.inc("supervisor.units_dispatched")
    state.registry.observe("unit_dispatch.wall_ms", wall_ms)


# ---------------------------------------------------------------------------
# Cross-process transport and export
# ---------------------------------------------------------------------------


def drain_for_reply() -> Dict[str, list]:
    """Worker side: pack buffered spans and cost records into a reply info dict."""
    if not _STATE.enabled:
        return {}
    payload: Dict[str, list] = {}
    spans = _STATE.tracer.drain()
    if spans:
        payload["spans"] = spans
    records = _STATE.cost_log.drain()
    if records:
        payload["cost"] = records
    return payload


def adopt_reply(info: dict) -> None:
    """Parent side: absorb a worker reply's spans/cost into this process.

    Pops the telemetry keys out of ``info`` so downstream consumers see only
    the numeric counters they already expect.
    """
    spans = info.pop("spans", None)
    cost = info.pop("cost", None)
    if not _STATE.enabled:
        return
    state = _STATE
    if spans:
        state.tracer.adopt(spans)
    if cost:
        state.cost_log.extend(cost)
        state.registry.inc("costlog.records", len(cost))
        for record in cost:
            kernel = record.get("kernel") if isinstance(record, dict) else None
            if isinstance(kernel, dict):
                for name, value in kernel.items():
                    if isinstance(value, int) and value:
                        state.registry.inc(f"kernel.{name}", value)
            wall = record.get("wall_ms") if isinstance(record, dict) else None
            if isinstance(wall, (int, float)):
                state.registry.observe("work_unit.wall_ms", float(wall))


def metrics_export() -> dict:
    """The one deterministic metrics document (ready for canonical JSON)."""
    document = _STATE.registry.export()
    document["trace"] = _STATE.tracer.snapshot()
    document["costlog"] = _STATE.cost_log.snapshot()
    return document


def flush(directory: Optional[str] = None) -> Optional[Dict[str, int]]:
    """Append buffered telemetry to the metrics directory's JSONL files.

    Writes ``trace.jsonl`` (one span per line), ``costlog.jsonl`` (one work
    unit per line), and ``metrics.jsonl`` (one registry snapshot per flush).
    Returns per-file appended counts, or ``None`` when no directory is
    configured.
    """
    target = Path(directory) if directory else _STATE.metrics_dir
    if target is None:
        return None
    with _FLUSH_LOCK:
        target.mkdir(parents=True, exist_ok=True)
        spans = _STATE.tracer.drain()
        records = _STATE.cost_log.drain()
        if spans:
            with (target / "trace.jsonl").open("a", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(canonical_dumps(span) + "\n")
        if records:
            with (target / "costlog.jsonl").open("a", encoding="utf-8") as handle:
                for record in records:
                    handle.write(canonical_dumps(record) + "\n")
        with (target / "metrics.jsonl").open("a", encoding="utf-8") as handle:
            handle.write(canonical_dumps(metrics_export()) + "\n")
    return {"spans": len(spans), "cost": len(records)}
