"""Durable Γ snapshots: the versioned codec behind zero-warmup restores.

Everything a warm :class:`~repro.service.session.Session` has learned about
its base Γ — the :class:`~repro.implication.index.ImplicationIndex` arc
relation and union-find congruence classes, the interned expression table
slice backing them, the Theorem 12 normalization output (and hence the
chase-engine preprocessing), and the LRU result cache — dies with the
process.  This module serializes those artifacts into one declarative,
versioned, digest-protected JSON document so a restarted server, a freshly
forked shard worker, or another machine can *restore* the warm state instead
of re-paying the Γ closure.

The codec follows the same discipline as :mod:`repro.service.wire`:

* **Canonical bytes** — the snapshot text is :func:`~repro.service.wire.canonical_dumps`
  of a payload whose every list is emitted in a deterministic order
  (expressions in vertex-id order, arcs sorted per class representative,
  cache entries in LRU order), so ``encode → decode → encode`` is
  byte-identical and snapshots of equal sessions compare with ``==``.
* **Explicit version** — the payload carries ``{"v": SNAPSHOT_VERSION}`` and
  decoding requires it (missing or mismatched versions raise
  :class:`~repro.errors.ServiceError`, never a silent default).
* **Content digest** — ``digest`` is the SHA-256 of the canonical payload
  minus the digest field itself; any corruption or truncation of the stored
  text is refused before a single artifact is rebuilt.
* **Re-interning restore** — expressions re-enter through the parser and the
  hash-consed AST, results through :func:`~repro.service.wire.decode_result`,
  so a restored session is *indistinguishable* from a recomputed one: the
  randomized cross-checks in ``tests/test_snapshot.py`` pin restored and
  warm sessions byte-identical on mixed query streams.

Snapshots are keyed by the session **generation counter**: restoring with
``expected_generation`` refuses a stale snapshot of an older Γ, and
``expected_dependencies`` refuses a snapshot whose Γ is not the one the
caller configured — the invalidation story the session's cache already uses.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Optional, Union

from repro.consistency.normalization import NormalizedDependencies, SumConstraint
from repro.errors import ServiceError
from repro.implication.alg import ImplicationEngine
from repro.implication.index import ImplicationIndex
from repro.relational.chase_engine import ChaseEngine
from repro.relational.functional_dependencies import FunctionalDependency
from repro.service.wire import (
    _check_version,
    _require,
    canonical_dumps,
    canonical_loads,
    decode_expression,
    decode_pd,
    decode_result,
    encode_expression,
    encode_fd,
    encode_pd,
    encode_result,
)

#: Snapshot format version; bump on any incompatible payload change.
#: Version 2 (multi-tenancy) adds the ``tenants`` list and widens result
#: entries to ``[key, uses_gamma, tenant, result]`` quadruples; the
#: top-level ``generation``/``dependencies``/``index``/``normalized`` fields
#: keep describing the *default* tenant, exactly as version 1 did.
SNAPSHOT_VERSION = 2

#: Versions :func:`decode_snapshot` accepts.  Version-1 documents restore as
#: a default-tenant-only keyspace (their result entries carry no tenant).
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2)

#: The ``kind`` tag of a snapshot document (guards against feeding the codec
#: some other canonical-JSON artifact).
SNAPSHOT_KIND = "session_snapshot"

#: File name used by ``--snapshot-dir`` (save-on-drain / restore-on-boot).
SNAPSHOT_FILENAME = "session.snapshot.json"


def _digest(payload: dict) -> str:
    """SHA-256 over the canonical payload without its ``digest`` field."""
    body = {key: value for key, value in payload.items() if key != "digest"}
    return hashlib.sha256(canonical_dumps(body).encode("utf-8")).hexdigest()


# -- encoding ---------------------------------------------------------------------


def _encode_index(index: ImplicationIndex) -> dict:
    """The implication index's fixpoint state as a canonical wire payload."""
    state = index.export_state()
    return {
        "expressions": [encode_expression(e) for e in state["expressions"]],
        "parent": state["parent"],
        "arcs": [[root, targets] for root, targets in sorted(state["arcs"].items())],
    }


def _encode_normalized(normalized: NormalizedDependencies) -> dict:
    """The Theorem 12 normalization artifacts (``original`` travels as the session Γ)."""
    return {
        "fds": [encode_fd(fd) for fd in normalized.fds],
        "sum_constraints": [[c.c, c.a, c.b] for c in normalized.sum_constraints],
        "fresh_attributes": list(normalized.fresh_attributes),
        "closure_pairs": [[a, b] for a, b in normalized.attribute_closure_pairs],
    }


def _encode_tenant(context, generation: int) -> dict:
    """One named tenant's keyspace entry; unforced artifacts stay ``null``.

    The export-never-computes rule holds per tenant: a tenant that has not
    run an implication query yet snapshots ``index: null`` (and restores
    lazy), unlike the default tenant whose engine always exists.
    """
    engine = context.peek_engine()
    index = engine.index if engine is not None else None
    normalized = context.peek_normalized()
    return {
        "generation": generation,
        "dependencies": [encode_pd(pd) for pd in context.dependencies],
        "index": None if index is None else _encode_index(index),
        "normalized": None if normalized is None else _encode_normalized(normalized),
    }


def encode_snapshot(session) -> dict:
    """A warm session's tenant keyspace as a canonical, digest-stamped payload dict."""
    state = session._snapshot_state()
    context = state["context"]
    engine = context.engine
    if engine.index is None:  # pragma: no cover - sessions never run naive engines
        raise ServiceError("cannot snapshot a session running on a naive engine")
    payload: dict[str, Any] = {
        "v": SNAPSHOT_VERSION,
        "kind": SNAPSHOT_KIND,
        "generation": state["generation"],
        "dependencies": [encode_pd(pd) for pd in context.dependencies],
        "index": _encode_index(engine.index),
        "normalized": (
            None if context.peek_normalized() is None else _encode_normalized(context.peek_normalized())
        ),
        "tenants": [
            [name, _encode_tenant(tenant_context, tenant_generation)]
            for name, tenant_context, tenant_generation in sorted(
                state["tenants"], key=lambda entry: entry[0]
            )
        ],
        "results": [
            [key, uses_gamma, tenant, encode_result(result)]
            for key, (uses_gamma, tenant, result) in state["results"]
        ],
    }
    payload["digest"] = _digest(payload)
    return payload


def dump_snapshot(session) -> str:
    """The canonical snapshot text of a warm session (one JSON document)."""
    return canonical_dumps(encode_snapshot(session))


# -- decoding / validation --------------------------------------------------------


def _require_list(payload: dict, key: str, context: str) -> list:
    value = _require(payload, key, context)
    if not isinstance(value, list):
        raise ServiceError(f"{context} field {key!r} must be a list, got {type(value).__name__}")
    return value


def decode_snapshot(text: Union[str, bytes]) -> dict:
    """Parse and *verify* a snapshot document: JSON, kind, version, digest, shape.

    Returns the validated payload dict.  Any corruption (bad JSON,
    truncation, digest mismatch), version skew or structural damage raises
    :class:`~repro.errors.ServiceError` with a reason — restoring from a
    payload this function accepted cannot crash on missing fields.
    """
    if isinstance(text, bytes):
        text = text.decode("utf-8", errors="replace")
    payload = canonical_loads(text)
    if not isinstance(payload, dict):
        raise ServiceError(f"snapshot payload must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != SNAPSHOT_KIND:
        raise ServiceError(f"snapshot payload has kind {kind!r}; expected {SNAPSHOT_KIND!r}")
    version = _check_version(payload, "snapshot", expected=SUPPORTED_SNAPSHOT_VERSIONS)
    stored = _require(payload, "digest", "snapshot")
    actual = _digest(payload)
    if stored != actual:
        raise ServiceError(
            "snapshot digest mismatch: the stored text is corrupted "
            f"(stored {str(stored)[:16]}…, computed {actual[:16]}…)"
        )
    generation = _require(payload, "generation", "snapshot")
    if isinstance(generation, bool) or not isinstance(generation, int) or generation < 0:
        raise ServiceError(f"snapshot generation must be a non-negative integer, got {generation!r}")
    _require_list(payload, "dependencies", "snapshot")
    index = _require(payload, "index", "snapshot")
    for field in ("expressions", "parent", "arcs"):
        _require_list(index, field, "snapshot index")
    for entry in index["arcs"]:
        if not isinstance(entry, list) or len(entry) != 2 or not isinstance(entry[1], list):
            raise ServiceError(f"snapshot index arc entry {entry!r} is not a [root, targets] pair")
    normalized = _require(payload, "normalized", "snapshot")
    if normalized is not None:
        for field in ("fds", "sum_constraints", "fresh_attributes", "closure_pairs"):
            _require_list(normalized, field, "snapshot normalization")
    if version >= 2:
        for entry in _require_list(payload, "tenants", "snapshot"):
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not entry[0]
                or not isinstance(entry[1], dict)
            ):
                raise ServiceError(
                    f"snapshot tenant entry must be a [name, state] pair, got {entry!r}"
                )
            tenant_state = entry[1]
            tenant_context = f"snapshot tenant {entry[0]!r}"
            tenant_generation = _require(tenant_state, "generation", tenant_context)
            if (
                isinstance(tenant_generation, bool)
                or not isinstance(tenant_generation, int)
                or tenant_generation < 0
            ):
                raise ServiceError(
                    f"{tenant_context} generation must be a non-negative integer, "
                    f"got {tenant_generation!r}"
                )
            _require_list(tenant_state, "dependencies", tenant_context)
            tenant_index = _require(tenant_state, "index", tenant_context)
            if tenant_index is not None:
                for field in ("expressions", "parent", "arcs"):
                    _require_list(tenant_index, field, tenant_context + " index")
            tenant_normalized = _require(tenant_state, "normalized", tenant_context)
            if tenant_normalized is not None:
                for field in ("fds", "sum_constraints", "fresh_attributes", "closure_pairs"):
                    _require_list(tenant_normalized, field, tenant_context + " normalization")
        entry_width, entry_shape = 4, "[key, uses_gamma, tenant, result] quadruple"
    else:
        entry_width, entry_shape = 3, "[key, uses_base_gamma, result] triple"
    for entry in _require_list(payload, "results", "snapshot"):
        if not isinstance(entry, list) or len(entry) != entry_width or not isinstance(entry[0], str):
            raise ServiceError(f"snapshot result entry must be a {entry_shape}, got {entry!r}")
        if entry_width == 4 and entry[2] is not None and (not isinstance(entry[2], str) or not entry[2]):
            raise ServiceError(
                f"snapshot result entry tenant must be null or a non-empty string, got {entry[2]!r}"
            )
    return payload


def snapshot_generation(snapshot: Union[str, bytes, dict]) -> int:
    """The Γ generation a snapshot captures (verifying the document if given as text)."""
    payload = snapshot if isinstance(snapshot, dict) else decode_snapshot(snapshot)
    return payload["generation"]


def snapshot_dependencies(snapshot: Union[str, bytes, dict]) -> tuple:
    """The base Γ a snapshot captures, re-interned (verifies text input)."""
    payload = snapshot if isinstance(snapshot, dict) else decode_snapshot(snapshot)
    return tuple(decode_pd(text) for text in payload["dependencies"])


def _decode_normalized(payload: dict, dependencies) -> NormalizedDependencies:
    constraints = []
    for entry in payload["sum_constraints"]:
        if not isinstance(entry, list) or len(entry) != 3:
            raise ServiceError(f"snapshot sum constraint {entry!r} is not a [c, a, b] triple")
        constraints.append(SumConstraint(entry[0], entry[1], entry[2]))
    fds = []
    for item in payload["fds"]:
        lhs = _require(item, "lhs", "snapshot FD")
        rhs = _require(item, "rhs", "snapshot FD")
        try:
            fds.append(FunctionalDependency(lhs, rhs))
        except Exception as exc:
            raise ServiceError(f"cannot restore normalized FD {item!r}: {exc}") from None
    pairs = []
    for pair in payload["closure_pairs"]:
        if not isinstance(pair, list) or len(pair) != 2:
            raise ServiceError(f"snapshot closure pair {pair!r} is not an [a, b] pair")
        pairs.append((pair[0], pair[1]))
    try:
        return NormalizedDependencies.from_artifacts(
            original=list(dependencies),
            fds=fds,
            sum_constraints=constraints,
            fresh_attributes=list(payload["fresh_attributes"]),
            attribute_closure_pairs=pairs,
        )
    except ValueError as exc:
        raise ServiceError(f"cannot restore normalization artifacts: {exc}") from None


def restore_session(
    snapshot: Union[str, bytes, dict],
    result_cache_size: int = 1024,
    foreign_context_limit: int = 16,
    expected_generation: Optional[int] = None,
    expected_dependencies=None,
):
    """Rebuild a warm :class:`~repro.service.session.Session` from a snapshot.

    ``snapshot`` is the canonical text (or an already-verified payload dict).
    Every expression re-enters through the parser — and hence the hash-consed
    AST — so the restored index is built over *this* process's interned
    nodes, exactly as if the closure had been recomputed here.

    ``expected_generation`` refuses a stale snapshot of an older Γ;
    ``expected_dependencies`` (any iterable of PDs) refuses a snapshot whose
    base Γ differs from the one the caller configured.
    """
    from repro.service.session import DependencyContext, Session

    payload = snapshot if isinstance(snapshot, dict) else decode_snapshot(snapshot)
    generation = payload["generation"]
    if expected_generation is not None and generation != expected_generation:
        raise ServiceError(
            f"stale snapshot: it captures Γ generation {generation}, "
            f"but generation {expected_generation} was required"
        )
    dependencies = tuple(decode_pd(text) for text in payload["dependencies"])
    if expected_dependencies is not None:
        expected = [encode_pd(pd) for pd in expected_dependencies]
        if expected != list(payload["dependencies"]):
            raise ServiceError(
                "snapshot Γ mismatch: the snapshot captures "
                f"{payload['dependencies']!r} but {expected!r} was configured"
            )

    base = _restore_context(
        DependencyContext, dependencies, payload["index"], payload["normalized"]
    )
    tenants = []
    for name, tenant_state in payload.get("tenants", ()):
        tenant_dependencies = tuple(decode_pd(text) for text in tenant_state["dependencies"])
        tenants.append(
            (
                name,
                _restore_context(
                    DependencyContext,
                    tenant_dependencies,
                    tenant_state["index"],
                    tenant_state["normalized"],
                ),
                tenant_state["generation"],
            )
        )
    results = []
    for entry in payload["results"]:
        if len(entry) == 4:
            key, uses_gamma, tenant, result_payload = entry
        else:  # a version-1 document: default-tenant entries only
            key, uses_gamma, result_payload = entry
            tenant = None
        result = decode_result(result_payload)
        if not result.ok:
            raise ServiceError("snapshot result cache contains an error result (never cached)")
        results.append((key, (bool(uses_gamma), tenant, result)))
    return Session._from_restored(
        base,
        generation=generation,
        results=results,
        result_cache_size=result_cache_size,
        foreign_context_limit=foreign_context_limit,
        tenants=tenants,
    )


def _restore_context(context_cls, dependencies, index_payload, normalized_payload):
    """A :class:`DependencyContext` over whatever artifacts the payload carries.

    ``index: null`` (a lazy tenant) restores a plain lazy context; anything
    present re-enters through the parser and the hash-consed AST.
    """
    engine = None
    if index_payload is not None:
        expressions = [decode_expression(text) for text in index_payload["expressions"]]
        arcs = {source: targets for source, targets in index_payload["arcs"]}
        try:
            index = ImplicationIndex.from_state(
                dependencies, expressions, index_payload["parent"], arcs
            )
        except (ValueError, TypeError) as exc:
            raise ServiceError(f"cannot restore implication index: {exc}") from None
        engine = ImplicationEngine.from_index(index)
    normalized = chase_engine = None
    if normalized_payload is not None:
        normalized = _decode_normalized(normalized_payload, dependencies)
        chase_engine = ChaseEngine(normalized.fds)
    if engine is None and normalized is None:
        return context_cls(dependencies)
    return context_cls.from_artifacts(
        dependencies, engine=engine, normalized=normalized, chase_engine=chase_engine
    )


# -- file lifecycle ---------------------------------------------------------------


def snapshot_path(directory: Union[str, Path]) -> Path:
    """The snapshot file a directory-based deployment reads and writes."""
    return Path(directory) / SNAPSHOT_FILENAME


def save_snapshot(session, directory: Union[str, Path]) -> Path:
    """Write a session's snapshot atomically into ``directory``; returns the path.

    The text lands under a temporary name first and is renamed into place, so
    a reader (or a crash mid-write) never observes a truncated document — the
    digest check would refuse one anyway, but the boot path should not have
    to retry.
    """
    target = snapshot_path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = dump_snapshot(session)
    scratch = target.with_name(target.name + f".tmp.{os.getpid()}")
    scratch.write_text(text + "\n", encoding="utf-8")
    os.replace(scratch, target)
    return target


def read_snapshot(directory: Union[str, Path]) -> Optional[str]:
    """The snapshot text stored in ``directory``, or ``None`` when there is none.

    The text is *not* verified here — callers hand it to
    :func:`decode_snapshot` / :func:`restore_session`, which refuse corrupted
    or mis-versioned documents with a clear error.
    """
    path = snapshot_path(directory)
    try:
        return path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise ServiceError(f"cannot read snapshot {path}: {exc}") from None
