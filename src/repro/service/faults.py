"""Deterministic fault injection: seeded chaos for the supervised service.

Fault tolerance that is only exercised by real crashes is fault tolerance
that is never exercised.  This module makes every failure mode the
supervisor handles *injectable on purpose*, deterministically, from pytest:

* a :class:`FaultPlan` is a seeded, ordered tuple of :class:`Fault` records
  with a canonical JSON codec, so a plan travels through
  :class:`~repro.service.config.ServiceConfig`, a CLI flag, or the
  :data:`ENV_VAR` environment hook into subprocess workers byte-identically;
* workers call the hook points (:func:`on_unit_start`, :func:`on_request`,
  :func:`corrupt_result_line`) at the exact seams the supervisor defends:
  unit dispatch, request evaluation, and the result wire.

Fault kinds:

``crash_worker``
    SIGKILL the worker process when it starts its Nth work unit (matched on
    ``worker`` index, per-worker ``unit`` ordinal and ``incarnation``).
    Modeling: an OOM kill or segfault mid-stream.
``crash_request``
    SIGKILL the worker process when it begins evaluating the request with
    ``request_id``.  Modeling: a *poison* request that reliably takes down
    whatever worker it lands on — the quarantine scenario.
``delay``
    Sleep ``delay_ms`` before evaluating ``request_id``, in small slices
    that call :func:`repro.deadline.check_deadline` so an active budget
    expires *cooperatively*.  Modeling: a slow query.
``hang``
    Sleep ``delay_ms`` before evaluating ``request_id`` **without** budget
    checks.  Modeling: a stuck kernel that never reaches a check point —
    only the supervisor's hard wall-clock kill can reclaim the worker.
``corrupt``
    Mangle the encoded result line of ``request_id`` on its way out of the
    worker.  Modeling: a torn write / codec bug, caught by the parent's
    response validation.

Crash and corrupt faults are **worker-scoped**: they only fire after
:func:`set_worker_context` has been called (i.e. inside a supervised worker
process), so a plan installed in an in-process server cannot kill the server
itself.  ``delay`` and ``hang`` fire anywhere — they are how the in-process
deadline and window-budget paths are tested.  ``incarnation`` matching makes
one-shot-vs-persistent failures deterministic: a fault pinned to incarnation
0 disappears after the supervisor restarts the worker (the transient crash),
while one with ``incarnation=None`` follows the request wherever it lands
(the poison request).

The state is process-global on purpose: workers receive the plan over the
spawn/fork boundary (or via :data:`ENV_VAR`) and the hook points are free
functions the session can call without threading a handle through every
layer.  Tests reset with :func:`clear_fault_plan` (autouse fixture).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.deadline import check_deadline
from repro.errors import ServiceError
from repro.service.wire import canonical_dumps

#: Environment hook: a canonical FaultPlan JSON document.  Worker processes
#: and freshly started servers install it automatically, so a chaos run can
#: reach every process of a service tree without plumbing.
ENV_VAR = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("crash_worker", "crash_request", "delay", "hang", "corrupt")

#: Sleep-slice length for cooperative delays: long enough to be cheap, short
#: enough that a blown budget is noticed within ~5 ms.
_SLICE_SECONDS = 0.005


@dataclass(frozen=True)
class Fault:
    """One injectable failure, matched by kind and its (optional) selectors.

    ``None`` selectors are wildcards: a ``crash_request`` with
    ``incarnation=None`` fires on every incarnation (a poison request), one
    with ``incarnation=0`` fires only before the first restart (a transient
    crash).
    """

    kind: str
    request_id: Optional[str] = None
    worker: Optional[int] = None
    unit: Optional[int] = None
    incarnation: Optional[int] = None
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ServiceError(
                f"unknown fault kind {self.kind!r}; expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.kind == "crash_worker":
            if self.worker is None or self.unit is None:
                raise ServiceError("a 'crash_worker' fault needs 'worker' and 'unit' selectors")
        elif self.request_id is None:
            raise ServiceError(f"a {self.kind!r} fault needs a 'request_id' selector")
        if self.kind in ("delay", "hang") and self.delay_ms <= 0:
            raise ServiceError(f"a {self.kind!r} fault needs a positive 'delay_ms'")

    def encode(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.unit is not None:
            payload["unit"] = self.unit
        if self.incarnation is not None:
            payload["incarnation"] = self.incarnation
        if self.delay_ms:
            payload["delay_ms"] = self.delay_ms
        return payload

    @classmethod
    def decode(cls, payload: dict) -> "Fault":
        if not isinstance(payload, dict):
            raise ServiceError(f"a fault must be a JSON object, got {type(payload).__name__}")
        known = {"kind", "request_id", "worker", "unit", "incarnation", "delay_ms"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"fault payload has unknown fields: {', '.join(unknown)}")
        if "kind" not in payload:
            raise ServiceError("fault payload is missing 'kind'")
        return cls(
            kind=payload["kind"],
            request_id=payload.get("request_id"),
            worker=payload.get("worker"),
            unit=payload.get("unit"),
            incarnation=payload.get("incarnation"),
            delay_ms=float(payload.get("delay_ms", 0.0)),
        )

    def _matches_incarnation(self, incarnation: int) -> bool:
        return self.incarnation is None or self.incarnation == incarnation


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults with a canonical JSON codec.

    The ``seed`` is carried for provenance (benchmarks and CI artifacts
    record which chaos run produced a number); matching itself is fully
    determined by the fault selectors.
    """

    seed: int = 0
    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return canonical_dumps(
            {"seed": self.seed, "faults": [fault.encode() for fault in self.faults]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServiceError("fault plan must be a JSON object")
        unknown = sorted(set(payload) - {"seed", "faults"})
        if unknown:
            raise ServiceError(f"fault plan has unknown fields: {', '.join(unknown)}")
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(f"fault plan 'seed' must be an integer, got {seed!r}")
        raw_faults = payload.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ServiceError("fault plan 'faults' must be a list")
        return cls(seed=seed, faults=tuple(Fault.decode(entry) for entry in raw_faults))

    def __len__(self) -> int:
        return len(self.faults)


# -- process-global injection state ------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_WORKER: Optional[int] = None
_INCARNATION: int = 0
_UNITS_STARTED: int = 0


def install_fault_plan(plan) -> Optional[FaultPlan]:
    """Install a plan (object, JSON text, or ``None`` to clear) process-wide."""
    global _PLAN, _UNITS_STARTED
    if plan is None:
        _PLAN = None
    elif isinstance(plan, FaultPlan):
        _PLAN = plan
    elif isinstance(plan, str):
        _PLAN = FaultPlan.from_json(plan)
    else:
        raise ServiceError(f"cannot install a fault plan from {type(plan).__name__}")
    _UNITS_STARTED = 0
    return _PLAN


def install_from_env() -> Optional[FaultPlan]:
    """Install the plan from :data:`ENV_VAR`, if set; returns it (or ``None``)."""
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    return install_fault_plan(text)


def installed_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _PLAN


def clear_fault_plan() -> None:
    """Remove any installed plan and reset all matching state."""
    global _PLAN, _WORKER, _INCARNATION, _UNITS_STARTED
    _PLAN = None
    _WORKER = None
    _INCARNATION = 0
    _UNITS_STARTED = 0


def set_worker_context(worker: int, incarnation: int) -> None:
    """Mark this process as supervised worker ``worker``, restart ``incarnation``.

    Arms the crash/corrupt fault kinds (which are no-ops outside a worker)
    and resets the per-incarnation unit counter.
    """
    global _WORKER, _INCARNATION, _UNITS_STARTED
    _WORKER = worker
    _INCARNATION = incarnation
    _UNITS_STARTED = 0


def _die() -> None:
    # SIGKILL leaves no chance for cleanup — exactly the failure the
    # supervisor must survive.  (os.kill on self is portable enough here:
    # the service already requires a POSIX multiprocessing environment.)
    os.kill(os.getpid(), signal.SIGKILL)


def on_unit_start() -> None:
    """Worker hook: called once per received work unit, before any evaluation."""
    global _UNITS_STARTED
    unit_ordinal = _UNITS_STARTED
    _UNITS_STARTED += 1
    plan = _PLAN
    if plan is None or _WORKER is None:
        return
    for fault in plan.faults:
        if (
            fault.kind == "crash_worker"
            and fault.worker == _WORKER
            and fault.unit == unit_ordinal
            and fault._matches_incarnation(_INCARNATION)
        ):
            _die()


def on_request(request_id: Optional[str]) -> None:
    """Evaluation hook: called by the session as a request enters ``_evaluate``.

    Runs inside the request's deadline scope, so a ``delay`` fault can blow
    the budget cooperatively while a ``hang`` fault sails past it.
    """
    plan = _PLAN
    if plan is None or request_id is None:
        return
    for fault in plan.faults:
        if fault.request_id != request_id:
            continue
        if fault.kind == "crash_request":
            if _WORKER is not None and fault._matches_incarnation(_INCARNATION):
                _die()
        elif fault.kind == "delay":
            if fault._matches_incarnation(_INCARNATION):
                _sleep_cooperatively(fault.delay_ms)
        elif fault.kind == "hang":
            if fault._matches_incarnation(_INCARNATION):
                time.sleep(fault.delay_ms / 1000.0)


def corrupt_result_line(request_id: Optional[str], line: str) -> str:
    """Wire hook: the (possibly mangled) result line a worker should emit."""
    plan = _PLAN
    if plan is None or request_id is None or _WORKER is None:
        return line
    for fault in plan.faults:
        if (
            fault.kind == "corrupt"
            and fault.request_id == request_id
            and fault._matches_incarnation(_INCARNATION)
        ):
            # Torn write: drop the tail so the line no longer parses as JSON.
            return line[: max(1, len(line) // 2)] + "#corrupt"
    return line


def _sleep_cooperatively(delay_ms: float) -> None:
    """Sleep in short slices, honoring any active deadline between slices."""
    deadline = time.monotonic() + delay_ms / 1000.0
    while True:
        check_deadline()
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(_SLICE_SECONDS, remaining))
