"""One configuration surface for every deployment shape of the query service.

Before this module, each entry point threaded its own keyword arguments:
the CLI passed ``shards``/``batch`` into :func:`~repro.service.cli.serve_lines`,
the executor took its own constructor keywords, and session tuning (cache
size, foreign-context limit) was reachable only by instantiating
:class:`~repro.service.session.Session` by hand.  :class:`ServiceConfig` is
the single dataclass all of them consume:

* the **batch CLI** (``python -m repro.service FILE``) reads ``dependencies``,
  ``shards`` and ``batch``;
* the **async server** (``python -m repro.service serve``) additionally reads
  the micro-batch window bounds (``max_wait_ms``, ``max_batch``), the
  admission-queue depth (``queue_limit``), the ``overload`` policy and the
  listen address;
* :meth:`ServiceConfig.make_session` / :meth:`ServiceConfig.make_executor`
  build the matching pipeline objects, so the three consumers cannot drift
  apart on defaults.

:func:`add_config_arguments` / :func:`config_from_args` translate the shared
dataclass to and from ``argparse`` flags; both CLI modes use them, which is
what keeps ``--dependencies``/``--shards``/``--cache-size`` spelled and
validated identically in file mode and serve mode.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dependencies.pd import PartitionDependency, parse_pd_set
from repro.errors import ServiceError

#: Admission behaviours when the bounded queue is full: ``block`` delays the
#: reader (TCP-level pushback), ``shed`` answers immediately with a
#: well-formed ``ok=false`` result.
OVERLOAD_POLICIES = ("block", "shed")


def parse_dependency_text(text: Optional[str]) -> tuple[PartitionDependency, ...]:
    """Parse the CLI's ``"A = A*B; B = B*C"`` dependency syntax (``None``/empty → ())."""
    if not text:
        return ()
    try:
        return tuple(parse_pd_set(part for part in text.split(";") if part.strip()))
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"cannot parse dependencies {text!r}: {exc}") from None


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of the query service, in one validated place.

    ``shards == 1`` means in-process dispatch; ``batch=False`` selects the
    naive one-at-a-time baseline (file mode only — the server always
    batches, that is its point).  ``max_wait_ms``/``max_batch`` bound the
    micro-batch window in time and size; ``queue_limit`` bounds admission;
    ``port = 0`` asks the OS for an ephemeral port.
    """

    dependencies: tuple[PartitionDependency, ...] = ()
    shards: int = 1
    batch: bool = True
    result_cache_size: int = 1024
    foreign_context_limit: int = 16
    max_wait_ms: float = 20.0
    max_batch: int = 32
    queue_limit: int = 256
    overload: str = "block"
    host: str = "127.0.0.1"
    port: int = 0
    stats: bool = False
    stats_window: int = field(default=4096, repr=False)
    snapshot_dir: Optional[str] = None
    window_budget_ms: Optional[float] = None
    unit_timeout_ms: Optional[float] = None
    breaker_threshold: int = 4
    fault_plan: Optional[str] = None
    shared_cache_size: int = 4096
    trace: bool = False
    metrics_dir: Optional[str] = None
    metrics_interval_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"shards must be at least 1, got {self.shards}")
        if self.shards > 1 and not self.batch:
            raise ServiceError(
                "batch=False (the naive baseline) cannot be combined with shards > 1: "
                "workers always dispatch through the batch planner"
            )
        if self.result_cache_size < 0:
            raise ServiceError(f"result_cache_size must be >= 0, got {self.result_cache_size}")
        if self.foreign_context_limit < 1:
            raise ServiceError(
                f"foreign_context_limit must be >= 1, got {self.foreign_context_limit}"
            )
        if self.max_wait_ms < 0:
            raise ServiceError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.overload not in OVERLOAD_POLICIES:
            raise ServiceError(
                f"unknown overload policy {self.overload!r}; expected one of {OVERLOAD_POLICIES}"
            )
        if not (0 <= self.port <= 65535):
            raise ServiceError(f"port must be in [0, 65535], got {self.port}")
        if self.stats_window < 1:
            raise ServiceError(f"stats_window must be >= 1, got {self.stats_window}")
        if self.window_budget_ms is not None and self.window_budget_ms <= 0:
            raise ServiceError(
                f"window_budget_ms must be positive, got {self.window_budget_ms}"
            )
        if self.unit_timeout_ms is not None and self.unit_timeout_ms <= 0:
            raise ServiceError(f"unit_timeout_ms must be positive, got {self.unit_timeout_ms}")
        if self.breaker_threshold < 0:
            raise ServiceError(
                f"breaker_threshold must be >= 0 (0 disables), got {self.breaker_threshold}"
            )
        if self.shared_cache_size < 0:
            raise ServiceError(
                f"shared_cache_size must be >= 0 (0 disables), got {self.shared_cache_size}"
            )
        if self.metrics_interval_ms <= 0:
            raise ServiceError(
                f"metrics_interval_ms must be positive, got {self.metrics_interval_ms}"
            )
        if self.fault_plan is not None:
            from repro.service.faults import FaultPlan

            FaultPlan.from_json(self.fault_plan)  # fail loudly at config time

    # -- factories -------------------------------------------------------------

    def with_dependencies(self, text: Optional[str]) -> "ServiceConfig":
        """This config over the parsed ``--dependencies`` string."""
        return replace(self, dependencies=parse_dependency_text(text))

    def read_boot_snapshot(self) -> Optional[str]:
        """The snapshot text in ``snapshot_dir``, if both are present.

        The text is unverified — the restore path refuses corruption and
        version skew with a :class:`~repro.errors.ServiceError`, which the
        entry points surface instead of silently booting cold.
        """
        if self.snapshot_dir is None:
            return None
        from repro.service.snapshot import read_snapshot

        return read_snapshot(self.snapshot_dir)

    def make_session(self):
        """An in-process :class:`~repro.service.session.Session` per this config.

        With ``snapshot_dir`` set and a snapshot on disk, the session is
        *restored* instead of recomputed (zero-warmup boot).  A configured
        non-empty Γ must match the snapshot's; an empty configured Γ adopts
        the snapshot's.
        """
        from repro.service.session import Session

        snapshot = self.read_boot_snapshot()
        if snapshot is not None:
            return Session.restore(
                snapshot,
                result_cache_size=self.result_cache_size,
                foreign_context_limit=self.foreign_context_limit,
                expected_dependencies=self.dependencies or None,
            )
        return Session(
            self.dependencies,
            result_cache_size=self.result_cache_size,
            foreign_context_limit=self.foreign_context_limit,
        )

    def make_executor(self):
        """A :class:`~repro.service.executor.ShardExecutor` per this config.

        Only meaningful for ``shards > 1``; callers pick between
        :meth:`make_session` and this by the shard count.  A boot snapshot,
        when present, ships to every worker for zero-warmup restore.
        """
        from repro.service.executor import ShardExecutor

        return ShardExecutor(
            shards=self.shards,
            dependencies=self.dependencies,
            snapshot=self.read_boot_snapshot(),
            fault_plan=self.fault_plan,
            unit_timeout_ms=self.unit_timeout_ms,
            shared_cache_size=self.shared_cache_size,
        )


def add_config_arguments(parser: argparse.ArgumentParser, serve: bool = False) -> None:
    """Install the shared service flags (plus the serve-only window/listen flags)."""
    defaults = ServiceConfig()
    parser.add_argument(
        "-d",
        "--dependencies",
        default="",
        help="base Γ for the session: semicolon-separated PDs, e.g. 'A = A*B; C = A + B'",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=defaults.shards,
        help="number of worker processes (1 = in-process; default 1)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=defaults.result_cache_size,
        help=f"session result-cache entries (0 disables; default {defaults.result_cache_size})",
    )
    parser.add_argument("--stats", action="store_true", help="print a summary line to stderr")
    parser.add_argument(
        "--unit-timeout-ms",
        type=float,
        default=None,
        help=(
            "hard wall-clock limit per sharded work unit in milliseconds "
            "(default: none; deadline-carrying units always get max deadline + grace)"
        ),
    )
    parser.add_argument(
        "--shared-cache-size",
        type=int,
        default=defaults.shared_cache_size,
        help=(
            "parent-side shared result-cache entries for sharded dispatch "
            f"(0 disables the shared tier and ring routing; default {defaults.shared_cache_size})"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        help="a FaultPlan JSON document for deterministic chaos testing (see repro.service.faults)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help=(
            "directory for durable Γ snapshots: restore the session from "
            "session.snapshot.json on boot when present, and save one on "
            "drain (serve mode) or after the stream (file mode)"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "mint a trace id per request (unless the request carries one) and "
            "record per-stage spans; result lines stay byte-identical"
        ),
    )
    parser.add_argument(
        "--metrics-dir",
        default=None,
        help=(
            "directory for telemetry dumps: trace.jsonl (spans), costlog.jsonl "
            "(per-work-unit kernel cost records) and metrics.jsonl (registry "
            "exports); implies telemetry collection"
        ),
    )
    if not serve:
        parser.add_argument(
            "--no-batch",
            action="store_true",
            help="disable the planner and dispatch one request at a time (baseline mode)",
        )
        return
    parser.add_argument("--host", default=defaults.host, help=f"listen address (default {defaults.host})")
    parser.add_argument(
        "--port",
        type=int,
        default=defaults.port,
        help="listen port (0 = ephemeral; the bound port is announced on stderr)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=defaults.max_wait_ms,
        help=f"micro-batch window timer in milliseconds (default {defaults.max_wait_ms})",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults.max_batch,
        help=f"micro-batch window size bound (default {defaults.max_batch})",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=defaults.queue_limit,
        help=f"bounded admission-queue depth (default {defaults.queue_limit})",
    )
    parser.add_argument(
        "--overload",
        choices=OVERLOAD_POLICIES,
        default=defaults.overload,
        help="policy when the admission queue is full: delay reads or shed with an error result",
    )
    parser.add_argument(
        "--window-budget-ms",
        type=float,
        default=defaults.window_budget_ms,
        help=(
            "execution budget per micro-batch window in milliseconds; an over-budget "
            "window degrades to a per-request retry lane (default: none)"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=defaults.breaker_threshold,
        help=(
            "worker crashes before the circuit breaker trips sharded execution down "
            f"to in-process (0 disables; default {defaults.breaker_threshold})"
        ),
    )
    parser.add_argument(
        "--metrics-interval-ms",
        type=float,
        default=defaults.metrics_interval_ms,
        help=(
            "period of the serve-mode metrics.jsonl dump loop in milliseconds "
            f"(only meaningful with --metrics-dir; default {defaults.metrics_interval_ms})"
        ),
    )


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """The :class:`ServiceConfig` an ``argparse`` namespace describes.

    Raises :class:`~repro.errors.ServiceError` on invalid values (the CLI
    turns that into exit code 2), so both modes validate identically.
    """
    try:
        dependencies = parse_dependency_text(args.dependencies)
    except ServiceError as exc:
        raise ServiceError(f"cannot parse --dependencies: {exc}") from None
    return ServiceConfig(
        dependencies=dependencies,
        shards=args.shards,
        batch=not getattr(args, "no_batch", False),
        result_cache_size=args.cache_size,
        max_wait_ms=getattr(args, "max_wait_ms", ServiceConfig.max_wait_ms),
        max_batch=getattr(args, "max_batch", ServiceConfig.max_batch),
        queue_limit=getattr(args, "queue_limit", ServiceConfig.queue_limit),
        overload=getattr(args, "overload", ServiceConfig.overload),
        host=getattr(args, "host", ServiceConfig.host),
        port=getattr(args, "port", ServiceConfig.port),
        stats=args.stats,
        snapshot_dir=getattr(args, "snapshot_dir", None),
        window_budget_ms=getattr(args, "window_budget_ms", None),
        unit_timeout_ms=getattr(args, "unit_timeout_ms", None),
        breaker_threshold=getattr(args, "breaker_threshold", ServiceConfig.breaker_threshold),
        fault_plan=getattr(args, "fault_plan", None),
        shared_cache_size=getattr(args, "shared_cache_size", ServiceConfig.shared_cache_size),
        trace=getattr(args, "trace", False),
        metrics_dir=getattr(args, "metrics_dir", None),
        metrics_interval_ms=getattr(
            args, "metrics_interval_ms", ServiceConfig.metrics_interval_ms
        ),
    )
