"""Micro-batch windows: re-batch continuous traffic so amortization survives live load.

The batch planner's 1.5–7× group-by amortization (PR 5) only materializes
when requests arrive *pre-collected*; a live socket delivers them one at a
time.  :class:`MicroBatcher` closes that gap the way modern inference-serving
stacks do — continuous batching with a bounded window:

* **Admission** — :meth:`MicroBatcher.submit` puts each request into a
  *bounded* queue.  When the queue is full, the ``block`` policy makes the
  put await (the submitting reader coroutine stalls, its socket stops being
  read, TCP pushes back on the client), while the ``shed`` policy answers
  immediately with a well-formed ``ok=false`` result whose error type is
  ``"Overloaded"`` — the client still gets exactly one answer per request.
* **Windowing** — a single collector loop drains the queue into windows
  bounded in size (``max_batch``) and time (``max_wait_ms`` measured from the
  first request of the window).  A backlog (requests that queued while the
  previous window executed) is drained without waiting, so the system
  degrades into *larger* windows under load — exactly when amortization pays
  most.  Each closed window goes to the pipeline executor **whole**, so the
  planner sees the same batch shape a request file would give it.
* **Execution** — windows run on one dedicated worker thread
  (:class:`~concurrent.futures.ThreadPoolExecutor` of size 1), keeping the
  event loop free to accumulate the next window while the current one
  computes, and keeping window execution *sequential* against one session —
  which is what makes served results byte-identical to the file CLI.
* **Accounting** — every request is stamped at enqueue → window-close →
  plan (hand-off to the worker) → execute (results ready) → respond (written
  back), and :class:`MicroBatchStats` reports p50/p95/p99 latency per stage
  plus window-occupancy statistics (mean/max window size, close reasons).

The batcher is transport-agnostic: :mod:`repro.service.server` feeds it from
sockets, the EXP-SVC open-loop benchmark feeds it directly.  Graceful drain
(:meth:`MicroBatcher.drain`) answers everything admitted before shutdown.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.deadline import deadline_scope
from repro.errors import DeadlineExceeded, ServiceError
from repro.service.wire import QueryRequest, QueryResult

#: Queue sentinel that tells the collector loop to finish (FIFO order makes
#: it drain everything admitted before it).
_DRAIN = object()

#: Reported latency percentiles (×100 for exact integer keys).
PERCENTILE_POINTS = (50, 95, 99)

#: Distinct tenants tracked in the per-tenant request counters; traffic from
#: tenants beyond the cap aggregates into one ``"~other"`` bucket so a
#: million-tenant stream cannot balloon the stats surface.
TENANT_STATS_LIMIT = 64


def percentile(samples: Sequence[float], point: float) -> Optional[float]:
    """Nearest-rank percentile of a *sorted* sample list (``None`` when empty)."""
    if not samples:
        return None
    rank = max(1, min(len(samples), math.ceil(point / 100.0 * len(samples))))
    return samples[rank - 1]


def _stage_summary(samples: Sequence[float]) -> dict:
    """p50/p95/p99, mean and max of a latency sample set, in milliseconds."""
    ordered = sorted(samples)
    summary: dict[str, Any] = {
        f"p{point}": None if not ordered else round(percentile(ordered, point) * 1000.0, 3)
        for point in PERCENTILE_POINTS
    }
    summary["mean"] = round(sum(ordered) / len(ordered) * 1000.0, 3) if ordered else None
    summary["max"] = round(ordered[-1] * 1000.0, 3) if ordered else None
    summary["samples"] = len(ordered)
    return summary


class Ticket:
    """One admitted request and its life-cycle timestamps.

    ``future`` resolves to the :class:`~repro.service.wire.QueryResult`;
    awaiting callers should call :meth:`mark_responded` once they have
    delivered the answer (the server does it after the socket write, the
    benchmark driver after its ``await``) so the total-latency sample covers
    the full enqueue→respond span.
    """

    __slots__ = (
        "request",
        "future",
        "enqueued_at",
        "window_closed_at",
        "planned_at",
        "executed_at",
        "responded_at",
        "shed",
        "window_size",
        "window_reason",
        "_stats",
    )

    def __init__(self, request: QueryRequest, future: "asyncio.Future[QueryResult]", stats: "MicroBatchStats") -> None:
        self.request = request
        self.future = future
        self.enqueued_at = time.perf_counter()
        self.window_closed_at: Optional[float] = None
        self.planned_at: Optional[float] = None
        self.executed_at: Optional[float] = None
        self.responded_at: Optional[float] = None
        self.shed = False
        # Telemetry annotations: the size of the window this ticket rode in
        # and why it closed ("full" / "timer" / "drain"), stamped at close.
        self.window_size: Optional[int] = None
        self.window_reason: Optional[str] = None
        self._stats = stats

    async def result(self) -> QueryResult:
        """The answer (delivery is up to the caller; see :meth:`mark_responded`)."""
        return await self.future

    def mark_responded(self) -> None:
        """Stamp the respond time and feed this ticket's stage latencies to the stats."""
        if self.responded_at is not None:
            return
        self.responded_at = time.perf_counter()
        self._stats.record_ticket(self)


class MicroBatchStats:
    """Counters and bounded latency reservoirs for one batcher.

    Latency samples are kept in bounded deques (``stats_window`` most recent
    requests), so a long-lived server reports *recent* percentiles instead of
    averaging over its whole life.
    """

    def __init__(self, max_batch: int, stats_window: int = 4096) -> None:
        self._max_batch = max_batch
        self.submitted = 0
        self.answered = 0
        self.shed = 0
        self.windows = 0
        self.window_size_sum = 0
        self.window_size_max = 0
        self.closed_by = {"size": 0, "timer": 0, "drain": 0}
        self.over_budget = 0
        self.budget_retried = 0
        self.budget_timeouts = 0
        self.per_tenant: dict[str, dict[str, int]] = {}
        self._total: deque[float] = deque(maxlen=stats_window)
        self._queue_wait: deque[float] = deque(maxlen=stats_window)
        self._execute: deque[float] = deque(maxlen=stats_window)
        self._respond: deque[float] = deque(maxlen=stats_window)

    def record_tenant(self, tenant: Optional[str], field: str) -> None:
        """Bump one tenant's ``submitted``/``answered`` counter (capped keyspace)."""
        from repro.service.session import tenant_label

        label = tenant_label(tenant)
        bucket = self.per_tenant.get(label)
        if bucket is None:
            if len(self.per_tenant) >= TENANT_STATS_LIMIT:
                label = "~other"
                bucket = self.per_tenant.get(label)
            if bucket is None:
                bucket = {"submitted": 0, "answered": 0}
                self.per_tenant[label] = bucket
        bucket[field] += 1

    def record_window(self, size: int, reason: str) -> None:
        self.windows += 1
        self.window_size_sum += size
        self.window_size_max = max(self.window_size_max, size)
        self.closed_by[reason] += 1

    def record_ticket(self, ticket: Ticket) -> None:
        if ticket.shed:
            return  # shed answers are counted, not sampled: ~0 latency would skew p50 down
        if ticket.window_closed_at is not None:
            self._queue_wait.append(ticket.window_closed_at - ticket.enqueued_at)
        if ticket.executed_at is not None and ticket.planned_at is not None:
            self._execute.append(ticket.executed_at - ticket.planned_at)
        if ticket.responded_at is not None:
            if ticket.executed_at is not None:
                self._respond.append(ticket.responded_at - ticket.executed_at)
            self._total.append(ticket.responded_at - ticket.enqueued_at)

    def snapshot(self) -> dict:
        """The stats dict the ``--stats`` endpoint and EXP-SVC report."""
        mean_size = self.window_size_sum / self.windows if self.windows else None
        return {
            "requests": {
                "submitted": self.submitted,
                "answered": self.answered,
                "shed": self.shed,
                "per_tenant": {label: dict(bucket) for label, bucket in self.per_tenant.items()},
            },
            "windows": {
                "count": self.windows,
                "mean_size": round(mean_size, 3) if mean_size is not None else None,
                "max_size": self.window_size_max,
                "occupancy": round(mean_size / self._max_batch, 4) if mean_size else None,
                "closed_by": dict(self.closed_by),
                "over_budget": self.over_budget,
                "budget_retried": self.budget_retried,
                "budget_timeouts": self.budget_timeouts,
            },
            "latency_ms": {
                "total": _stage_summary(self._total),
                "queue_wait": _stage_summary(self._queue_wait),
                "execute": _stage_summary(self._execute),
                "respond": _stage_summary(self._respond),
            },
        }


class MicroBatcher:
    """Accumulate continuous requests into bounded windows for the batch pipeline.

    ``execute_window`` is the whole-window pipeline — typically
    ``session.execute_many`` or ``ShardExecutor.execute`` — called on the
    worker thread with the window's requests, returning one result per
    request in order.  Use as an async context manager (or call
    :meth:`start` / :meth:`drain` explicitly).
    """

    def __init__(
        self,
        execute_window: Callable[[list[QueryRequest]], Sequence[QueryResult]],
        max_wait_ms: float = 20.0,
        max_batch: int = 32,
        queue_limit: int = 256,
        overload: str = "block",
        stats_window: int = 4096,
        window_budget_ms: Optional[float] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServiceError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        if overload not in ("block", "shed"):
            raise ServiceError(f"unknown overload policy {overload!r}")
        if window_budget_ms is not None and window_budget_ms <= 0:
            raise ServiceError(f"window_budget_ms must be positive, got {window_budget_ms}")
        self._execute_window = execute_window
        self._window_budget_ms = window_budget_ms
        self._max_wait = max_wait_ms / 1000.0
        self._max_batch = max_batch
        self._queue_limit = queue_limit
        self._overload = overload
        self.stats = MicroBatchStats(max_batch, stats_window=stats_window)
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_limit)
        self._worker = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-window")
        self._collector: Optional[asyncio.Task] = None
        self._draining = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._collector is None:
            self._collector = asyncio.ensure_future(self._collect())

    async def __aenter__(self) -> "MicroBatcher":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: answer everything admitted, then stop.

        The sentinel goes through the same FIFO queue as the tickets, so the
        collector necessarily windows and executes every admitted request
        before it sees the stop signal.
        """
        if self._draining:
            if self._collector is not None:
                await asyncio.shield(self._collector)
            return
        self._draining = True
        if self._collector is None:
            self._worker.shutdown(wait=False)
            return
        await self._queue.put(_DRAIN)
        await self._collector
        self._worker.shutdown(wait=True)

    async def run_exclusive(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on the window worker thread, serialized against windows.

        Windows execute one at a time on the batcher's single worker thread;
        submitting ``fn`` to the same thread means it can never interleave
        with a window that is mutating the session.  The live-snapshot
        control line uses this to export a consistent Γ state from a serving
        process without pausing admission.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, fn)

    # -- admission -------------------------------------------------------------

    async def submit(self, request: QueryRequest) -> Ticket:
        """Admit one request; returns its :class:`Ticket` (await ``ticket.result()``).

        Under the ``block`` policy a full queue delays this coroutine — and
        therefore the reader that called it — until a window frees space.
        Under ``shed`` the ticket comes back already resolved with an
        ``Overloaded`` error result.
        """
        if self._draining:
            raise ServiceError("micro-batcher is draining; no new requests are admitted")
        if self._collector is None:
            raise ServiceError("micro-batcher is not started")
        loop = asyncio.get_running_loop()
        ticket = Ticket(request, loop.create_future(), self.stats)
        self.stats.submitted += 1
        self.stats.record_tenant(request.tenant, "submitted")
        if self._overload == "shed" and self._queue.full():
            ticket.shed = True
            self.stats.shed += 1
            ticket.future.set_result(
                QueryResult(
                    kind=request.kind,
                    ok=False,
                    id=request.id,
                    error={
                        "type": "Overloaded",
                        "message": (
                            f"admission queue full ({self._queue_limit} requests); "
                            "request shed by overload policy"
                        ),
                    },
                )
            )
            return ticket
        await self._queue.put(ticket)
        return ticket

    # -- the collector loop ----------------------------------------------------

    async def _collect(self) -> None:
        while True:
            first = await self._queue.get()
            if first is _DRAIN:
                return
            window = [first]
            reason = await self._fill_window(window)
            now = time.perf_counter()
            for ticket in window:
                ticket.window_closed_at = now
                ticket.window_size = len(window)
                ticket.window_reason = reason
            self.stats.record_window(len(window), reason)
            await self._run_window(window)
            if reason == "drain":
                return

    async def _fill_window(self, window: list) -> str:
        """Grow the window to ``max_batch`` or the timer; returns the close reason.

        Backlog is drained synchronously (no await), so requests that queued
        while the previous window executed coalesce immediately.
        """
        deadline = time.perf_counter() + self._max_wait
        while len(window) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                timeout = deadline - time.perf_counter()
                if timeout <= 0:
                    return "timer"
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    return "timer"
            if item is _DRAIN:
                return "drain"
            window.append(item)
        return "size"

    async def _run_window(self, window: list) -> None:
        """Execute one closed window on the worker thread and resolve its tickets."""
        loop = asyncio.get_running_loop()
        requests = [ticket.request for ticket in window]
        now = time.perf_counter()
        for ticket in window:
            ticket.planned_at = now
        try:
            results = await loop.run_in_executor(
                self._worker, self._execute_window_checked, requests
            )
        except Exception as exc:  # the pipeline answers per request; this is a harness fault
            results = [
                QueryResult(
                    kind=request.kind,
                    ok=False,
                    id=request.id,
                    error={"type": type(exc).__name__, "message": str(exc)},
                )
                for request in requests
            ]
        now = time.perf_counter()
        for ticket, result in zip(window, results):
            ticket.executed_at = now
            self.stats.answered += 1
            self.stats.record_tenant(ticket.request.tenant, "answered")
            if not ticket.future.done():  # a cancelled waiter must not crash the loop
                ticket.future.set_result(result)

    def _execute_window_checked(self, requests: list[QueryRequest]) -> Sequence[QueryResult]:
        """Execute a window, optionally under the per-window execution budget.

        The budget is a :func:`~repro.deadline.deadline_scope` around the
        whole window: when it expires (cooperatively, inside a kernel's
        ``check_deadline``), the window degrades to a per-request **retry
        lane** — each request re-runs alone under a fresh budget, so one
        pathological request costs only itself a ``Timeout`` while its window
        neighbors still answer (typically from the session cache, since
        results computed before the expiry were already stored).  The budget
        only bites executors that compute on this thread (the in-process
        session); a sharded backend's workers enforce deadlines in their own
        processes under the supervisor's wall clock.
        """
        if self._window_budget_ms is None:
            results = list(self._execute_window(requests))
        else:
            scope = None
            try:
                with deadline_scope(self._window_budget_ms) as scope:
                    results = list(self._execute_window(requests))
            except DeadlineExceeded as exc:
                if scope is None or exc.scope is not scope:
                    raise  # a request-level budget leaked; not ours to handle
                return self._retry_individually(requests)
        if len(results) != len(requests):  # loud, not misaligned
            raise ServiceError(
                f"window executor answered {len(results)} of {len(requests)} requests"
            )
        return results

    def _retry_individually(self, requests: list[QueryRequest]) -> list[QueryResult]:
        """The over-budget retry lane: one request at a time, fresh budget each."""
        self.stats.over_budget += 1
        out: list[QueryResult] = []
        for request in requests:
            self.stats.budget_retried += 1
            scope = None
            try:
                with deadline_scope(self._window_budget_ms) as scope:
                    answers = list(self._execute_window([request]))
            except DeadlineExceeded as exc:
                if scope is None or exc.scope is not scope:
                    raise
                self.stats.budget_timeouts += 1
                out.append(
                    QueryResult(
                        kind=request.kind,
                        ok=False,
                        id=request.id,
                        error={
                            "type": "Timeout",
                            "message": (
                                f"request exhausted the {self._window_budget_ms:g} ms "
                                "micro-batch window budget even when retried alone"
                            ),
                        },
                    )
                )
                continue
            if len(answers) != 1:  # loud, not misaligned
                raise ServiceError(
                    f"window executor answered {len(answers)} of 1 retried request"
                )
            out.append(answers[0])
        return out
