"""The partition-semantics query service: one scalable front door for every kernel.

PRs 1–4 built fast in-memory decision procedures — the incremental ALG
implication index, the indexed chase, the partition and lattice kernels —
but using them meant importing the library and hand-wiring engines per
query.  This subsystem packages them behind a stable, stateful, scalable
request surface:

* :mod:`repro.service.wire` — versioned, deterministic JSON codecs for every
  object that crosses a process boundary (expressions, PDs/FPDs/FDs,
  partitions/universes, relations/databases/schemas, requests, results);
* :mod:`repro.service.session` — :class:`Session`, the uniform
  ``QueryRequest → QueryResult`` surface owning one shared implication
  index, the Theorem 12 normalization cache, and an LRU result cache
  invalidated precisely when Γ grows;
* :mod:`repro.service.planner` — the batch planner that regroups a mixed
  stream by kind and dependency set and routes each group into the amortized
  batch APIs;
* :mod:`repro.service.executor` — :class:`ShardExecutor`, the multiprocess
  fan-out with per-worker session warm-up, wire-codec transport and
  deterministic result ordering;
* :mod:`repro.service.result_cache` — :class:`SharedResultCache`, the
  parent-side tier-0 result cache shared by every shard, and
  :class:`ConsistentHashRing`, the shard-affinity router that turns the
  per-worker caches into a coherent second tier;
* :mod:`repro.service.supervisor` — :class:`SupervisedPool`, the fault-
  tolerant worker pool under the executor: liveness monitoring, warm
  restarts, retry/split/quarantine escalation and hard deadline kills;
* :mod:`repro.service.faults` — :class:`FaultPlan`, the deterministic
  fault-injection harness (worker crashes, poison requests, delays, hangs,
  corrupted replies) used by the chaos tests and the CI smoke job;
* :mod:`repro.service.cli` — ``python -m repro.service``, serving JSONL
  request files or stdin streams;
* :mod:`repro.service.telemetry` — the observability layer: per-request
  trace spans threaded decode → window → plan → execute → respond (crossing
  the worker process boundary), the central :class:`MetricsRegistry` behind
  the ``{"control": "metrics"}`` line and ``--metrics-dir`` dumps, and the
  per-work-unit kernel cost log fed by :mod:`repro.profiling` counters;
* :mod:`repro.service.snapshot` — durable Γ snapshots: a versioned,
  digest-protected codec for a warm session's implication-index fixpoint,
  normalization artifacts and result cache, enabling zero-warmup restores
  of sessions, shard workers and servers (``--snapshot-dir``).

Minimal use::

    from repro.service import QueryRequest, Session

    session = Session(dependencies=["A = A*B", "B = B*C"])
    result = session.execute(QueryRequest(kind="implies", query=PartitionDependency.parse("A = A*C")))
    result.value   # {"implied": True}
"""

from repro.service.api import (
    ConsistencyAnswer,
    CounterexampleAnswer,
    EquivalenceAnswer,
    ImplicationAnswer,
    QuotientAnswer,
    answer_for,
    consistent_request,
    counterexample_request,
    equivalent_request,
    implies_request,
    quotient_request,
)
from repro.service.config import OVERLOAD_POLICIES, ServiceConfig
from repro.service.executor import ShardExecutor, pool_map_encoded
from repro.service.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    clear_fault_plan,
    install_fault_plan,
    install_from_env,
    installed_plan,
)
from repro.service.microbatch import MicroBatcher, MicroBatchStats, Ticket
from repro.service.planner import Batch, execute_plan, naive_dispatch, plan, plan_summary
from repro.service.result_cache import ConsistentHashRing, SharedResultCache
from repro.service.server import QueryServer, serve_stream
from repro.service.session import DependencyContext, Session
from repro.service.supervisor import SupervisedPool, SupervisorStats, WorkItem, WorkUnit
from repro.service.telemetry import (
    CostLog,
    MetricsRegistry,
    Span,
    Tracer,
    metrics_export,
    new_trace_id,
    root_span_id,
)
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    decode_snapshot,
    dump_snapshot,
    encode_snapshot,
    read_snapshot,
    restore_session,
    save_snapshot,
    snapshot_path,
)
from repro.service.wire import (
    CONSISTENT_METHODS,
    REQUEST_KINDS,
    WIRE_VERSION,
    QueryRequest,
    QueryResult,
    canonical_dumps,
    canonical_loads,
    decode_database,
    decode_expression,
    decode_fd,
    decode_fpd,
    decode_partition,
    decode_pd,
    decode_relation,
    decode_request,
    decode_result,
    decode_scheme,
    decode_universe,
    dump_request_line,
    dump_result_line,
    encode_database,
    encode_expression,
    encode_fd,
    encode_fpd,
    encode_partition,
    encode_pd,
    encode_relation,
    encode_request,
    encode_result,
    encode_scheme,
    encode_universe,
    error_result_for_line,
    load_request_line,
    load_result_line,
    request_cache_key,
    request_id_hint,
    requests_to_jsonl,
)

__all__ = [
    "WIRE_VERSION",
    "REQUEST_KINDS",
    "CONSISTENT_METHODS",
    "QueryRequest",
    "QueryResult",
    "Session",
    "DependencyContext",
    "ServiceConfig",
    "OVERLOAD_POLICIES",
    "QueryServer",
    "serve_stream",
    "MicroBatcher",
    "MicroBatchStats",
    "Ticket",
    "ImplicationAnswer",
    "EquivalenceAnswer",
    "ConsistencyAnswer",
    "QuotientAnswer",
    "CounterexampleAnswer",
    "implies_request",
    "equivalent_request",
    "consistent_request",
    "quotient_request",
    "counterexample_request",
    "answer_for",
    "Batch",
    "plan",
    "plan_summary",
    "execute_plan",
    "naive_dispatch",
    "ShardExecutor",
    "pool_map_encoded",
    "SharedResultCache",
    "ConsistentHashRing",
    "SupervisedPool",
    "SupervisorStats",
    "WorkItem",
    "WorkUnit",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "install_fault_plan",
    "install_from_env",
    "installed_plan",
    "clear_fault_plan",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "CostLog",
    "metrics_export",
    "new_trace_id",
    "root_span_id",
    "SNAPSHOT_VERSION",
    "encode_snapshot",
    "dump_snapshot",
    "decode_snapshot",
    "restore_session",
    "save_snapshot",
    "read_snapshot",
    "snapshot_path",
    "canonical_dumps",
    "canonical_loads",
    "encode_expression",
    "decode_expression",
    "encode_pd",
    "decode_pd",
    "encode_fd",
    "decode_fd",
    "encode_fpd",
    "decode_fpd",
    "encode_universe",
    "decode_universe",
    "encode_partition",
    "decode_partition",
    "encode_scheme",
    "decode_scheme",
    "encode_relation",
    "decode_relation",
    "encode_database",
    "decode_database",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
    "request_cache_key",
    "request_id_hint",
    "error_result_for_line",
    "dump_request_line",
    "load_request_line",
    "dump_result_line",
    "load_result_line",
    "requests_to_jsonl",
]
