"""The shared result-cache tier and its consistent-hash shard ring.

Before this module the executor's repeat-query story was **per-worker LRU
islands**: each worker process owns a warm :class:`~repro.service.session.Session`
cache, so a repeat query only hits if the bin-packer happens to deal it to
the shard that answered it first.  Under multi-tenant Zipf-skewed traffic
that is the common case *not* happening — hot tenants' repeats spray across
shards and re-pay the kernel cost.

Two pieces fix it:

* :class:`SharedResultCache` — one parent-side LRU over
  :func:`repro.service.wire.request_cache_key` canonical bytes (tenant
  embedded, id/deadline excluded).  The parent consults it at plan time and
  answers hits without shipping the request to a worker at all; completed
  results are published back on reassembly, so *any* shard's computation
  warms the cache for *every* future shard.  Per-tenant hit/miss counters
  feed the server's stats surface, and :meth:`invalidate_tenant` mirrors the
  session's tenant-scoped Γ-growth eviction.  All operations take a lock —
  the micro-batcher's worker thread and control lines may race.
* :class:`ConsistentHashRing` — classic sha256 ring with virtual nodes.
  Cache-key misses are routed so the *same key always lands on the same
  shard*: a tenant's repeats develop shard affinity and the per-worker
  caches become a coherent second tier instead of independent islands.
  Virtual nodes keep the deal balanced (within a few percent for ≥64
  vnodes per shard) and adding/removing a shard only remaps the keys that
  must move.

Results are stored with ``id=None`` (the caller's id is re-stamped on hit)
and error results are never cached — exactly the session-cache contract, so
a shared-cache hit is byte-identical to recomputing.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import replace
from typing import Optional

from repro.errors import ServiceError
from repro.service.wire import QueryResult

__all__ = ["SharedResultCache", "ConsistentHashRing"]


class SharedResultCache:
    """A lock-protected LRU of wire results keyed on canonical request bytes."""

    def __init__(self, maxsize: int = 4096) -> None:
        self._maxsize = max(0, maxsize)
        self._lock = threading.Lock()
        # key -> (uses_tenant_gamma, tenant, result-without-caller-id)
        self._entries: "OrderedDict[str, tuple[bool, Optional[str], QueryResult]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._tenant_hits: dict[Optional[str], int] = {}
        self._tenant_misses: dict[Optional[str], int] = {}

    @property
    def enabled(self) -> bool:
        return self._maxsize > 0

    def lookup(
        self, key: str, request_id: Optional[str], tenant: Optional[str] = None
    ) -> Optional[QueryResult]:
        """The cached result re-stamped with the caller's id, or ``None``."""
        if not self._maxsize:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._tenant_hits[tenant] = self._tenant_hits.get(tenant, 0) + 1
                return replace(entry[2], id=request_id, cached=True)
            self._misses += 1
            self._tenant_misses[tenant] = self._tenant_misses.get(tenant, 0) + 1
            return None

    def store(
        self,
        key: str,
        result: QueryResult,
        tenant: Optional[str] = None,
        uses_tenant_gamma: bool = False,
    ) -> None:
        """Publish a computed result (error results are never cached)."""
        if not self._maxsize or not result.ok:
            return
        with self._lock:
            self._entries[key] = (uses_tenant_gamma, tenant, replace(result, id=None, cached=False))
            self._stores += 1
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_tenant(self, tenant: Optional[str]) -> int:
        """Drop the tenant's base-Γ entries (its Γ grew); returns the count dropped."""
        with self._lock:
            keep = OrderedDict(
                (key, entry)
                for key, entry in self._entries.items()
                if not (entry[0] and entry[1] == tenant)
            )
            dropped = len(self._entries) - len(keep)
            self._entries = keep
            return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        """Counters and per-tenant traffic, shaped for the stats surface."""
        from repro.service.session import tenant_label

        with self._lock:
            per_tenant = {}
            for tenant in set(self._tenant_hits) | set(self._tenant_misses):
                per_tenant[tenant_label(tenant)] = {
                    "hits": self._tenant_hits.get(tenant, 0),
                    "misses": self._tenant_misses.get(tenant, 0),
                }
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "per_tenant": per_tenant,
            }


class ConsistentHashRing:
    """A sha256 consistent-hash ring over integer shard ids with virtual nodes."""

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ServiceError(f"a hash ring needs at least one shard, got {shards}")
        self._shards = shards
        self._vnodes = max(1, vnodes)
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(self._vnodes):
                points.append((self._hash(f"shard:{shard}:vnode:{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    @property
    def shards(self) -> int:
        return self._shards

    def shard_for(self, key: str) -> int:
        """The shard owning a cache key: first vnode clockwise from its hash."""
        position = bisect_right(self._points, self._hash(key))
        if position == len(self._points):
            position = 0
        return self._owners[position]
