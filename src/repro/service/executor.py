"""The multiprocess shard executor: fan a request stream out across workers.

Python's decision kernels are CPU-bound and single-threaded, so horizontal
scale means processes.  :class:`ShardExecutor` partitions a stream across
``shards`` worker processes:

* **Transport is the wire format** — requests cross the process boundary as
  canonical JSONL strings and results come back the same way, so the worker
  boundary exercises exactly the codecs a networked deployment would (and
  the hash-consed AST re-interns per process via the parser, never by
  pickling live objects).
* **Per-worker session warm-up** — each worker builds one
  :class:`~repro.service.session.Session` over the executor's base Γ in its
  initializer (ALG engine constructed eagerly), then answers its whole shard
  through the batch planner.  Workers therefore amortize exactly like the
  in-process service; the executor adds parallelism on top.
* **Plan-aware sharding** — the parent plans the stream first
  (:func:`repro.service.planner.plan`) and deals *batch-aligned work units*
  to shards instead of dealing raw requests round-robin.  Amortization lives
  in the batches (one Γ closure per implication chunk, one normalization per
  consistency group); a round-robin deal would scatter every batch over
  every worker and re-pay each group's setup ``shards`` times — measured, it
  made 4 shards *slower* than one process.  Units are the planner's own
  amortization quanta (an implication chunk, a consistency group slice, a
  single CAD/quotient/counterexample request) and are bin-packed greedily by
  size, largest first, onto the least-loaded shard — deterministic, so the
  same stream always shards the same way.
* **Deterministic ordering** — every result is reassembled at the request's
  original stream position, so the output is byte-identical to the
  single-process planner run on the same stream, regardless of worker
  scheduling (``tests/test_service_executor.py`` asserts this).

The default start method is ``fork`` where available (cheap warm-up —
children inherit the parent's interned AST; safe since PR 5's
``os.register_at_fork`` hooks rebuild the weak intern tables and drop the
Whitman memo in the child) with ``spawn`` as the portable fallback.  The
pool is created lazily and kept alive across :meth:`execute` calls so
benchmark loops measure steady-state throughput; use the executor as a
context manager (or call :meth:`close`) to release the workers.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.errors import ServiceError
from repro.service.planner import IMPLICATION_CHUNK, plan
from repro.service.session import Session
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    dump_result_line,
    encode_pd,
    load_request_line,
    load_result_line,
)

# Worker-global session, installed once per worker process by _initialize_worker.
_WORKER_SESSION: Optional[Session] = None


def _initialize_worker(
    encoded_dependencies: list[str], snapshot_text: Optional[str] = None
) -> None:
    """Build this worker's warm session — from a snapshot when one is shipped.

    Without a snapshot the worker pays the Γ closure itself (the cold path).
    With one, it restores the parent's exported fixpoint instead: the
    snapshot text crosses the process boundary like any other wire payload,
    expressions re-intern through the parser in *this* process, and the
    worker starts warm without replaying Γ — the EXP-SNAP benchmark pins the
    difference.
    """
    global _WORKER_SESSION
    if snapshot_text is not None:
        from repro.service.snapshot import restore_session

        _WORKER_SESSION = restore_session(snapshot_text)
        return
    from repro.dependencies.pd import parse_pd_set

    _WORKER_SESSION = Session(parse_pd_set(encoded_dependencies))


def _execute_shard(payload: tuple[int, list[tuple[int, str]]]) -> tuple[int, list[tuple[int, str]]]:
    """Answer one shard: decode each request line, run the planner, encode results.

    The payload pairs every request line with its original stream index; the
    result list echoes those indices so the parent can reassemble the stream
    order without trusting shard completion order.
    """
    shard_index, lines = payload
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - initializer always runs first
        raise ServiceError("shard worker used before initialization")
    requests = [load_request_line(line) for _, line in lines]
    results = session.execute_many(requests, batch=True)
    encoded = [
        (original_index, dump_result_line(result))
        for (original_index, _), result in zip(lines, results)
    ]
    return shard_index, encoded


class ShardExecutor:
    """Execute request streams across a pool of warmed-up worker processes."""

    def __init__(
        self,
        shards: int = 2,
        dependencies: Iterable[PartitionDependencyLike] = (),
        start_method: Optional[str] = None,
        snapshot: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"shard count must be positive, got {shards}")
        self.shards = shards
        self._dependencies = [as_partition_dependency(pd) for pd in dependencies]
        if snapshot is not None:
            # Validate once in the parent — a corrupt or mismatched snapshot
            # should fail loudly at construction, not inside every worker.
            from repro.service.snapshot import decode_snapshot
            from repro.service.wire import decode_pd

            payload = decode_snapshot(snapshot)
            if self._dependencies:
                encoded = [encode_pd(pd) for pd in self._dependencies]
                if encoded != list(payload["dependencies"]):
                    raise ServiceError(
                        "snapshot Γ mismatch: the snapshot captures "
                        f"{payload['dependencies']!r} but the executor was "
                        f"configured with {encoded!r}"
                    )
            else:
                self._dependencies = [decode_pd(text) for text in payload["dependencies"]]
        self._snapshot = snapshot
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._start_method = start_method
        self._pool = None

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            encoded = [encode_pd(pd) for pd in self._dependencies]
            self._pool = context.Pool(
                processes=self.shards,
                initializer=_initialize_worker,
                initargs=(encoded, self._snapshot),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (a later :meth:`execute` re-creates it)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        self._ensure_pool()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sharding --------------------------------------------------------------

    def _work_units(self, requests: Sequence[QueryRequest]) -> list[list[int]]:
        """Batch-aligned work units: the planner's amortization quanta.

        Implication/equivalence batches split at the planner's own chunk
        size (each chunk shares one engine wherever it lands); consistency
        and FD-implication groups split into at most ``shards`` slices (one
        normalization / translated engine per slice); the per-request kinds
        (CAD, quotient, counterexample) split all the way down for balance.
        """
        units: list[list[int]] = []
        for batch in plan(requests):
            indices = list(batch.indices)
            if batch.kind in ("implies", "equivalent"):
                step = IMPLICATION_CHUNK
            elif batch.kind in ("consistent", "fd_implies") and batch.method != "cad":
                step = max(1, -(-len(indices) // self.shards))
            else:
                step = 1
            for start in range(0, len(indices), step):
                units.append(indices[start : start + step])
        return units

    def _assign_units(self, units: list[list[int]]) -> list[list[int]]:
        """Greedy deterministic bin-packing: largest unit first, least-loaded shard."""
        buckets: list[list[int]] = [[] for _ in range(self.shards)]
        loads = [0] * self.shards
        for unit in sorted(units, key=len, reverse=True):  # stable: ties keep plan order
            shard = loads.index(min(loads))
            buckets[shard].extend(unit)
            loads[shard] += len(unit)
        for bucket in buckets:
            bucket.sort()  # stream order within the shard
        return buckets

    # -- execution -------------------------------------------------------------

    def execute_encoded(
        self, lines: Sequence[str], requests: Optional[Sequence[QueryRequest]] = None
    ) -> list[str]:
        """Answer wire-encoded request lines; returns result lines in input order.

        This is the transport-level entry point the CLI uses — nothing but
        strings crosses the process boundary in either direction.  A caller
        that already decoded the stream (the CLI validates every line first)
        passes ``requests`` so the parent-side planning pass does not re-parse
        each line; the two sequences must be position-aligned.
        """
        if not lines:
            return []
        if requests is None:
            requests = [load_request_line(line) for line in lines]
        elif len(requests) != len(lines):
            raise ServiceError(
                f"{len(requests)} decoded requests for {len(lines)} encoded lines"
            )
        shard_lines: list[list[tuple[int, str]]] = [
            [(index, lines[index]) for index in bucket]
            for bucket in self._assign_units(self._work_units(requests))
        ]
        payloads = [
            (shard_index, chunk)
            for shard_index, chunk in enumerate(shard_lines)
            if chunk
        ]
        pool = self._ensure_pool()
        out: list[Optional[str]] = [None] * len(lines)
        for _, encoded in pool.map(_execute_shard, payloads):
            for original_index, line in encoded:
                out[original_index] = line
        missing = [i for i, line in enumerate(out) if line is None]
        if missing:  # pragma: no cover - reassembly invariant
            raise ServiceError(f"shard executor lost results for requests {missing[:5]}")
        return out  # type: ignore[return-value]

    def execute(self, requests: Sequence[QueryRequest]) -> list[QueryResult]:
        """Answer decoded requests; convenience wrapper over :meth:`execute_encoded`."""
        from repro.service.wire import dump_request_line

        lines = [dump_request_line(request) for request in requests]
        return [load_result_line(line) for line in self.execute_encoded(lines)]
