"""The multiprocess shard executor: fan a request stream out across workers.

Python's decision kernels are CPU-bound and single-threaded, so horizontal
scale means processes.  :class:`ShardExecutor` partitions a stream across
``shards`` supervised worker processes:

* **Transport is the wire format** — requests cross the process boundary as
  canonical JSONL strings and results come back the same way, so the worker
  boundary exercises exactly the codecs a networked deployment would (and
  the hash-consed AST re-interns per process via the parser, never by
  pickling live objects).
* **Per-worker session warm-up** — each worker builds one
  :class:`~repro.service.session.Session` over the executor's base Γ (or
  restores the configured snapshot), then answers its units through the
  batch planner.  Workers therefore amortize exactly like the in-process
  service; the executor adds parallelism on top.
* **Plan-aware sharding** — the parent plans the stream first
  (:func:`repro.service.planner.plan`) and deals *batch-aligned work units*
  instead of raw requests round-robin.  Amortization lives in the batches
  (one Γ closure per implication chunk, one normalization per consistency
  group); a round-robin deal would scatter every batch over every worker
  and re-pay each group's setup ``shards`` times — measured, it made 4
  shards *slower* than one process.  Units are the planner's own
  amortization quanta and are dealt dynamically, largest first, to whichever
  worker is idle.
* **Supervision, not hope** — the unit loop lives in
  :class:`~repro.service.supervisor.SupervisedPool`: a crashed worker is
  restarted (warm, when a snapshot is configured), its unit retried, split
  and at worst quarantined to a single typed ``WorkerCrashed`` error line;
  budget-carrying units get a hard wall-clock kill surfacing as typed
  ``Timeout`` results.  :meth:`supervision_stats` exposes the counters the
  server's health endpoint and circuit breaker read.
* **Deterministic ordering** — every result is reassembled at the request's
  original stream position, so a fault-free run is byte-identical to the
  single-process planner run on the same stream, regardless of worker
  scheduling (``tests/test_service_executor.py`` asserts this).

The default start method is ``fork`` where available (cheap warm-up —
children inherit the parent's interned AST; safe since PR 5's
``os.register_at_fork`` hooks rebuild the weak intern tables and drop the
Whitman memo in the child) with ``spawn`` as the portable fallback.  The
pool is created lazily and kept alive across :meth:`execute` calls so
benchmark loops measure steady-state throughput; use the executor as a
context manager (or call :meth:`close`, which shuts workers down
*gracefully* — in-flight units finish, terminate is the fallback).
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.errors import ServiceError
from repro.service.planner import IMPLICATION_CHUNK, plan
from repro.service.result_cache import ConsistentHashRing, SharedResultCache
from repro.service.session import Session
from repro.service.supervisor import SupervisedPool, SupervisorStats, WorkItem, WorkUnit
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    dump_result_line,
    encode_pd,
    error_result_for_line,
    load_request_line,
    load_result_line,
    request_cache_key,
)

# Worker-global session for the plain-Pool baseline below.
_WORKER_SESSION: Optional[Session] = None


def _initialize_worker(
    encoded_dependencies: list[str], snapshot_text: Optional[str] = None
) -> None:
    """Build a pool worker's warm session — from a snapshot when one is shipped.

    This is the initializer of the *unsupervised* ``multiprocessing.Pool``
    baseline (:func:`pool_map_encoded`), kept as the reference point the
    EXP-FLT benchmark measures supervision overhead against.
    """
    global _WORKER_SESSION
    if snapshot_text is not None:
        from repro.service.snapshot import restore_session

        _WORKER_SESSION = restore_session(snapshot_text)
        return
    from repro.dependencies.pd import parse_pd_set

    _WORKER_SESSION = Session(parse_pd_set(encoded_dependencies))


def _execute_shard(payload: tuple[int, list[tuple[int, str]]]) -> tuple[int, list[tuple[int, str]]]:
    """Answer one shard of the ``Pool`` baseline: decode, plan, encode."""
    shard_index, lines = payload
    session = _WORKER_SESSION
    if session is None:  # pragma: no cover - initializer always runs first
        raise ServiceError("shard worker used before initialization")
    requests = [load_request_line(line) for _, line in lines]
    results = session.execute_many(requests, batch=True)
    encoded = [
        (original_index, dump_result_line(result))
        for (original_index, _), result in zip(lines, results)
    ]
    return shard_index, encoded


class ShardExecutor:
    """Execute request streams across a supervised pool of warm worker processes."""

    def __init__(
        self,
        shards: int = 2,
        dependencies: Iterable[PartitionDependencyLike] = (),
        start_method: Optional[str] = None,
        snapshot: Optional[str] = None,
        fault_plan: Optional[str] = None,
        unit_timeout_ms: Optional[float] = None,
        deadline_grace_ms: float = 2000.0,
        max_unit_attempts: int = 2,
        shared_cache_size: int = 4096,
        worker_cache_size: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"shard count must be positive, got {shards}")
        if max_unit_attempts < 1:
            raise ServiceError(f"max_unit_attempts must be positive, got {max_unit_attempts}")
        self.shards = shards
        # The shared tier-0 result cache and its routing ring.  With
        # shared_cache_size=0 both are off and dispatch is exactly the
        # pre-tenancy behaviour (the per-worker-island baseline EXP-TEN
        # measures against).
        self._shared_cache = SharedResultCache(shared_cache_size)
        self._ring = ConsistentHashRing(shards) if shared_cache_size > 0 else None
        self._worker_cache_size = worker_cache_size
        self._dependencies = [as_partition_dependency(pd) for pd in dependencies]
        if snapshot is not None:
            # Validate once in the parent — a corrupt or mismatched snapshot
            # should fail loudly at construction, not inside every worker.
            from repro.service.snapshot import decode_snapshot
            from repro.service.wire import decode_pd

            payload = decode_snapshot(snapshot)
            if self._dependencies:
                encoded = [encode_pd(pd) for pd in self._dependencies]
                if encoded != list(payload["dependencies"]):
                    raise ServiceError(
                        "snapshot Γ mismatch: the snapshot captures "
                        f"{payload['dependencies']!r} but the executor was "
                        f"configured with {encoded!r}"
                    )
            else:
                self._dependencies = [decode_pd(text) for text in payload["dependencies"]]
        self._snapshot = snapshot
        self._fault_plan = fault_plan
        self._unit_timeout_ms = unit_timeout_ms
        self._deadline_grace_ms = deadline_grace_ms
        self._max_unit_attempts = max_unit_attempts
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._start_method = start_method
        self._pool: Optional[SupervisedPool] = None
        self._final_stats: Optional[SupervisorStats] = None

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> SupervisedPool:
        if self._pool is None:
            self._pool = SupervisedPool(
                workers=self.shards,
                encoded_dependencies=[encode_pd(pd) for pd in self._dependencies],
                snapshot=self._snapshot,
                start_method=self._start_method,
                fault_plan_json=self._fault_plan,
                unit_timeout_ms=self._unit_timeout_ms,
                deadline_grace_ms=self._deadline_grace_ms,
                worker_cache_size=self._worker_cache_size,
            )
        return self._pool

    def close(self, timeout: float = 5.0) -> None:
        """Gracefully shut the workers down (a later :meth:`execute` re-creates them).

        Workers finish whatever unit they hold and exit on the shutdown
        sentinel; only a worker that outlives ``timeout`` is terminated.
        """
        if self._pool is not None:
            self._final_stats = self._pool.stats
            self._pool.close(timeout=timeout)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        self._ensure_pool()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def supervision_stats(self) -> dict:
        """The supervisor's counters (live pool, or the last closed pool's)."""
        if self._pool is not None:
            return self._pool.stats.as_dict()
        if self._final_stats is not None:
            return self._final_stats.as_dict()
        return SupervisorStats().as_dict()

    def shared_cache_info(self) -> dict:
        """The tier-0 shared cache's counters plus the routing-ring shape."""
        info = self._shared_cache.info()
        info["ring_shards"] = self._ring.shards if self._ring is not None else 0
        return info

    def invalidate_tenant(self, tenant: Optional[str] = None) -> int:
        """Drop a tenant's base-Γ entries from the shared tier (Γ-growth hook)."""
        return self._shared_cache.invalidate_tenant(tenant)

    # -- sharding --------------------------------------------------------------

    def _work_units(self, requests: Sequence[QueryRequest]) -> list[list[int]]:
        """Batch-aligned work units: the planner's amortization quanta.

        Implication/equivalence batches split at the planner's own chunk
        size (each chunk shares one engine wherever it lands); consistency
        and FD-implication groups split into at most ``shards`` slices (one
        normalization / translated engine per slice); the per-request kinds
        (CAD, quotient, counterexample) and every deadline-carrying batch
        split all the way down — a budgeted request must be its own unit so
        a hard kill takes nobody else with it.
        """
        units: list[list[int]] = []
        for batch in plan(requests):
            indices = list(batch.indices)
            if batch.deadline:
                step = 1
            elif batch.kind in ("implies", "equivalent"):
                step = IMPLICATION_CHUNK
            elif batch.kind in ("consistent", "fd_implies") and batch.method != "cad":
                step = max(1, -(-len(indices) // self.shards))
            else:
                step = 1
            for start in range(0, len(indices), step):
                units.append(indices[start : start + step])
        return units

    # -- execution -------------------------------------------------------------

    def execute_encoded(
        self, lines: Sequence[str], requests: Optional[Sequence[QueryRequest]] = None
    ) -> list[str]:
        """Answer wire-encoded request lines; returns result lines in input order.

        This is the transport-level entry point the CLI uses — nothing but
        strings crosses the process boundary in either direction.  A caller
        that already decoded the stream (the CLI validates every line first)
        passes ``requests`` so the parent-side planning pass does not re-parse
        each line; the two sequences must be position-aligned.  When the
        executor decodes the stream itself, an undecodable line becomes an
        in-place error result and the rest of the stream still computes.
        """
        if not lines:
            return []
        out: list[Optional[str]] = [None] * len(lines)
        if requests is None:
            decoded: list[QueryRequest] = []
            index_map: list[int] = []
            for position, line in enumerate(lines):
                try:
                    decoded.append(load_request_line(line))
                    index_map.append(position)
                except Exception as exc:  # isolate the bad line
                    out[position] = dump_result_line(
                        error_result_for_line(line, position + 1, exc)
                    )
            requests = decoded
        elif len(requests) != len(lines):
            raise ServiceError(
                f"{len(requests)} decoded requests for {len(lines)} encoded lines"
            )
        else:
            index_map = list(range(len(lines)))
        # Tier-0 probe: answer shared-cache hits parent-side, before any unit
        # is formed — a hit never crosses a process boundary at all.  The
        # canonical keys double as the ring's routing keys for the misses.
        keys: dict[int, str] = {}
        parent_hits: set[int] = set()
        if self._shared_cache.enabled:
            for i, request in enumerate(requests):
                key = request_cache_key(request)
                keys[i] = key
                hit = self._shared_cache.lookup(key, request.id, request.tenant)
                if hit is not None:
                    out[index_map[i]] = dump_result_line(hit)
                    parent_hits.add(i)
        units = [
            WorkUnit(
                items=tuple(
                    WorkItem(
                        index=index_map[i],
                        line=lines[index_map[i]],
                        request_id=requests[i].id,
                        kind=requests[i].kind,
                        deadline_ms=requests[i].deadline_ms,
                        trace=requests[i].trace,
                    )
                    for i in unit_indices
                ),
                attempts_left=self._max_unit_attempts,
                preferred=preferred,
            )
            for unit_indices, preferred in self._routed_units(requests, keys, out, index_map)
        ]
        if units:
            pool = self._ensure_pool()
            for original_index, line in pool.run_units(units).items():
                out[original_index] = line
        if self._shared_cache.enabled:
            self._publish(requests, keys, out, index_map, parent_hits)
        missing = [i for i, line in enumerate(out) if line is None]
        if missing:  # pragma: no cover - reassembly invariant
            raise ServiceError(f"shard executor lost results for requests {missing[:5]}")
        return out  # type: ignore[return-value]

    def _routed_units(
        self,
        requests: Sequence[QueryRequest],
        keys: dict[int, str],
        out: list[Optional[str]],
        index_map: list[int],
    ) -> list[tuple[list[int], Optional[int]]]:
        """Work units annotated with their consistent-hash shard affinity.

        With the shared cache off this is the legacy deal (no affinity).
        With it on, indices already answered from the cache drop out, and
        each surviving unit is partitioned along the ring so every miss
        lands on the shard that owns its cache key — the worker whose
        session cache the key will warm (and hit, next time the bin-packer
        deals it anywhere).  Partitions inherit the unit's amortization
        (same planner group, same Γ), just sliced by key ownership.
        """
        units = self._work_units(requests)
        if self._ring is None:
            return [(unit, None) for unit in units]
        routed: list[tuple[list[int], Optional[int]]] = []
        for unit in units:
            pending = [i for i in unit if out[index_map[i]] is None]
            if not pending:
                continue
            by_shard: dict[int, list[int]] = {}
            for i in pending:
                by_shard.setdefault(self._ring.shard_for(keys[i]), []).append(i)
            routed.extend((by_shard[shard], shard) for shard in sorted(by_shard))
        return routed

    def _publish(
        self,
        requests: Sequence[QueryRequest],
        keys: dict[int, str],
        out: list[Optional[str]],
        index_map: list[int],
        parent_hits: set[int],
    ) -> None:
        """Publish computed miss results into the shared tier on reassembly.

        Any shard's computation warms the cache for every future caller —
        this is the step that turns per-worker islands into tier 1 of one
        coherent cache.  Error results (timeouts, quarantines, kernel
        failures) are never published, matching the session-cache contract.
        """
        for i, request in enumerate(requests):
            if i in parent_hits:
                continue
            line = out[index_map[i]]
            if line is None:
                continue
            try:
                result = load_result_line(line)
            except Exception:  # pragma: no cover - supervisor already validated
                continue
            if not result.ok:
                continue
            self._shared_cache.store(
                keys[i],
                result,
                tenant=request.tenant,
                uses_tenant_gamma=request.dependencies is None and request.kind != "fd_implies",
            )

    def execute(self, requests: Sequence[QueryRequest]) -> list[QueryResult]:
        """Answer decoded requests; convenience wrapper over :meth:`execute_encoded`."""
        from repro.service.wire import dump_request_line

        lines = [dump_request_line(request) for request in requests]
        return [load_result_line(line) for line in self.execute_encoded(lines, requests=requests)]


def pool_map_encoded(
    lines: Sequence[str],
    shards: int = 2,
    dependencies: Iterable[PartitionDependencyLike] = (),
    start_method: Optional[str] = None,
    snapshot: Optional[str] = None,
) -> list[str]:
    """The PR 7 ``multiprocessing.Pool`` execution path, kept as a baseline.

    No supervision, no deadlines, no fault isolation: one static greedy deal,
    one ``pool.map``.  The EXP-FLT benchmark runs this against the supervised
    executor to assert the supervision overhead stays under its budget.
    """
    if not lines:
        return []
    pds = [as_partition_dependency(pd) for pd in dependencies]
    requests = [load_request_line(line) for line in lines]
    helper = ShardExecutor(shards=shards, dependencies=pds)
    units = helper._work_units(requests)
    buckets: list[list[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for unit in sorted(units, key=len, reverse=True):  # stable: ties keep plan order
        shard = loads.index(min(loads))
        buckets[shard].extend(unit)
        loads[shard] += len(unit)
    for bucket in buckets:
        bucket.sort()
    if start_method is None:
        available = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in available else "spawn"
    context = multiprocessing.get_context(start_method)
    encoded = [encode_pd(pd) for pd in pds]
    payloads = [
        (shard_index, [(index, lines[index]) for index in bucket])
        for shard_index, bucket in enumerate(buckets)
        if bucket
    ]
    out: list[Optional[str]] = [None] * len(lines)
    with context.Pool(
        processes=shards, initializer=_initialize_worker, initargs=(encoded, snapshot)
    ) as pool:
        for _, chunk in pool.map(_execute_shard, payloads):
            for original_index, line in chunk:
                out[original_index] = line
    missing = [i for i, line in enumerate(out) if line is None]
    if missing:  # pragma: no cover - reassembly invariant
        raise ServiceError(f"pool baseline lost results for requests {missing[:5]}")
    return out  # type: ignore[return-value]
