"""``python -m repro.service`` — serve a JSONL request stream from a file or stdin.

Each input line is one wire-encoded :class:`~repro.service.wire.QueryRequest`
(see that module for the format); each output line is the matching
wire-encoded result, in input order.  Blank lines are ignored.  A malformed
line becomes an ``ok=false`` result at its position — the stream always gets
exactly one answer per request, and the exit code is 0 unless the service
itself could not run.

Dispatch modes:

* default — one in-process :class:`~repro.service.session.Session` driven
  through the batch planner;
* ``--no-batch`` — the naive one-at-a-time baseline (fresh engines per
  request; what EXP-SVC compares the planner against);
* ``--shards N`` (N ≥ 2) — the multiprocess
  :class:`~repro.service.executor.ShardExecutor`.

All three produce byte-identical output for the same stream
(``tests/test_service_cli.py`` pins this end-to-end on a 200-request mix).

Session dependencies (the base Γ for requests that do not carry their own)
are given with ``--dependencies "A = A*B; B = B*C"`` or per line in the
requests themselves.  ``--stats`` prints a one-line summary to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from typing import Optional, TextIO

from repro.dependencies.pd import PartitionDependency, parse_pd_set
from repro.errors import ServiceError
from repro.service.executor import ShardExecutor
from repro.service.planner import naive_dispatch, plan_summary
from repro.service.session import Session
from repro.service.wire import (
    QueryResult,
    dump_result_line,
    load_request_line,
)


def _parse_dependencies(text: Optional[str]) -> list[PartitionDependency]:
    if not text:
        return []
    return parse_pd_set(part for part in text.split(";") if part.strip())


def _read_numbered_lines(stream: TextIO) -> list[tuple[int, str]]:
    """Non-blank lines paired with their 1-based position in the *file*."""
    return [(number, line.strip()) for number, line in enumerate(stream, 1) if line.strip()]


def _error_result(line_number: int, exc: Exception) -> str:
    result = QueryResult(
        kind="invalid",
        ok=False,
        id=f"line{line_number}",
        error={"type": type(exc).__name__, "message": str(exc)},
    )
    return dump_result_line(result)


def serve_lines(
    lines: Sequence,
    dependencies: Sequence[PartitionDependency] = (),
    shards: int = 1,
    batch: bool = True,
    with_plan: bool = False,
) -> tuple[list[str], dict]:
    """Answer request lines; returns (result lines in input order, stats dict).

    ``lines`` holds either bare request strings (numbered from 1) or
    ``(file_line_number, text)`` pairs, so error results name the line of the
    *original file* even when blank lines were skipped.  Each line is decoded
    exactly once: undecodable lines become structured error results in place,
    and the decoded remainder is served by the selected mode.
    """
    numbered = [
        (position + 1, line) if isinstance(line, str) else line
        for position, line in enumerate(lines)
    ]
    out: list[Optional[str]] = [None] * len(numbered)
    decoded: list[tuple[int, str]] = []  # (stream position, original text)
    requests = []
    for position, (line_number, text) in enumerate(numbered):
        try:
            requests.append(load_request_line(text))
        except ServiceError as exc:
            out[position] = _error_result(line_number, exc)
        else:
            decoded.append((position, text))

    started = time.perf_counter()
    if shards > 1:
        if not batch:
            raise ServiceError(
                "batch=False (the naive baseline) cannot be combined with shards > 1: "
                "workers always dispatch through the batch planner"
            )
        with ShardExecutor(shards=shards, dependencies=dependencies) as executor:
            answered = executor.execute_encoded([text for _, text in decoded], requests=requests)
    elif batch:
        answered = [dump_result_line(r) for r in Session(dependencies).execute_many(requests)]
    else:
        answered = [dump_result_line(r) for r in naive_dispatch(requests, dependencies)]
    elapsed = time.perf_counter() - started

    if len(answered) != len(decoded):  # loud, not misaligned
        raise ServiceError(
            f"dispatcher answered {len(answered)} of {len(decoded)} decoded requests"
        )
    for (position, _), line in zip(decoded, answered):
        out[position] = line
    stats = {
        "requests": len(numbered),
        "invalid": len(numbered) - len(decoded),
        "elapsed_seconds": elapsed,
        "mode": f"shards={shards}" if shards > 1 else ("planner" if batch else "naive"),
    }
    # Re-planning the stream just to describe it is not free; only do it
    # when the caller will actually print the stats.
    if with_plan and requests and shards <= 1:
        stats["plan"] = plan_summary(requests)
    return out, stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Answer a JSONL stream of partition-semantics queries.",
    )
    parser.add_argument(
        "input",
        nargs="?",
        default="-",
        help="request file (JSONL), or '-' for stdin (default)",
    )
    parser.add_argument("-o", "--output", default="-", help="result file, or '-' for stdout")
    parser.add_argument(
        "-d",
        "--dependencies",
        default="",
        help="base Γ for the session: semicolon-separated PDs, e.g. 'A = A*B; C = A + B'",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of worker processes (1 = in-process; default 1)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the planner and dispatch one request at a time (baseline mode)",
    )
    parser.add_argument("--stats", action="store_true", help="print a summary line to stderr")
    args = parser.parse_args(argv)

    try:
        dependencies = _parse_dependencies(args.dependencies)
    except Exception as exc:
        print(f"error: cannot parse --dependencies: {exc}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.no_batch:
        print(
            "error: --no-batch (naive one-at-a-time baseline) cannot be combined with "
            "--shards; workers always dispatch through the batch planner",
            file=sys.stderr,
        )
        return 2

    if args.input == "-":
        lines = _read_numbered_lines(sys.stdin)
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                lines = _read_numbered_lines(handle)
        except OSError as exc:
            print(f"error: cannot read {args.input!r}: {exc}", file=sys.stderr)
            return 2

    result_lines, stats = serve_lines(
        lines, dependencies, shards=args.shards, batch=not args.no_batch, with_plan=args.stats
    )

    text = "".join(line + "\n" for line in result_lines)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}", file=sys.stderr)
            return 2

    if args.stats:
        print(f"repro.service stats: {stats}", file=sys.stderr)
    return 0
