"""``python -m repro.service`` — serve a JSONL request stream, batch or continuous.

Two modes share one wire format and one :class:`~repro.service.config.ServiceConfig`:

* **file mode** (default): ``python -m repro.service [FILE|-]`` answers a
  pre-collected stream from a file or stdin, one wire-encoded
  :class:`~repro.service.wire.QueryRequest` per line, one result line out,
  in input order.  ``--no-batch`` selects the naive one-at-a-time baseline,
  ``--shards N`` the multiprocess executor; all dispatch modes produce
  byte-identical output (``tests/test_service_cli.py`` pins this end-to-end
  on a 200-request mix).
* **serve mode**: ``python -m repro.service serve`` starts the asyncio
  socket server (:mod:`repro.service.server`) speaking the same JSONL
  protocol continuously, with micro-batch windows (``--max-wait-ms``,
  ``--max-batch``), bounded-queue backpressure (``--queue-limit``,
  ``--overload block|shed``) and graceful drain on SIGINT/SIGTERM.  The
  bound address is announced on stderr (``--port 0`` picks an ephemeral
  port); ``--stats`` prints the latency/window statistics on shutdown.

A malformed line becomes an ``ok=false`` result at its position — the stream
always gets exactly one answer per request.  Error results echo the
request's own ``id`` whenever the line parsed far enough to carry one, and
fall back to the file line number (``"lineN"``) only for unparseable lines.

Session dependencies (the base Γ for requests that do not carry their own)
are given with ``--dependencies "A = A*B; B = B*C"`` in either mode.

``--trace`` (either mode) mints a trace id per request and records per-stage
spans; ``--metrics-dir DIR`` dumps spans, per-work-unit cost records and the
metrics registry as JSONL into ``DIR``.  Result lines are byte-identical
with and without telemetry (see :mod:`repro.service.telemetry`).

``--snapshot-dir DIR`` (either mode) makes the boot *zero-warmup*: when
``DIR/session.snapshot.json`` exists the session (or every shard worker) is
restored from it instead of replaying the Γ closure, and a fresh snapshot is
saved after the stream (file mode, planner dispatch) or on drain (serve
mode).  A live server can also be snapshotted with the
``{"control": "snapshot"}`` line.  See :mod:`repro.service.snapshot`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import time
from collections.abc import Sequence
from typing import Optional, TextIO

from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.service.config import ServiceConfig, add_config_arguments, config_from_args
from repro.service.planner import naive_dispatch, plan_summary
from repro.service.wire import (
    canonical_dumps,
    dump_request_line,
    dump_result_line,
    error_result_for_line,
    load_request_line,
    load_result_line,
)


def _read_numbered_lines(stream: TextIO) -> list[tuple[int, str]]:
    """Non-blank lines paired with their 1-based position in the *file*."""
    return [(number, line.strip()) for number, line in enumerate(stream, 1) if line.strip()]


def serve_lines(
    lines: Sequence,
    dependencies: Sequence[PartitionDependency] = (),
    shards: int = 1,
    batch: bool = True,
    with_plan: bool = False,
    config: Optional[ServiceConfig] = None,
) -> tuple[list[str], dict]:
    """Answer request lines; returns (result lines in input order, stats dict).

    ``lines`` holds either bare request strings (numbered from 1) or
    ``(file_line_number, text)`` pairs, so error results name the line of the
    *original file* even when blank lines were skipped.  Each line is decoded
    exactly once: undecodable lines become structured error results in place
    (echoing the request id when one parsed), and the decoded remainder is
    served by the selected mode.  A :class:`~repro.service.config.ServiceConfig`
    supersedes the individual keyword arguments.
    """
    if config is None:
        config = ServiceConfig(dependencies=tuple(dependencies), shards=shards, batch=batch)
    numbered = [
        (position + 1, line) if isinstance(line, str) else line
        for position, line in enumerate(lines)
    ]
    out: list[Optional[str]] = [None] * len(numbered)
    decoded: list[tuple[int, str]] = []  # (stream position, original text)
    requests = []
    for position, (line_number, text) in enumerate(numbered):
        try:
            requests.append(load_request_line(text))
        except ServiceError as exc:
            out[position] = dump_result_line(error_result_for_line(text, line_number, exc))
        else:
            decoded.append((position, text))

    # Arm the deterministic chaos hooks exactly like the server does: an
    # explicit --fault-plan wins, else the REPRO_FAULT_PLAN environment hook.
    from repro.service import faults

    if config.fault_plan is not None:
        faults.install_fault_plan(config.fault_plan)
    else:
        faults.install_from_env()

    from repro.service import telemetry

    telemetry.configure(
        trace=config.trace,
        metrics_dir=config.metrics_dir,
        interval_ms=config.metrics_interval_ms,
    )
    if telemetry.enabled():
        # Stamp a trace id on every decoded request (preserving any the wire
        # carried).  With telemetry off the original requests and line text
        # are reused untouched — the traced and untraced paths must not
        # diverge on anything but the trace ids themselves.
        requests = [telemetry.ensure_trace(request) for request in requests]

    admitted_at = time.time()
    started = time.perf_counter()
    session = None
    if config.shards > 1:
        # The sharded path ships encoded lines; re-encode only when tracing
        # stamped new ids into them (workers must see the same ids).
        encoded = (
            [dump_request_line(request) for request in requests]
            if telemetry.enabled()
            else [text for _, text in decoded]
        )
        with config.make_executor() as executor:
            answered = executor.execute_encoded(encoded, requests=requests)
    elif config.batch:
        # make_session() restores from --snapshot-dir when a snapshot exists,
        # so a warm previous run makes this one boot without replaying Γ.
        session = config.make_session()
        answered = [dump_result_line(r) for r in session.execute_many(requests)]
    else:
        answered = [dump_result_line(r) for r in naive_dispatch(requests, config.dependencies)]
    elapsed = time.perf_counter() - started
    executed_at = time.time()

    if len(answered) != len(decoded):  # loud, not misaligned
        raise ServiceError(
            f"dispatcher answered {len(answered)} of {len(decoded)} decoded requests"
        )
    for (position, _), line in zip(decoded, answered):
        out[position] = line
    if telemetry.enabled():
        # One retrospective root span (plan/execute/respond children) per
        # decoded request — file mode has no micro-batch ticket to cut the
        # stages from, so the whole-stream dispatch timestamps stand in.
        responded_at = time.time()
        for request, line in zip(requests, answered):
            try:
                result = load_result_line(line)
            except ServiceError:
                continue
            telemetry.record_request_tree(
                request,
                result,
                admitted_at=admitted_at,
                planned_at=admitted_at,
                executed_at=executed_at,
                responded_at=responded_at,
            )
        if config.metrics_dir is not None:
            telemetry.registry().gauge("service.elapsed_seconds", elapsed)
            telemetry.flush()
    stats = {
        "requests": len(numbered),
        "invalid": len(numbered) - len(decoded),
        "elapsed_seconds": elapsed,
        "mode": f"shards={config.shards}"
        if config.shards > 1
        else ("planner" if config.batch else "naive"),
    }
    # Re-planning the stream just to describe it is not free; only do it
    # when the caller will actually print the stats.
    if with_plan and requests and config.shards <= 1:
        stats["plan"] = plan_summary(requests)
    if config.snapshot_dir is not None and session is not None:
        from repro.service.snapshot import save_snapshot

        stats["snapshot"] = str(save_snapshot(session, config.snapshot_dir))
    return out, stats


def batch_main(argv: Sequence[str]) -> int:
    """The file/stdin mode (the original CLI surface)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Answer a JSONL stream of partition-semantics queries "
        "(or run 'serve' for the continuous socket server).",
    )
    parser.add_argument(
        "input",
        nargs="?",
        default="-",
        help="request file (JSONL), or '-' for stdin (default)",
    )
    parser.add_argument("-o", "--output", default="-", help="result file, or '-' for stdout")
    add_config_arguments(parser, serve=False)
    args = parser.parse_args(argv)

    try:
        config = config_from_args(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.input == "-":
        lines = _read_numbered_lines(sys.stdin)
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                lines = _read_numbered_lines(handle)
        except OSError as exc:
            print(f"error: cannot read {args.input!r}: {exc}", file=sys.stderr)
            return 2

    result_lines, stats = serve_lines(lines, config=config, with_plan=config.stats)

    text = "".join(line + "\n" for line in result_lines)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}", file=sys.stderr)
            return 2

    if config.stats:
        print(f"repro.service stats: {stats}", file=sys.stderr)
    return 0


async def _serve(config: ServiceConfig) -> None:
    """Run the socket server until SIGINT/SIGTERM, then drain gracefully."""
    from repro.service.server import QueryServer

    server = QueryServer(config)
    host, port = await server.start()
    print(f"repro.service serving on {host}:{port}", file=sys.stderr, flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        print("repro.service draining...", file=sys.stderr, flush=True)
        await server.drain()
        if config.stats:
            print(
                f"repro.service stats: {canonical_dumps(server.stats_snapshot())}",
                file=sys.stderr,
                flush=True,
            )


def serve_main(argv: Sequence[str]) -> int:
    """The continuous serve mode (``python -m repro.service serve``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="Continuously serve partition-semantics queries over a socket "
        "(JSONL in, JSONL out, micro-batched).",
    )
    add_config_arguments(parser, serve=True)
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    return batch_main(argv)
