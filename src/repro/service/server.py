"""The always-on front door: an asyncio socket server over the micro-batcher.

``python -m repro.service serve`` turns the batch pipeline of PR 5 into a
continuously serving process.  The protocol is exactly the file CLI's JSONL
wire format — one :class:`~repro.service.wire.QueryRequest` per line in, one
result line out — so anything that could be piped into the CLI can be
streamed over a socket instead, and the answers are **byte-identical**
(``tests/test_service_server.py`` pins this on the 200-request acceptance
stream, including under 8 concurrent connections).

Shape of the thing:

* every connection gets a **reader loop** (decode lines, admit requests into
  the shared :class:`~repro.service.microbatch.MicroBatcher`) and a **writer
  loop** (emit answers strictly in that connection's request order, awaiting
  each ticket in turn) — per-connection ordering is preserved while the
  batcher windows requests *across* connections, which is where the
  planner's group-by amortization comes back under live load;
* **backpressure** is physical: the batcher's admission queue is bounded, so
  under the ``block`` policy a full queue suspends the reader coroutine,
  the socket stops being read and TCP pushes back on the client.  Under
  ``shed`` the client instead receives a well-formed ``ok=false`` result
  with error type ``"Overloaded"``;
* **control lines** — ``{"control": "stats"}`` answers with the latency
  percentiles (p50/p95/p99 per stage), window-occupancy statistics and the
  session's cache diagnostics, ``{"control": "ping"}`` answers
  ``{"control": "pong"}``, ``{"control": "health"}`` reports the circuit
  breaker, supervision counters (crashes/restarts/quarantines/timeouts,
  warm-restart latency, per-worker restart counts) and request totals,
  ``{"control": "metrics"}`` serves the unified telemetry registry
  (:mod:`~repro.service.telemetry`), and ``{"control": "snapshot"}`` exports
  a durable Γ snapshot of the *live* session into ``--snapshot-dir`` (the
  export runs on the window worker thread, so it never races a mutating
  window); all are served in-order like any other line;
* **observability** — with ``--trace`` or ``--metrics-dir`` the server mints
  a trace id per request at decode (or propagates the wire ``trace`` field),
  opens a root span, and emits ``plan``/``execute``/``respond`` children
  retrospectively from the ticket's stage stamps when the answer is written;
  ``--metrics-dir`` additionally dumps spans, cost records and metrics
  snapshots to JSONL files on a periodic flush task (and once at drain);
* **graceful degradation** — with a sharded backend, repeated worker crashes
  (``breaker_threshold`` of them) trip a circuit breaker: the executor is
  closed and the server falls back to in-process execution, answering every
  subsequent request itself rather than feeding a crash loop;
* **graceful drain** — :meth:`QueryServer.drain` stops accepting
  connections, stops reading new lines, then answers every request already
  admitted before shutting the batcher down: accepted requests always get
  answers;
* undecodable lines become structured error results in place, echoing the
  request ``id`` whenever the line parsed far enough to carry one
  (:func:`~repro.service.wire.error_result_for_line`).

The compute backend follows :class:`~repro.service.config.ServiceConfig`:
one in-process :class:`~repro.service.session.Session` by default, the
multiprocess :class:`~repro.service.executor.ShardExecutor` for
``shards > 1`` (its worker pool is created eagerly at :meth:`start`, before
any serving thread exists).
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.errors import ServiceError
from repro.service import telemetry
from repro.service.config import ServiceConfig
from repro.service.microbatch import MicroBatcher, Ticket
from repro.service.session import Session
from repro.service.wire import (
    canonical_dumps,
    canonical_loads,
    decode_request,
    dump_result_line,
    error_result_for_line,
)

#: Writer-queue sentinel: the reader is done, flush and close.
_END = object()


class QueryServer:
    """One listening socket, one shared micro-batcher, many ordered connections."""

    def __init__(self, config: Optional[ServiceConfig] = None, session: Optional[Session] = None) -> None:
        self.config = config or ServiceConfig()
        self._session = session
        self._executor = None
        self._breaker_tripped = False
        self._supervision_final: Optional[dict] = None
        self._batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._metrics_task: Optional[asyncio.Task] = None
        self._drain_event = asyncio.Event()
        self._drained = False
        self._connections_served = 0
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)`` (port 0 → ephemeral)."""
        if self._server is not None:
            raise ServiceError("server is already started")
        config = self.config
        from repro.service import faults

        if config.fault_plan is not None:
            faults.install_fault_plan(config.fault_plan)
        else:
            faults.install_from_env()
        # Configure telemetry before the executor exists so forked/spawned
        # workers inherit the enablement and ship their spans back in replies.
        telemetry.configure(
            trace=config.trace,
            metrics_dir=config.metrics_dir,
            interval_ms=config.metrics_interval_ms,
        )
        if config.shards > 1:
            self._executor = config.make_executor()
            # Create the worker pool now, in the main thread, so fork happens
            # before the window worker thread exists.
            self._executor.__enter__()
            execute = self._execute_sharded
        else:
            if self._session is None:
                self._session = config.make_session()
            execute = self._session.execute_many
        self._batcher = MicroBatcher(
            execute,
            max_wait_ms=config.max_wait_ms,
            max_batch=config.max_batch,
            queue_limit=config.queue_limit,
            overload=config.overload,
            stats_window=config.stats_window,
            window_budget_ms=config.window_budget_ms,
        )
        await self._batcher.start()
        self._server = await asyncio.start_server(self._handle_connection, config.host, config.port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        if config.metrics_dir is not None:
            self._metrics_task = asyncio.ensure_future(self._metrics_dump_loop())
        return self.host, self.port

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, answer everything admitted, stop.

        Order matters: the listener closes first (no new connections), then
        readers are told to stop (no new lines admitted), then the batcher
        flushes its open window — its drain sentinel rides the same FIFO
        queue as the tickets, so everything admitted resolves first — and the
        open writers finish delivering every admitted answer.  The batcher
        drain must not wait for the writers: they are waiting on *it* to
        close a window that would otherwise sit out its full ``max_wait_ms``.
        """
        if self._drained:
            return
        self._drained = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drain_event.set()
        conn_tasks = list(self._conn_tasks)
        if self._batcher is not None:
            await self._batcher.drain()
        if conn_tasks:
            await asyncio.gather(*conn_tasks, return_exceptions=True)
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            try:
                await self._metrics_task
            except (asyncio.CancelledError, Exception):
                pass
            self._metrics_task = None
        if self.config.metrics_dir is not None:
            # Final flush after the writers finished: every admitted request's
            # spans are closed, so the dump captures the complete trace.
            self._flush_metrics()
        if self.config.snapshot_dir is not None and self._session is not None:
            # Save-on-drain: the batcher is flushed, so the session is
            # quiescent and the export captures everything this run learned.
            from repro.service.snapshot import save_snapshot

            save_snapshot(self._session, self.config.snapshot_dir)
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # -- the circuit breaker ---------------------------------------------------

    def _execute_sharded(self, requests):
        """The sharded window executor, wrapped in the circuit breaker.

        Runs on the batcher's window worker thread.  After every window the
        supervisor's crash counter is checked against ``breaker_threshold``;
        crossing it *trips the breaker*: the executor is closed (gracefully —
        restarted workers are healthy, they are just being crashed faster
        than they can earn their keep) and every later window executes
        in-process.  A tripped breaker stays tripped: flapping between
        backends would re-pay worker warm-up on every crash burst.
        """
        executor = self._executor
        if executor is None:  # breaker already tripped
            return self._fallback_session().execute_many(requests)
        results = executor.execute(requests)
        threshold = self.config.breaker_threshold
        if threshold > 0 and executor.supervision_stats()["crashes"] >= threshold:
            self._trip_breaker()
        return results

    def _trip_breaker(self) -> None:
        executor = self._executor
        self._executor = None
        self._breaker_tripped = True
        if executor is not None:
            self._supervision_final = executor.supervision_stats()
            executor.close()
        self._fallback_session()  # build the in-process backend eagerly

    def _fallback_session(self) -> Session:
        if self._session is None:
            self._session = self.config.make_session()
        return self._session

    # -- diagnostics -----------------------------------------------------------

    def _backend_name(self) -> str:
        if self.config.shards > 1 and not self._breaker_tripped:
            return f"shards={self.config.shards}"
        return "session"

    def _supervision_snapshot(self) -> Optional[dict]:
        if self._executor is not None:
            return self._executor.supervision_stats()
        return self._supervision_final

    def stats_snapshot(self) -> dict:
        """Batcher latency/window statistics plus server-level counters."""
        snapshot = self._batcher.stats.snapshot() if self._batcher is not None else {}
        snapshot["server"] = {
            "connections_open": len(self._conn_tasks),
            "connections_served": self._connections_served,
            "mode": self._backend_name(),
            "window": {
                "max_wait_ms": self.config.max_wait_ms,
                "max_batch": self.config.max_batch,
                "queue_limit": self.config.queue_limit,
                "overload": self.config.overload,
            },
        }
        supervision = self._supervision_snapshot()
        if supervision is not None:
            snapshot["supervision"] = supervision
        if self._session is not None:
            snapshot["session_cache"] = self._session.cache_info()
        snapshot["result_cache"] = self._result_cache_snapshot()
        return snapshot

    def _result_cache_snapshot(self) -> dict:
        """Cache traffic by tier (shared / worker / session) and by tenant.

        Sharded backends report the executor's parent-side shared tier and
        the aggregated per-worker session-cache deltas; the in-process
        backend reports its session cache.  ``per_tenant`` merges whatever
        tiers keep tenant-resolved counters (the shared tier and the
        in-process session; worker deltas are tier totals only).
        """

        def _with_rate(tier: dict) -> dict:
            total = tier.get("hits", 0) + tier.get("misses", 0)
            tier["hit_rate"] = round(tier.get("hits", 0) / total, 6) if total else 0.0
            return tier

        tiers: dict = {}
        per_tenant: dict = {}
        if self._executor is not None:
            shared = self._executor.shared_cache_info()
            per_tenant = shared.pop("per_tenant", {})
            tiers["shared"] = _with_rate(shared)
            supervision = self._executor.supervision_stats()
            tiers["worker"] = _with_rate(
                {
                    "hits": supervision.get("worker_cache_hits", 0),
                    "misses": supervision.get("worker_cache_misses", 0),
                }
            )
        if self._session is not None:
            info = self._session.cache_info()
            tiers["session"] = _with_rate({"hits": info["hits"], "misses": info["misses"]})
            for tenant, traffic in info.get("per_tenant", {}).items():
                bucket = per_tenant.setdefault(tenant, {"hits": 0, "misses": 0})
                bucket["hits"] += traffic["hits"]
                bucket["misses"] += traffic["misses"]
        for traffic in per_tenant.values():
            _with_rate(traffic)
        return {"tiers": tiers, "per_tenant": per_tenant}

    def metrics_snapshot(self) -> dict:
        """The unified metrics document: the telemetry registry with the
        server's scattered layer stats absorbed as ``service.*`` gauges."""
        telemetry.registry().absorb("service", self.stats_snapshot())
        return telemetry.metrics_export()

    async def _metrics_dump_loop(self) -> None:
        interval = max(0.01, telemetry.interval_ms() / 1000.0)
        while True:
            await asyncio.sleep(interval)
            self._flush_metrics()

    def _flush_metrics(self) -> None:
        telemetry.registry().absorb("service", self.stats_snapshot())
        telemetry.flush()

    def health_snapshot(self) -> dict:
        """Liveness-and-degradation summary: breaker, supervision, request totals."""
        sharded = self.config.shards > 1
        stats = self._batcher.stats if self._batcher is not None else None
        return {
            "status": "degraded" if self._breaker_tripped else "ok",
            "backend": self._backend_name(),
            "breaker": {
                "enabled": sharded and self.config.breaker_threshold > 0,
                "threshold": self.config.breaker_threshold,
                "tripped": self._breaker_tripped,
            },
            "supervision": self._supervision_snapshot(),
            "requests": {
                "submitted": stats.submitted if stats else 0,
                "answered": stats.answered if stats else 0,
                "shed": stats.shed if stats else 0,
                "budget_timeouts": stats.budget_timeouts if stats else 0,
            },
            "cache": {
                name: tier["hit_rate"]
                for name, tier in self._result_cache_snapshot()["tiers"].items()
            },
        }

    @property
    def session(self) -> Optional[Session]:
        """The in-process session backend (``None`` when sharded)."""
        return self._session

    @property
    def batcher(self) -> Optional[MicroBatcher]:
        """The shared micro-batcher (exposed for tests and diagnostics)."""
        return self._batcher

    # -- per-connection machinery ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections_served += 1
        pending: "asyncio.Queue" = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._write_responses(pending, writer))
        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        line_number = 0
        try:
            while not self._drain_event.is_set():
                read_task = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read_task, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task not in done:
                    # Draining: stop reading; anything already admitted is
                    # answered by the writer loop below.
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, Exception):
                        pass
                    break
                raw = read_task.result()
                if not raw:
                    break  # client EOF
                line_number += 1
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self._handle_line(text, line_number, pending)
        except (ConnectionError, OSError):
            pass  # client went away; the writer loop unwinds below
        finally:
            drain_wait.cancel()
            try:
                await drain_wait
            except (asyncio.CancelledError, Exception):
                pass
            await pending.put(_END)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _handle_line(self, text: str, line_number: int, pending: "asyncio.Queue") -> None:
        """Decode one line into an ordered response slot (ticket or immediate line)."""
        try:
            payload = canonical_loads(text)
        except ServiceError as exc:
            await pending.put(dump_result_line(error_result_for_line(text, line_number, exc)))
            return
        if isinstance(payload, dict) and "control" in payload:
            await pending.put(await self._control_line(payload))
            return
        try:
            request = decode_request(payload)
        except ServiceError as exc:
            await pending.put(dump_result_line(error_result_for_line(payload, line_number, exc)))
            return
        root_span = None
        if telemetry.enabled():
            # Mint (or propagate) the trace id at decode and open the root
            # span; the writer loop closes it after the socket write.
            request, root_span = telemetry.begin_request(request)
        try:
            ticket = await self._batcher.submit(request)  # blocks under backpressure
        except ServiceError as exc:
            # Lost the race with drain: the line was read but cannot be
            # admitted — still answer it, the stream contract holds.
            if root_span is not None:
                root_span.event("rejected")
                root_span.end()
            await pending.put(dump_result_line(error_result_for_line(payload, line_number, exc)))
            return
        await pending.put(ticket if root_span is None else (ticket, root_span))

    async def _control_line(self, payload: dict) -> str:
        op = payload.get("control")
        if op == "stats":
            return canonical_dumps({"control": "stats", "stats": self.stats_snapshot()})
        if op == "ping":
            return canonical_dumps({"control": "pong"})
        if op == "health":
            return canonical_dumps({"control": "health", "health": self.health_snapshot()})
        if op == "metrics":
            return canonical_dumps({"control": "metrics", "metrics": self.metrics_snapshot()})
        if op == "snapshot":
            return await self._snapshot_control()
        return canonical_dumps(
            {
                "control": op,
                "error": {
                    "type": "ServiceError",
                    "message": (
                        f"unknown control operation {op!r}; "
                        "expected 'stats', 'ping', 'health', 'metrics' or 'snapshot'"
                    ),
                },
            }
        )

    async def _snapshot_control(self) -> str:
        """Snapshot the live session to ``snapshot_dir`` without pausing service.

        The export runs on the batcher's window worker thread
        (:meth:`~repro.service.microbatch.MicroBatcher.run_exclusive`), so it
        serializes with window execution — no window can mutate the session
        mid-export — while the event loop keeps admitting requests.
        """

        def _error(message: str) -> str:
            return canonical_dumps(
                {
                    "control": "snapshot",
                    "error": {"type": "ServiceError", "message": message},
                }
            )

        if self._session is None:
            return _error(
                "the sharded backend cannot be snapshotted: workers own the warm "
                "state; run with shards=1 (or snapshot before sharding)"
            )
        if self.config.snapshot_dir is None:
            return _error("no snapshot directory configured; start with --snapshot-dir")
        session = self._session
        directory = self.config.snapshot_dir

        def _save():
            from repro.service.snapshot import save_snapshot

            return save_snapshot(session, directory)

        try:
            path = await self._batcher.run_exclusive(_save)
        except ServiceError as exc:
            return _error(str(exc))
        return canonical_dumps(
            {
                "control": "snapshot",
                "path": str(path),
                "generation": session.generation,
                "bytes": path.stat().st_size,
            }
        )

    async def _write_responses(self, pending: "asyncio.Queue", writer: asyncio.StreamWriter) -> None:
        """Deliver answers strictly in this connection's request order."""
        while True:
            item = await pending.get()
            if item is _END:
                return
            span = None
            if isinstance(item, tuple):
                ticket, span = item
            else:
                ticket = item if isinstance(item, Ticket) else None
            result = await ticket.result() if ticket is not None else None
            line = dump_result_line(result) if ticket is not None else item
            try:
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                # Client gone: keep consuming slots so admitted tickets are
                # still awaited (and counted), but nothing more is written.
                continue
            if ticket is not None:
                ticket.mark_responded()
                if span is not None:
                    # Retrospective children (plan/execute/respond) are cut
                    # from the ticket's stamps now that they are all set.
                    telemetry.finish_request(span, ticket, result)


async def serve_stream(
    requests_jsonl: str, config: Optional[ServiceConfig] = None
) -> tuple[list[str], dict]:
    """Answer a whole JSONL text through an in-process server over a real socket.

    Convenience for tests and examples: starts a :class:`QueryServer` on an
    ephemeral port, plays the stream over one connection, drains, and returns
    (result lines, stats snapshot).
    """
    server = QueryServer(config)
    host, port = await server.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        lines = [line for line in requests_jsonl.split("\n") if line.strip()]
        writer.write(("".join(line + "\n" for line in lines)).encode("utf-8"))
        await writer.drain()
        writer.write_eof()
        out = []
        for _ in lines:
            answer = await reader.readline()
            if not answer:
                raise ServiceError("server closed the connection before answering the stream")
            out.append(answer.decode("utf-8").rstrip("\n"))
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return out, server.stats_snapshot()
    finally:
        await server.drain()
