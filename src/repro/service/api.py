"""The typed convenience surface: request factories and typed answers.

The wire layer is deliberately uniform — every query is a
:class:`~repro.service.wire.QueryRequest`, every answer a
:class:`~repro.service.wire.QueryResult` with a kind-specific ``value``
dict.  That is right for streams and transports, and wrong for a Python
caller, who ends up hand-assembling request dataclasses and string-indexing
result dicts.  This module is the thin typed shim over the same machinery:

* **request factories** (:func:`implies_request`, :func:`equivalent_request`,
  :func:`consistent_request`, :func:`quotient_request`,
  :func:`counterexample_request`) build the canonical
  :class:`~repro.service.wire.QueryRequest` from natural inputs —
  expressions and PDs as objects *or* as the wire's string syntax,
  databases as objects or wire payload dicts;
* **typed answers** (:class:`ImplicationAnswer` & co.) wrap each kind's
  ``value`` dict in a frozen dataclass; the boolean-flavoured ones coerce
  with ``bool()``.  ``cached`` carries the session cache flag through.
* failures raise :class:`~repro.errors.QueryFailedError` instead of coming
  back as ``ok=false`` results — a Python caller wants an exception, a
  stream wants a structured line; the same machinery serves both.

:class:`~repro.service.session.Session` exposes these as methods
(``session.implies(...)``, ``session.equivalent(...)``, ...); ``execute`` /
``execute_many`` remain the uniform batch core underneath, so typed calls
share the session's caches, planner and byte-identity guarantees.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional, Union

from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.errors import QueryFailedError, QueryTimeoutError, ServiceError
from repro.expressions.ast import PartitionExpression
from repro.expressions.parser import parse_expression
from repro.relational.database import Database
from repro.service.wire import QueryRequest, QueryResult, decode_database

ExpressionLike = Union[PartitionExpression, str]
DatabaseLike = Union[Database, dict]

__all__ = [
    "ImplicationAnswer",
    "EquivalenceAnswer",
    "ConsistencyAnswer",
    "QuotientAnswer",
    "CounterexampleAnswer",
    "implies_request",
    "equivalent_request",
    "consistent_request",
    "quotient_request",
    "counterexample_request",
    "answer_for",
]


# -- input coercion ---------------------------------------------------------------


def as_expression(value: ExpressionLike) -> PartitionExpression:
    """An expression object from either an AST node or the wire's infix syntax."""
    if isinstance(value, str):
        try:
            return parse_expression(value)
        except Exception as exc:
            raise ServiceError(f"cannot parse expression {value!r}: {exc}") from None
    return value


def _as_pd(value: PartitionDependencyLike) -> PartitionDependency:
    try:
        return as_partition_dependency(value)
    except Exception as exc:
        raise ServiceError(f"cannot parse dependency {value!r}: {exc}") from None


def _as_dependencies(
    dependencies: Optional[Iterable[PartitionDependencyLike]],
) -> Optional[tuple[PartitionDependency, ...]]:
    if dependencies is None:
        return None
    return tuple(_as_pd(pd) for pd in dependencies)


def _as_database(value: DatabaseLike) -> Database:
    if isinstance(value, dict):
        return decode_database(value)
    return value


# -- request factories ------------------------------------------------------------


def implies_request(
    query: PartitionDependencyLike,
    rhs: Optional[ExpressionLike] = None,
    *,
    dependencies: Optional[Iterable[PartitionDependencyLike]] = None,
    deadline_ms: Optional[int] = None,
    id: Optional[str] = None,
    tenant: Optional[str] = None,
) -> QueryRequest:
    """An ``implies`` request: does Γ imply the PD ``query`` (or ``query = rhs``)?

    Two call shapes: ``implies_request(pd)`` with a whole PD (object or
    ``"lhs = rhs"`` string), or ``implies_request(lhs, rhs)`` with the two
    expression sides.
    """
    if rhs is not None:
        pd = PartitionDependency(as_expression(query), as_expression(rhs))  # type: ignore[arg-type]
    else:
        pd = _as_pd(query)
    return QueryRequest(
        kind="implies",
        id=id,
        tenant=tenant,
        dependencies=_as_dependencies(dependencies),
        query=pd,
        deadline_ms=deadline_ms,
    )


def equivalent_request(
    left: ExpressionLike,
    right: ExpressionLike,
    *,
    dependencies: Optional[Iterable[PartitionDependencyLike]] = None,
    deadline_ms: Optional[int] = None,
    id: Optional[str] = None,
    tenant: Optional[str] = None,
) -> QueryRequest:
    """An ``equivalent`` request: are the two expressions Γ-equivalent?"""
    return QueryRequest(
        kind="equivalent",
        id=id,
        tenant=tenant,
        dependencies=_as_dependencies(dependencies),
        left=as_expression(left),
        right=as_expression(right),
        deadline_ms=deadline_ms,
    )


def consistent_request(
    database: DatabaseLike,
    *,
    method: str = "weak_instance",
    dependencies: Optional[Iterable[PartitionDependencyLike]] = None,
    max_nodes: Optional[int] = None,
    deadline_ms: Optional[int] = None,
    id: Optional[str] = None,
    tenant: Optional[str] = None,
) -> QueryRequest:
    """A ``consistent`` request over a database (object or wire payload dict)."""
    return QueryRequest(
        kind="consistent",
        id=id,
        tenant=tenant,
        dependencies=_as_dependencies(dependencies),
        database=_as_database(database),
        method=method,
        max_nodes=max_nodes,
        deadline_ms=deadline_ms,
    )


def quotient_request(
    expressions: Iterable[ExpressionLike],
    *,
    dependencies: Optional[Iterable[PartitionDependencyLike]] = None,
    deadline_ms: Optional[int] = None,
    id: Optional[str] = None,
    tenant: Optional[str] = None,
) -> QueryRequest:
    """A ``quotient`` request over a pool of expressions."""
    return QueryRequest(
        kind="quotient",
        id=id,
        tenant=tenant,
        dependencies=_as_dependencies(dependencies),
        pool=tuple(as_expression(e) for e in expressions),
        deadline_ms=deadline_ms,
    )


def counterexample_request(
    query: PartitionDependencyLike,
    *,
    max_pool: int = 400,
    dependencies: Optional[Iterable[PartitionDependencyLike]] = None,
    deadline_ms: Optional[int] = None,
    id: Optional[str] = None,
    tenant: Optional[str] = None,
) -> QueryRequest:
    """A ``counterexample`` request: find a finite lattice refuting Γ ⊨ query."""
    return QueryRequest(
        kind="counterexample",
        id=id,
        tenant=tenant,
        dependencies=_as_dependencies(dependencies),
        query=_as_pd(query),
        max_pool=max_pool,
        deadline_ms=deadline_ms,
    )


# -- typed answers ----------------------------------------------------------------


@dataclass(frozen=True)
class ImplicationAnswer:
    """``implies`` / ``fd_implies``: truthy iff the dependency is implied."""

    implied: bool
    cached: bool = False

    def __bool__(self) -> bool:
        return self.implied


@dataclass(frozen=True)
class EquivalenceAnswer:
    """``equivalent``: truthy iff the two expressions are Γ-equivalent."""

    equivalent: bool
    cached: bool = False

    def __bool__(self) -> bool:
        return self.equivalent


@dataclass(frozen=True)
class ConsistencyAnswer:
    """``consistent``: verdict plus the method's own evidence counter."""

    consistent: bool
    method: str
    witness_rows: Optional[int] = None
    search_nodes: Optional[int] = None
    cached: bool = False

    def __bool__(self) -> bool:
        return self.consistent


@dataclass(frozen=True)
class QuotientAnswer:
    """``quotient``: congruence-class representatives and their partial order."""

    classes: tuple[str, ...]
    order: tuple[tuple[int, int], ...]
    cached: bool = False

    def __len__(self) -> int:
        return len(self.classes)


@dataclass(frozen=True)
class CounterexampleAnswer:
    """``counterexample``: ``implied=True`` means no finite refutation exists."""

    implied: bool
    size: Optional[int] = None
    constants: tuple = ()
    cached: bool = False


def answer_for(result: QueryResult):
    """The typed answer for a wire result; raises on ``ok=false``.

    A ``Timeout`` error result (a blown ``deadline_ms`` budget) raises the
    more specific :class:`~repro.errors.QueryTimeoutError`.
    """
    if not result.ok:
        error = result.error or {}
        if error.get("type") == "Timeout":
            raise QueryTimeoutError(result.kind, error)
        raise QueryFailedError(result.kind, error)
    value = result.value or {}
    if result.kind in ("implies", "fd_implies"):
        return ImplicationAnswer(implied=value["implied"], cached=result.cached)
    if result.kind == "equivalent":
        return EquivalenceAnswer(equivalent=value["equivalent"], cached=result.cached)
    if result.kind == "consistent":
        return ConsistencyAnswer(
            consistent=value["consistent"],
            method=value["method"],
            witness_rows=value.get("witness_rows"),
            search_nodes=value.get("search_nodes"),
            cached=result.cached,
        )
    if result.kind == "quotient":
        return QuotientAnswer(
            classes=tuple(value["classes"]),
            order=tuple((i, j) for i, j in value["order"]),
            cached=result.cached,
        )
    if result.kind == "counterexample":
        return CounterexampleAnswer(
            implied=value["implied"],
            size=value.get("size"),
            constants=tuple(value.get("constants") or ()),
            cached=result.cached,
        )
    raise ServiceError(f"no typed answer for result kind {result.kind!r}")
