"""Tuples (rows) over a set of attributes (paper §2.1).

A *tuple over U* is a function from the attribute set ``U`` to the symbol
universe ``D``.  We model it as :class:`Row`, an immutable mapping from
attribute names to symbols.  The name ``Row`` avoids colliding with Python's
built-in :class:`tuple`.

The paper writes a tuple ``t`` over ``{A1, ..., Ak}`` with ``t[Ai] = ai`` as
the string ``a1 a2 ... ak`` and the restriction of ``t`` to ``X ⊆ U`` as
``t[X]``.  Both notations have direct counterparts here: :meth:`Row.values_on`
and :meth:`Row.restrict`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Union

from repro.errors import SchemaError
from repro.relational.attributes import (
    Attribute,
    AttributeSet,
    Symbol,
    as_attribute_set,
    validate_attribute,
    validate_symbol,
)


class Row(Mapping[Attribute, Symbol]):
    """An immutable tuple: a total function from attributes to symbols.

    ``Row`` is hashable and compares structurally, so relations can be plain
    (frozen)sets of rows — exactly the paper's "a relation r over U is a set
    of tuples over U".

    Construct from a mapping or from keyword arguments::

        >>> Row({"A": "a1", "B": "b1"}) == Row(A="a1", B="b1")
        True
    """

    __slots__ = ("_cells", "_hash")

    def __init__(self, cells: Mapping[Attribute, Symbol] | None = None, **kwargs: Symbol) -> None:
        merged: dict[Attribute, Symbol] = {}
        if cells is not None:
            merged.update(cells)
        merged.update(kwargs)
        if not merged:
            raise SchemaError("a tuple must assign at least one attribute")
        validated = {
            validate_attribute(attribute): validate_symbol(symbol)
            for attribute, symbol in merged.items()
        }
        object.__setattr__(self, "_cells", dict(sorted(validated.items())))
        object.__setattr__(self, "_hash", hash(tuple(self._cells.items())))

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, attribute: Attribute) -> Symbol:
        try:
            return self._cells[attribute]
        except KeyError as exc:
            raise SchemaError(
                f"tuple over {sorted(self._cells)} has no attribute {attribute!r}"
            ) from exc

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._cells == other._cells
        if isinstance(other, Mapping):
            return dict(self._cells) == dict(other)
        return NotImplemented

    # -- paper operations ---------------------------------------------------
    @property
    def attributes(self) -> AttributeSet:
        """The attribute set ``U`` this tuple is defined over."""
        return AttributeSet(self._cells)

    def restrict(self, attributes: Union[str, AttributeSet]) -> "Row":
        """The restriction ``t[X]`` of this tuple to ``X ⊆ U``.

        Raises :class:`SchemaError` if ``X`` is not a subset of the tuple's
        attributes or is empty.
        """
        target = as_attribute_set(attributes)
        missing = target - self.attributes
        if missing:
            raise SchemaError(f"cannot restrict tuple to missing attributes {sorted(missing)}")
        if not target:
            raise SchemaError("cannot restrict a tuple to the empty attribute set")
        return Row({a: self._cells[a] for a in target})

    def values_on(self, attributes: Union[str, AttributeSet]) -> tuple[Symbol, ...]:
        """The symbols of this tuple on ``attributes``, in sorted attribute order.

        This is the hashable "projection key" used when comparing tuples on a
        set of attributes (e.g. for FD satisfaction: ``t[X] = h[X]``).
        """
        target = as_attribute_set(attributes)
        missing = target - self.attributes
        if missing:
            raise SchemaError(f"tuple has no attributes {sorted(missing)}")
        return tuple(self._cells[a] for a in target)

    def agrees_with(self, other: "Row", attributes: Union[str, AttributeSet]) -> bool:
        """True iff this tuple and ``other`` coincide on every attribute in ``attributes``."""
        target = as_attribute_set(attributes)
        return self.values_on(target) == other.values_on(target)

    def merge(self, other: "Row") -> "Row":
        """Combine two joinable tuples into one (used by the natural join).

        Raises :class:`SchemaError` if the two tuples disagree on a shared
        attribute.
        """
        shared = self.attributes & other.attributes
        if shared and not self.agrees_with(other, shared):
            raise SchemaError("cannot merge tuples that disagree on shared attributes")
        cells = dict(self._cells)
        cells.update(other._cells)
        return Row(cells)

    def replace(self, **assignments: Symbol) -> "Row":
        """Return a copy of this tuple with some cells replaced."""
        cells = dict(self._cells)
        for attribute, symbol in assignments.items():
            if attribute not in cells:
                raise SchemaError(f"tuple has no attribute {attribute!r}")
            cells[attribute] = validate_symbol(symbol)
        return Row(cells)

    def __repr__(self) -> str:
        inside = ", ".join(f"{a}={v!r}" for a, v in self._cells.items())
        return f"Row({inside})"

    def __str__(self) -> str:
        return ".".join(self._cells[a] for a in self._cells)


def row_from_string(attributes: Union[str, AttributeSet], compact: str, sep: str = ".") -> Row:
    """Build a :class:`Row` from the paper's compact ``a.b.c`` notation.

    ``attributes`` gives the attribute order; ``compact`` is the separated
    list of symbols.  For example ``row_from_string("ABC", "1.2.0")`` is the
    tuple with ``A=1, B=2, C=0`` (the notation used in the proof of
    Theorem 4).
    """
    attrs = as_attribute_set(attributes).sorted()
    symbols = compact.split(sep)
    if len(symbols) != len(attrs):
        raise SchemaError(
            f"compact tuple {compact!r} has {len(symbols)} symbols for {len(attrs)} attributes"
        )
    return Row(dict(zip(attrs, symbols)))
