"""Functional dependencies (FDs) and attribute-set closure (paper §2.1, §5.3).

An FD ``R: X → Y`` is satisfied by a relation ``r`` over ``U ⊇ X ∪ Y`` iff any
two tuples that agree on ``X`` also agree on ``Y``.

Besides satisfaction this module implements the classical computational
machinery around FDs that the paper leans on:

* attribute-set closure ``X⁺`` under a set of FDs (the linear-time algorithm
  of Beeri–Bernstein [3 in the paper]), which decides FD implication;
* Armstrong's inference rules [2 in the paper] as an explicit proof-producing
  derivation engine (used by tests to cross-check the closure algorithm);
* candidate-key enumeration, minimal covers, and FD-set equivalence — the
  standard design-theory toolkit that makes the relational substrate usable
  on its own.

Section 5.3 of the paper identifies FD implication with the uniform word
problem for idempotent commutative semigroups; the wrapper that exposes that
identification lives in :mod:`repro.implication.word_problems`.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from typing import Union

from repro.errors import DependencyError
from repro.relational.attributes import Attribute, AttributeSet, as_attribute_set
from repro.relational.relations import Relation


class FunctionalDependency:
    """A functional dependency ``X → Y`` with non-empty ``X`` and ``Y``."""

    __slots__ = ("_lhs", "_rhs")

    def __init__(
        self,
        lhs: Union[str, Iterable[Attribute]],
        rhs: Union[str, Iterable[Attribute]],
    ) -> None:
        left = as_attribute_set(lhs)
        right = as_attribute_set(rhs)
        if not left or not right:
            raise DependencyError("both sides of a functional dependency must be non-empty")
        self._lhs = left
        self._rhs = right

    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse the compact notation ``"AB -> C"`` (or ``"AB→C"``)."""
        normalized = text.replace("→", "->")
        if "->" not in normalized:
            raise DependencyError(f"cannot parse FD from {text!r}: missing '->'")
        left, right = normalized.split("->", 1)
        return cls(left.strip(), right.strip())

    @property
    def lhs(self) -> AttributeSet:
        """The determinant ``X``."""
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        """The dependent ``Y``."""
        return self._rhs

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned by the FD."""
        return self._lhs | self._rhs

    def is_trivial(self) -> bool:
        """True iff ``Y ⊆ X`` (satisfied by every relation)."""
        return self._rhs <= self._lhs

    def is_satisfied_by(self, relation: Relation) -> bool:
        """Satisfaction per §2.1: agreeing on ``X`` forces agreeing on ``Y``.

        Raises :class:`DependencyError` if the relation scheme does not cover
        the FD's attributes.
        """
        missing = self.attributes - relation.attributes
        if missing:
            raise DependencyError(
                f"relation {relation.name!r} lacks attributes {sorted(missing)} of FD {self}"
            )
        seen: dict[tuple[str, ...], tuple[str, ...]] = {}
        for row in relation.rows:
            key = row.values_on(self._lhs)
            value = row.values_on(self._rhs)
            if key in seen:
                if seen[key] != value:
                    return False
            else:
                seen[key] = value
        return True

    def violating_pairs(self, relation: Relation) -> Iterator[tuple]:
        """Yield pairs of rows witnessing a violation (empty iff satisfied)."""
        rows = relation.sorted_rows()
        for t, h in itertools.combinations(rows, 2):
            if t.agrees_with(h, self._lhs) and not t.agrees_with(h, self._rhs):
                yield (t, h)

    def decompose(self) -> list["FunctionalDependency"]:
        """Split into FDs with singleton right-hand sides (same semantics)."""
        return [FunctionalDependency(self._lhs, [b]) for b in self._rhs.sorted()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs))

    def __repr__(self) -> str:
        return f"FunctionalDependency({self._lhs.sorted()!r}, {self._rhs.sorted()!r})"

    def __str__(self) -> str:
        return f"{self._lhs} -> {self._rhs}"


def closure(
    attributes: Union[str, AttributeSet],
    fds: Iterable[FunctionalDependency],
) -> AttributeSet:
    """The closure ``X⁺`` of ``attributes`` under ``fds``.

    This is the standard fixpoint: start from ``X`` and repeatedly add the
    right-hand side of any FD whose left-hand side is already covered.  The
    implementation keeps, for each FD, a count of left-hand-side attributes
    not yet covered, giving the (essentially) linear behaviour of the
    Beeri–Bernstein algorithm.
    """
    start = as_attribute_set(attributes)
    fd_list = list(fds)
    result: set[Attribute] = set(start)

    # remaining[i] = number of lhs attributes of fd_list[i] not yet in result
    remaining = []
    waiting: dict[Attribute, list[int]] = {}
    queue: list[int] = []
    for i, fd in enumerate(fd_list):
        missing = set(fd.lhs) - result
        remaining.append(len(missing))
        if not missing:
            queue.append(i)
        for a in missing:
            waiting.setdefault(a, []).append(i)

    frontier = list(result)
    fired = [False] * len(fd_list)
    while queue or frontier:
        while queue:
            i = queue.pop()
            if fired[i]:
                continue
            fired[i] = True
            for b in fd_list[i].rhs:
                if b not in result:
                    result.add(b)
                    frontier.append(b)
        if frontier:
            a = frontier.pop()
            for i in waiting.get(a, ()):
                remaining[i] -= 1
                if remaining[i] == 0 and not fired[i]:
                    queue.append(i)
    return AttributeSet(result)


def implies(fds: Iterable[FunctionalDependency], fd: FunctionalDependency) -> bool:
    """True iff ``fds ⊨ fd`` (over all relations), via attribute-set closure."""
    return fd.rhs <= closure(fd.lhs, fds)


def equivalent(
    first: Iterable[FunctionalDependency], second: Iterable[FunctionalDependency]
) -> bool:
    """True iff the two FD sets imply each other (cover the same dependencies)."""
    first_list, second_list = list(first), list(second)
    return all(implies(second_list, fd) for fd in first_list) and all(
        implies(first_list, fd) for fd in second_list
    )


def minimal_cover(fds: Iterable[FunctionalDependency]) -> list[FunctionalDependency]:
    """A minimal (canonical) cover of ``fds``.

    Right-hand sides are singletons, no FD is redundant, and no left-hand-side
    attribute is extraneous.  The result is equivalent to the input.
    """
    # 1. singleton right-hand sides
    current: list[FunctionalDependency] = []
    for fd in fds:
        current.extend(fd.decompose())

    # 2. remove extraneous lhs attributes
    reduced: list[FunctionalDependency] = []
    for fd in current:
        lhs = set(fd.lhs)
        for a in fd.lhs.sorted():
            if len(lhs) == 1:
                break
            candidate = AttributeSet(lhs - {a})
            if fd.rhs <= closure(candidate, current):
                lhs.discard(a)
        reduced.append(FunctionalDependency(AttributeSet(lhs), fd.rhs))

    # 3. remove redundant FDs
    result = list(dict.fromkeys(reduced))
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            rest = [g for g in result if g is not fd]
            if rest and implies(rest, fd):
                result = rest
                changed = True
                break
    return result


def candidate_keys(
    attributes: Union[str, AttributeSet], fds: Sequence[FunctionalDependency]
) -> list[AttributeSet]:
    """All candidate keys of a relation scheme ``R[attributes]`` under ``fds``.

    A candidate key is a minimal attribute set whose closure is the full
    scheme.  Exponential in the worst case (as it must be); fine for the
    schema sizes used in examples and tests.
    """
    universe = as_attribute_set(attributes)
    fd_list = list(fds)

    def is_superkey(candidate: AttributeSet) -> bool:
        return closure(candidate, fd_list) >= universe

    keys: list[AttributeSet] = []
    for size in range(1, len(universe) + 1):
        for combo in itertools.combinations(universe.sorted(), size):
            candidate = AttributeSet(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_superkey(candidate):
                keys.append(candidate)
    return keys


def project_fds(
    fds: Sequence[FunctionalDependency], attributes: Union[str, AttributeSet]
) -> list[FunctionalDependency]:
    """The projection of an FD set onto a subscheme (all implied FDs inside it).

    Standard exponential construction: for every subset ``X`` of the target
    attributes, emit ``X → (X⁺ ∩ attributes) - X`` when non-trivial.  Used by
    tests exercising multi-relation schemas.
    """
    target = as_attribute_set(attributes)
    result: list[FunctionalDependency] = []
    for size in range(1, len(target) + 1):
        for combo in itertools.combinations(target.sorted(), size):
            lhs = AttributeSet(combo)
            rhs = (closure(lhs, fds) & target) - lhs
            if rhs:
                result.append(FunctionalDependency(lhs, rhs))
    return result


def parse_fd_set(texts: Iterable[str]) -> list[FunctionalDependency]:
    """Parse several FDs written in the compact arrow notation."""
    return [FunctionalDependency.parse(text) for text in texts]
