"""The chase with labelled nulls over a tableau (substrate for Honeyman's test).

The weak-instance consistency test of Honeyman [19 in the paper] — used by
the paper in Theorems 6, 7 and 12 — works as follows: pad every tuple of the
database out to the full attribute universe with fresh labelled nulls
(producing the *representative instance* / tableau), then *chase* the tableau
with the given FDs, equating symbols whenever an FD forces two rows that
agree on its left-hand side to agree on its right-hand side.  The database is
consistent with the FDs under the weak-instance assumption iff the chase
never tries to equate two distinct *constants*.

This module provides the tableau machinery:

* :class:`TableauValue` — either a constant (a database symbol) or a labelled
  null;
* :class:`Tableau` — a mutable matrix of tableau values with a union-find
  over value classes;
* :func:`chase_fds` — run the FD chase to a fixpoint, reporting success or
  the first hard violation.

The chase is deterministic (rows and FDs are processed in sorted order), so
its results are reproducible across runs.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConsistencyError
from repro.relational.attributes import Attribute, AttributeSet, Symbol, as_attribute_set
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


@dataclass(frozen=True)
class TableauValue:
    """A value in a tableau cell: either a constant or a labelled null.

    ``is_constant`` distinguishes the two kinds; ``label`` is the symbol for
    constants and an opaque unique identifier for nulls.  The hash is
    precomputed: tableau values are the keys of every union-find and chase
    index dictionary, so hashing them is one of the hottest operations in the
    repository.
    """

    is_constant: bool
    label: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.is_constant, self.label)))

    def __hash__(self) -> int:  # pragma: no cover - exercised by every dict op
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def constant(cls, symbol: Symbol) -> "TableauValue":
        return cls(True, symbol)

    @classmethod
    def null(cls, identifier: str) -> "TableauValue":
        return cls(False, identifier)

    def __str__(self) -> str:
        return self.label if self.is_constant else f"⊥{self.label}"

    def election_key(self) -> tuple[int, int, str]:
        """Total order used to elect class representatives deterministically.

        Constants beat nulls; ties break on the shortest, lexicographically
        smallest label (which orders the generated nulls ``n1 < n2 < ... <
        n10 < ...`` numerically).  Electing by a merge-order-independent key
        makes the chased tableau identical no matter which chase strategy
        produced it — the property the engine/naive cross-check tests rely on.
        """
        return (0 if self.is_constant else 1, len(self.label), self.label)


#: Signature of a merge-event listener: ``(winner_root, loser_root)`` after a
#: successful union that actually merged two distinct classes.
MergeListener = Callable[[TableauValue, TableauValue], None]


class _UnionFind:
    """Union-find over tableau values with constant-aware representative election.

    When two classes are merged the representative prefers a constant
    (ties between nulls break on :meth:`TableauValue.election_key`, so the
    elected representative does not depend on merge order); merging two
    classes that contain *different* constants is the hard failure the chase
    reports.  Every effective merge is reported to the registered listeners
    — path compression in :meth:`find` never changes a class, so it never
    fires an event.
    """

    def __init__(self) -> None:
        self._parent: dict[TableauValue, TableauValue] = {}
        self._listeners: list[MergeListener] = []

    def add(self, value: TableauValue) -> None:
        self._parent.setdefault(value, value)

    def add_listener(self, listener: MergeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: MergeListener) -> None:
        self._listeners.remove(listener)

    def find(self, value: TableauValue) -> TableauValue:
        parent = self._parent
        root = parent.setdefault(value, value)
        if root is value or parent[root] == root:
            # Fast path: ``value`` is its own root, or its parent is a root —
            # the overwhelmingly common cases in a chase (fresh nulls, and
            # values one hop from their representative).
            return root
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[value] != root:
            parent[value], value = root, parent[value]
        return root

    def union(self, first: TableauValue, second: TableauValue) -> bool:
        """Merge the classes of ``first`` and ``second``.

        Returns ``True`` on success and ``False`` when both classes already
        contain distinct constants (an FD violation that cannot be repaired).
        On an effective merge, listeners are notified with the surviving and
        the absorbed root, in registration order.
        """
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return True
        if root_a.is_constant and root_b.is_constant:
            return False
        if root_b.election_key() < root_a.election_key():
            root_a, root_b = root_b, root_a
        # root_a is preferred (constant if any); point root_b at it.
        self._parent[root_b] = root_a
        for listener in self._listeners:
            listener(root_a, root_b)
        return True


class Tableau:
    """A tableau: rows over a common attribute universe, with constants and nulls."""

    def __init__(self, attributes: Union[str, AttributeSet]) -> None:
        self._attributes = as_attribute_set(attributes)
        if not self._attributes:
            raise ConsistencyError("a tableau needs a non-empty attribute universe")
        self._rows: list[dict[Attribute, TableauValue]] = []
        self._uf = _UnionFind()
        self._null_counter = itertools.count(1)

    @property
    def attributes(self) -> AttributeSet:
        """The attribute universe of the tableau."""
        return self._attributes

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def fresh_null(self) -> TableauValue:
        """A labelled null never used before in this tableau."""
        value = TableauValue.null(f"n{next(self._null_counter)}")
        self._uf.add(value)
        return value

    def add_row(self, cells: dict[Attribute, Union[TableauValue, Symbol]]) -> int:
        """Add a row; missing attributes are padded with fresh nulls.

        String cell values are wrapped as constants.  Returns the row index.
        """
        row: dict[Attribute, TableauValue] = {}
        for attribute in self._attributes:
            if attribute in cells:
                raw = cells[attribute]
                value = raw if isinstance(raw, TableauValue) else TableauValue.constant(raw)
            else:
                value = self.fresh_null()
            self._uf.add(value)
            row[attribute] = value
        self._rows.append(row)
        return len(self._rows) - 1

    def value(self, row_index: int, attribute: Attribute) -> TableauValue:
        """The current (representative) value of a cell."""
        return self._uf.find(self._rows[row_index][attribute])

    def raw_row(self, row_index: int) -> Mapping[Attribute, TableauValue]:
        """The stored (unresolved) cells of a row — treat as read-only.

        Callers that resolve many cells repeatedly (the chase engine) keep a
        reference to the raw row and pass its cells through :meth:`resolve`,
        avoiding a row-list lookup per cell.
        """
        return self._rows[row_index]

    def resolve(self, value: TableauValue) -> TableauValue:
        """The current representative of ``value``'s equivalence class."""
        return self._uf.find(value)

    def equate(self, first: TableauValue, second: TableauValue) -> bool:
        """Equate two values; False signals an unrepairable constant clash."""
        return self._uf.union(first, second)

    def add_merge_listener(self, listener: MergeListener) -> None:
        """Subscribe to merge events.

        ``listener(winner, loser)`` is invoked after every *effective* merge:
        ``loser`` was a class representative and its whole class now resolves
        to ``winner``.  No event fires for a no-op equate (values already in
        one class) or for path compression (which never changes a class).
        Incremental indexes over the tableau — the chase engine's key maps —
        subscribe here so that only rows whose representatives actually
        changed are re-keyed.
        """
        self._uf.add_listener(listener)

    def remove_merge_listener(self, listener: MergeListener) -> None:
        """Unsubscribe a listener previously added with :meth:`add_merge_listener`."""
        self._uf.remove_listener(listener)

    def rows_as_values(self) -> list[dict[Attribute, TableauValue]]:
        """Snapshot of all rows with representatives resolved."""
        return [
            {a: self._uf.find(v) for a, v in row.items()}
            for row in self._rows
        ]

    def to_relation(self, name: str = "chased") -> Relation:
        """Materialize the tableau as a relation, rendering nulls as symbols.

        Labelled nulls become symbols of the form ``"⊥<id>"`` (distinct from
        any database constant), so the result is a genuine weak instance
        whenever the chase succeeded.
        """
        scheme = RelationScheme(name, self._attributes)
        rows = []
        for row in self.rows_as_values():
            rows.append(Row({a: str(v) for a, v in row.items()}))
        return Relation(scheme, rows)


@dataclass(frozen=True)
class ChaseResult:
    """Outcome of chasing a tableau with a set of FDs.

    ``consistent`` is False iff the chase attempted to equate two distinct
    constants; in that case ``violation`` names the FD responsible.
    ``tableau`` is the chased tableau (final state in either case) and
    ``steps`` counts the number of successful equate operations performed.
    """

    consistent: bool
    tableau: Tableau
    steps: int
    violation: Optional[FunctionalDependency] = None


def representative_instance(database: Database, universe: Optional[AttributeSet] = None) -> Tableau:
    """Build the representative instance (padded tableau) of a database.

    Every tuple of every relation becomes a tableau row over the full
    attribute universe, with fresh labelled nulls in the columns its scheme
    does not mention.
    """
    target = universe if universe is not None else database.universe
    target = as_attribute_set(target)
    if not database.universe <= target:
        raise ConsistencyError("the tableau universe must contain every database attribute")
    tableau = Tableau(target)
    for relation in database.relations:
        for row in relation.sorted_rows():
            tableau.add_row({a: row[a] for a in relation.attributes})
    return tableau


def chase_fds(tableau: Tableau, fds: Sequence[FunctionalDependency]) -> ChaseResult:
    """Chase ``tableau`` with ``fds`` until fixpoint or a constant clash.

    The chase repeatedly looks for two rows that agree (as equivalence
    classes) on the left-hand side of some FD but not on its right-hand side,
    and equates the right-hand-side values.  It terminates because every
    successful step strictly decreases the number of value classes.
    """
    fd_list = list(fds)
    steps = 0
    changed = True
    while changed:
        changed = False
        for fd in fd_list:
            n = tableau.row_count
            # Group rows by their current lhs value classes.
            groups: dict[tuple[TableauValue, ...], int] = {}
            for i in range(n):
                key = tuple(tableau.value(i, a) for a in fd.lhs)
                if key in groups:
                    j = groups[key]
                    for b in fd.rhs:
                        left = tableau.value(i, b)
                        right = tableau.value(j, b)
                        if left != right:
                            if not tableau.equate(left, right):
                                return ChaseResult(False, tableau, steps, violation=fd)
                            steps += 1
                            changed = True
                else:
                    groups[key] = i
    return ChaseResult(True, tableau, steps)


def chase_database(database: Database, fds: Sequence[FunctionalDependency]) -> ChaseResult:
    """Convenience: build the representative instance of ``database`` and chase it."""
    universe = database.universe
    extra = AttributeSet(
        a for fd in fds for a in fd.attributes if a not in universe
    )
    tableau = representative_instance(database, universe | extra)
    return chase_fds(tableau, fds)
