"""Relations: sets of tuples over a relation scheme (paper §2.1).

A relation ``r`` over ``U`` is a set of tuples over ``U``.  The paper allows
both finite and infinite relations; this implementation handles finite
relations (every construction in the paper that needs an infinite relation —
the compactness argument of Theorem 4 — is reproduced through its finite
approximations, see :mod:`repro.graphs.families`).

:class:`Relation` is immutable; all the relational-algebra operations return
new relations.  The operations themselves live in
:mod:`repro.relational.algebra`; the methods here are thin conveniences that
delegate to them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Callable, Union

from repro.errors import SchemaError
from repro.relational.attributes import Attribute, AttributeSet, Symbol, as_attribute_set
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row, row_from_string

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.dependencies.pd import PartitionDependency
    from repro.relational.functional_dependencies import FunctionalDependency


class Relation:
    """An immutable finite relation: a scheme plus a frozenset of rows.

    Every row must be defined on exactly the attributes of the scheme.
    """

    __slots__ = ("_scheme", "_rows")

    def __init__(self, scheme: RelationScheme, rows: Iterable[Row] = ()) -> None:
        if not isinstance(scheme, RelationScheme):
            raise SchemaError(f"expected RelationScheme, got {scheme!r}")
        frozen = frozenset(rows)
        for row in frozen:
            if not isinstance(row, Row):
                raise SchemaError(f"expected Row, got {row!r}")
            if row.attributes != scheme.attributes:
                raise SchemaError(
                    f"row over {row.attributes.sorted()} does not match scheme {scheme}"
                )
        self._scheme = scheme
        self._rows = frozen

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        attributes: Union[str, Iterable[Attribute]],
        rows: Iterable[Union[Row, dict[Attribute, Symbol]]],
    ) -> "Relation":
        """Build a relation from raw row data.

        ``rows`` may contain :class:`Row` instances or plain dictionaries.
        """
        scheme = RelationScheme(name, attributes)
        built = [row if isinstance(row, Row) else Row(row) for row in rows]
        return cls(scheme, built)

    @classmethod
    def from_strings(
        cls,
        name: str,
        attributes: Union[str, Iterable[Attribute]],
        compact_rows: Iterable[str],
        sep: str = ".",
    ) -> "Relation":
        """Build a relation from the paper's compact ``a.b.c`` tuple notation.

        The symbols in each compact row are assigned to the attributes in
        sorted attribute order, matching :func:`row_from_string`.
        """
        scheme = RelationScheme(name, attributes)
        built = [row_from_string(scheme.attributes, compact, sep=sep) for compact in compact_rows]
        return cls(scheme, built)

    # -- basic accessors ----------------------------------------------------
    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme ``R[U]``."""
        return self._scheme

    @property
    def name(self) -> str:
        """The relation name ``R``."""
        return self._scheme.name

    @property
    def attributes(self) -> AttributeSet:
        """The attribute set ``U`` of the scheme."""
        return self._scheme.attributes

    @property
    def rows(self) -> frozenset[Row]:
        """The set of tuples of this relation."""
        return self._rows

    def sorted_rows(self) -> list[Row]:
        """The rows in a deterministic (sorted) order, for display and hashing-free iteration."""
        return sorted(self._rows, key=lambda row: row.values_on(self.attributes))

    def __iter__(self) -> Iterator[Row]:
        return iter(self.sorted_rows())

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._scheme == other._scheme and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._scheme, self._rows))

    # -- column access ------------------------------------------------------
    def column(self, attribute: Attribute) -> frozenset[Symbol]:
        """The set of symbols appearing in the column headed by ``attribute``."""
        if attribute not in self._scheme.attributes:
            raise SchemaError(f"relation {self.name!r} has no attribute {attribute!r}")
        return frozenset(row[attribute] for row in self._rows)

    def active_domain(self) -> frozenset[Symbol]:
        """All symbols appearing anywhere in the relation."""
        return frozenset(symbol for row in self._rows for symbol in row.values())

    # -- relational algebra (delegating to repro.relational.algebra) ---------
    def project(self, attributes: Union[str, AttributeSet], name: str | None = None) -> "Relation":
        """The projection ``r[X]`` of this relation on ``X ⊆ U``."""
        from repro.relational import algebra

        return algebra.project(self, as_attribute_set(attributes), name=name)

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Selection: the sub-relation of rows satisfying ``predicate``."""
        from repro.relational import algebra

        return algebra.select(self, predicate, name=name)

    def rename_relation(self, new_name: str) -> "Relation":
        """The same relation under a different relation name."""
        return Relation(self._scheme.rename(new_name), self._rows)

    def rename_attributes(self, mapping: dict[Attribute, Attribute], name: str | None = None) -> "Relation":
        """Rename attributes according to ``mapping`` (attributes not mentioned stay)."""
        from repro.relational import algebra

        return algebra.rename(self, mapping, name=name)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union of two relations over the same attributes."""
        from repro.relational import algebra

        return algebra.union(self, other, name=name)

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference of two relations over the same attributes."""
        from repro.relational import algebra

        return algebra.difference(self, other, name=name)

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection of two relations over the same attributes."""
        from repro.relational import algebra

        return algebra.intersection(self, other, name=name)

    def product(self, other: "Relation", name: str | None = None) -> "Relation":
        """Cartesian product (schemes must have disjoint attributes)."""
        from repro.relational import algebra

        return algebra.cartesian_product(self, other, name=name)

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on the shared attributes."""
        from repro.relational import algebra

        return algebra.natural_join(self, other, name=name)

    # -- dependency satisfaction ---------------------------------------------
    def satisfies_fd(self, fd: "FunctionalDependency") -> bool:
        """True iff this relation satisfies the functional dependency ``fd``."""
        return fd.is_satisfied_by(self)

    def satisfies_pd(self, pd: "PartitionDependency") -> bool:
        """True iff this relation satisfies the partition dependency ``pd``.

        Satisfaction is via the canonical interpretation ``I(r)``
        (Definition 7 of the paper); see
        :func:`repro.dependencies.satisfaction.relation_satisfies_pd`.
        """
        from repro.dependencies.satisfaction import relation_satisfies_pd

        return relation_satisfies_pd(self, pd)

    # -- display --------------------------------------------------------------
    def to_table(self) -> str:
        """Render the relation as a fixed-width text table (attributes sorted)."""
        attrs = self.attributes.sorted()
        rows = [[row[a] for a in attrs] for row in self.sorted_rows()]
        widths = [
            max(len(a), *(len(r[i]) for r in rows)) if rows else len(a)
            for i, a in enumerate(attrs)
        ]
        header = "  ".join(a.ljust(w) for a, w in zip(attrs, widths))
        lines = [f"{self.name}:", header, "  ".join("-" * w for w in widths)]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({self._scheme!r}, {len(self._rows)} rows)"

    def __str__(self) -> str:
        return self.to_table()
