"""Multivalued dependencies (MVDs), used by Theorem 5 of the paper (§4.2).

Theorem 5 shows that even the simplest MVD cannot be expressed by partition
dependencies.  The MVD used there is, in predicate-logic notation,

    φ = ∀x y z u v. [R(x y u) ∧ R(x v z)] ⇒ R(x y z)

i.e. the MVD ``A ↠ B`` (equivalently ``A ↠ C``) over the scheme ``ABC``.
This module provides a general MVD class ``X ↠ Y`` over a scheme ``U``
together with the standard satisfaction test, so the Figure 2 reproduction
and the expressiveness benchmarks can state the theorem exactly as the paper
does.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.errors import DependencyError
from repro.relational.attributes import Attribute, AttributeSet, as_attribute_set
from repro.relational.relations import Relation
from repro.relational.tuples import Row


class MultivaluedDependency:
    """An MVD ``X ↠ Y`` relative to a relation scheme ``U``.

    Satisfaction (the classical definition): for all tuples ``t, h`` agreeing
    on ``X`` there is a tuple ``s`` in the relation with ``s[X] = t[X]``,
    ``s[Y] = t[Y]`` and ``s[Z] = h[Z]`` where ``Z = U - X - Y``.
    """

    __slots__ = ("_lhs", "_rhs", "_universe")

    def __init__(
        self,
        lhs: Union[str, Iterable[Attribute]],
        rhs: Union[str, Iterable[Attribute]],
        universe: Union[str, Iterable[Attribute]],
    ) -> None:
        left = as_attribute_set(lhs)
        right = as_attribute_set(rhs)
        scheme = as_attribute_set(universe)
        if not left or not right:
            raise DependencyError("both sides of a multivalued dependency must be non-empty")
        if not (left | right) <= scheme:
            raise DependencyError("MVD attributes must be contained in the relation scheme")
        self._lhs = left
        self._rhs = right
        self._universe = scheme

    @property
    def lhs(self) -> AttributeSet:
        """The determinant ``X``."""
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        """The multivalued dependent ``Y``."""
        return self._rhs

    @property
    def universe(self) -> AttributeSet:
        """The relation scheme ``U`` relative to which the MVD is stated."""
        return self._universe

    @property
    def complement_attributes(self) -> AttributeSet:
        """``Z = U - X - Y``, the attributes swapped by the exchange rule."""
        return self._universe - self._lhs - self._rhs

    def complement(self) -> "MultivaluedDependency":
        """The complementary MVD ``X ↠ Z`` (equivalent to this one)."""
        rest = self.complement_attributes
        if not rest:
            raise DependencyError("the complement MVD would have an empty right-hand side")
        return MultivaluedDependency(self._lhs, rest, self._universe)

    def is_trivial(self) -> bool:
        """True iff ``Y ⊆ X`` or ``X ∪ Y = U`` (satisfied by every relation)."""
        return self._rhs <= self._lhs or (self._lhs | self._rhs) == self._universe

    def is_satisfied_by(self, relation: Relation) -> bool:
        """Check satisfaction by building the required "exchanged" tuples."""
        if relation.attributes != self._universe:
            raise DependencyError(
                f"MVD is stated over {self._universe.sorted()}, relation has "
                f"{relation.attributes.sorted()}"
            )
        rest = self.complement_attributes
        rows = list(relation.rows)
        row_set = relation.rows
        for t in rows:
            for h in rows:
                if not t.agrees_with(h, self._lhs):
                    continue
                expected_cells = {}
                for a in self._lhs:
                    expected_cells[a] = t[a]
                for a in self._rhs:
                    expected_cells[a] = t[a]
                for a in rest:
                    expected_cells[a] = h[a]
                if Row(expected_cells) not in row_set:
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultivaluedDependency):
            return NotImplemented
        return (
            self._lhs == other._lhs
            and self._rhs == other._rhs
            and self._universe == other._universe
        )

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs, self._universe))

    def __repr__(self) -> str:
        return (
            f"MultivaluedDependency({self._lhs.sorted()!r}, {self._rhs.sorted()!r}, "
            f"universe={self._universe.sorted()!r})"
        )

    def __str__(self) -> str:
        return f"{self._lhs} ->> {self._rhs} [U={self._universe}]"


def theorem5_mvd() -> MultivaluedDependency:
    """The MVD φ used in Theorem 5: ``A ↠ B`` over the scheme ``ABC``."""
    return MultivaluedDependency("A", "B", "ABC")
