"""Attributes and symbols — the alphabet of the relational model (paper §2.1).

The paper works with a finite set of *attributes* ``U = {A, B, C, ...}`` and a
countably infinite set of *symbols* (domain values) ``D = {a, b, c, ...}``
with ``U ∩ D = ∅``.  In this library both attributes and symbols are plain
Python strings; the helpers in this module provide the small amount of
validation and normalization the rest of the package relies on.

We also provide :class:`AttributeSet`, an immutable, hashable, *sorted* set of
attributes.  Sets of attributes appear constantly in the paper (left/right
hand sides of FDs, relation schemes, the ``X`` in an FPD ``X = X·Y``), and
giving them a dedicated value type keeps signatures honest and error messages
readable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Union

from repro.errors import SchemaError

#: Type alias: an attribute is a non-empty string (e.g. ``"A"``, ``"B1"``).
Attribute = str

#: Type alias: a symbol (domain value) is a non-empty string (e.g. ``"a"``).
Symbol = str


def validate_attribute(attribute: object) -> Attribute:
    """Return ``attribute`` if it is a valid attribute name, else raise.

    An attribute is any non-empty string.  Raises :class:`SchemaError`
    otherwise.
    """
    if not isinstance(attribute, str) or not attribute:
        raise SchemaError(f"attribute must be a non-empty string, got {attribute!r}")
    return attribute


def validate_symbol(symbol: object) -> Symbol:
    """Return ``symbol`` if it is a valid domain symbol, else raise."""
    if not isinstance(symbol, str) or not symbol:
        raise SchemaError(f"symbol must be a non-empty string, got {symbol!r}")
    return symbol


class AttributeSet(frozenset):
    """An immutable set of attribute names.

    ``AttributeSet`` is a thin subclass of :class:`frozenset` that validates
    its elements and renders deterministically (sorted) in ``repr``/``str``.
    It accepts either an iterable of attribute names or a single string, in
    which case every *character* is taken to be an attribute — this mirrors
    the paper's compact notation ``R[ABC]`` for the scheme with attributes
    ``A``, ``B``, ``C``::

        >>> AttributeSet("ABC") == AttributeSet(["A", "B", "C"])
        True
    """

    def __new__(cls, attributes: Union[str, Iterable[Attribute]] = ()) -> "AttributeSet":
        if isinstance(attributes, str):
            items: Iterable[Attribute] = list(attributes)
        else:
            items = list(attributes)
        validated = [validate_attribute(a) for a in items]
        return super().__new__(cls, validated)

    # frozenset's set-algebra operators return plain frozensets; re-wrap the
    # ones used throughout the library so chained expressions stay typed.
    def union(self, *others: Iterable[Attribute]) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(frozenset(self).union(*[frozenset(AttributeSet(o)) for o in others]))

    def intersection(self, *others: Iterable[Attribute]) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(
            frozenset(self).intersection(*[frozenset(AttributeSet(o)) for o in others])
        )

    def difference(self, *others: Iterable[Attribute]) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(
            frozenset(self).difference(*[frozenset(AttributeSet(o)) for o in others])
        )

    def __or__(self, other: frozenset) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(frozenset(self) | frozenset(other))

    def __and__(self, other: frozenset) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(frozenset(self) & frozenset(other))

    def __sub__(self, other: frozenset) -> "AttributeSet":  # type: ignore[override]
        return AttributeSet(frozenset(self) - frozenset(other))

    def sorted(self) -> list[Attribute]:
        """Return the attributes as a sorted list (deterministic ordering)."""
        return sorted(self)

    def __iter__(self) -> Iterator[Attribute]:
        # Iterate in sorted order so that downstream constructions (canonical
        # interpretations, chase tableaux, printed tables) are deterministic.
        return iter(sorted(frozenset.__iter__(self)))

    def __repr__(self) -> str:
        return f"AttributeSet({self.sorted()!r})"

    def __str__(self) -> str:
        return "".join(self.sorted()) if all(len(a) == 1 for a in self) else ",".join(self.sorted())


def as_attribute_set(value: Union[str, Iterable[Attribute], AttributeSet]) -> AttributeSet:
    """Coerce ``value`` to an :class:`AttributeSet`.

    Accepts an existing :class:`AttributeSet`, a string (each character an
    attribute), or any iterable of attribute names.
    """
    if isinstance(value, AttributeSet):
        return value
    return AttributeSet(value)
