"""An indexed, delta-driven chase engine (the hot-path replacement for :func:`chase_fds`).

The naive chase in :mod:`repro.relational.chase` restarts from scratch on
every pass: for every FD it rescans all rows, rebuilds the left-hand-side key
map, and repeats until a full pass changes nothing.  That is quadratic-ish in
practice and is the single hottest path in the repository — Honeyman's test
(:mod:`repro.relational.weak_instance`), the Theorem 6a/12 consistency
pipelines and every EXP-WI/EXP-T12 benchmark all sit on top of it.

:class:`ChaseEngine` replaces the restart loop with incremental state built
around one observation: *rows never leave a chase bucket*.  A bucket is the
set of rows currently agreeing on an FD's left-hand side; merges only coarsen
value classes, and they coarsen every row of a bucket identically, so bucket
membership is monotone and a bucket never needs more than a single *witness*
row (each row is equated with the witness on the FD's right-hand side when it
joins, and union-find transitivity keeps the whole bucket equated).  The
engine therefore maintains:

* **per-FD hash indexes** mapping a left-hand-side key tuple (current
  representatives of the LHS cells) to the bucket's witness row;
* an **occurrence index** from each representative to the ``(fd, key)``
  buckets whose key mentions it — the only buckets a merge can dirty;
* a **worklist of merge events** fed by the tableau's merge-event hook
  (:meth:`Tableau.add_merge_listener`): when ``loser`` is absorbed into
  ``winner``, exactly the buckets keyed through ``loser`` are re-keyed, and
  two buckets whose keys coarsen together merge by equating their witnesses —
  one equate per bucket pair instead of one per row.

The engine is constructed once per FD set, so the per-FD preprocessing
(sorted LHS/RHS tuples, the extended universe) is amortized across every
chase issued against it — :func:`repro.consistency.pd_consistency.pd_consistency`
and the benchmark sweeps chase many databases against one normalized FD set,
which is exactly this shape.  :meth:`ChaseEngine.chase_many` batches that
pattern.

The engine and the naive chase produce *identical* chased tableaux: the FD
chase is Church–Rosser (the final partition of tableau values is the unique
congruence forced by the FDs, independent of equate order), and representative
election in the union-find is merge-order-independent (constants first, then
the smallest null label).  ``tests/test_chase_engine.py`` cross-checks the two
on randomized workloads, mirroring the ``alg_closure_naive``/``alg_closure``
oracle pattern of :mod:`repro.implication.alg`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from typing import Optional

from repro import profiling
from repro.deadline import check_deadline
from repro.relational.attributes import Attribute, AttributeSet
from repro.relational.chase import ChaseResult, Tableau, TableauValue, representative_instance
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency


class ChaseEngine:
    """A reusable, indexed chase engine for a fixed set of FDs.

    Construction preprocesses the FD set; :meth:`chase` runs the delta-driven
    fixpoint on a tableau, :meth:`chase_database` builds the representative
    instance first (extending the universe with FD-only attributes, exactly
    like :func:`repro.relational.chase.chase_database`), and
    :meth:`chase_many` amortizes both over a batch of databases.
    """

    def __init__(self, fds: Iterable[FunctionalDependency]) -> None:
        self._fds: list[FunctionalDependency] = list(fds)
        self._lhs: list[tuple[Attribute, ...]] = [tuple(fd.lhs.sorted()) for fd in self._fds]
        self._rhs: list[tuple[Attribute, ...]] = [tuple(fd.rhs.sorted()) for fd in self._fds]
        self._fd_attributes = AttributeSet(a for fd in self._fds for a in fd.attributes)

    @property
    def fds(self) -> list[FunctionalDependency]:
        """The FD set this engine chases with."""
        return list(self._fds)

    def chase(self, tableau: Tableau) -> ChaseResult:
        """Chase ``tableau`` to fixpoint with the engine's FDs.

        Produces the same chased tableau (and verdict) as
        :func:`repro.relational.chase.chase_fds`, via incremental indexes and
        a merge-event worklist instead of restart-from-scratch passes.
        """
        return _ChaseRun(self, tableau).execute()

    def chase_database(self, database: Database) -> ChaseResult:
        """Build the representative instance of ``database`` and chase it."""
        universe = database.universe | self._fd_attributes
        tableau = representative_instance(database, universe)
        return self.chase(tableau)

    def chase_many(self, databases: Iterable[Database]) -> list[ChaseResult]:
        """Chase a batch of databases, amortizing the FD preprocessing."""
        return [self.chase_database(database) for database in databases]


#: A bucket key: the representatives of a row's LHS cells, in LHS-sorted order.
_Key = tuple  # tuple[TableauValue, ...]


class _ChaseRun:
    """State of one delta-driven chase: indexes, occurrence map, merge worklist."""

    def __init__(self, engine: ChaseEngine, tableau: Tableau) -> None:
        self._engine = engine
        self._tableau = tableau
        # Per-FD: LHS key -> witness row index for that bucket.
        self._buckets: list[dict[_Key, int]] = [{} for _ in engine._fds]
        # representative -> {(fd_index, key): None} for buckets keyed through it.
        # Inner dicts give insertion-ordered, duplicate-free iteration, keeping
        # the run deterministic without any sorting.  Entries are retired
        # lazily: a (fd, key) pair whose bucket has since been re-keyed is
        # skipped when encountered (its key can never be re-filed, since dead
        # representatives never reappear in fresh keys).
        self._occurrences: dict[TableauValue, dict[tuple[int, _Key], None]] = {}
        # FIFO of (winner, loser) merge events, drained iteratively so that
        # cascading equates never recurse through the listener.
        self._merges: deque[tuple[TableauValue, TableauValue]] = deque()
        self._steps = 0

    def _on_merge(self, winner: TableauValue, loser: TableauValue) -> None:
        self._merges.append((winner, loser))

    def _register(self, fd_index: int, key: _Key) -> None:
        """Index a bucket's key under each null representative it mentions.

        Constants are skipped: they always win representative election (and a
        constant-vs-constant merge is a failure, not an event), so a constant
        component can never be the ``loser`` that :meth:`_drain` pops.
        """
        occurrences = self._occurrences
        entry = (fd_index, key)
        for component in key:
            if component.is_constant:
                continue
            bag = occurrences.get(component)
            if bag is None:
                occurrences[component] = {entry: None}
            else:
                bag[entry] = None

    def execute(self) -> ChaseResult:
        tableau = self._tableau
        tableau.add_merge_listener(self._on_merge)
        try:
            raw_rows = [tableau.raw_row(i) for i in range(tableau.row_count)]
            violation = self._build(raw_rows)
            if violation is None:
                violation = self._drain(raw_rows)
        finally:
            tableau.remove_merge_listener(self._on_merge)
        if violation is not None:
            return ChaseResult(False, tableau, self._steps, violation=violation)
        return ChaseResult(True, tableau, self._steps)

    def _build(self, raw_rows: list) -> Optional[FunctionalDependency]:
        """File every row into its bucket once — one tight indexed pass.

        Joining rows are equated with the bucket witness as they arrive;
        merges fired along the way queue the delta re-keys that
        :meth:`_drain` processes afterwards.
        """
        engine = self._engine
        tableau = self._tableau
        resolve = tableau.resolve
        equate = tableau.equate
        prof = profiling.active()
        for fd_index, lhs in enumerate(engine._lhs):
            if prof is not None:
                prof.deadline_checks += 1
            check_deadline()  # one budget check per FD pass over the rows
            rhs = engine._rhs[fd_index]
            buckets = self._buckets[fd_index]
            for i, raw in enumerate(raw_rows):
                key = tuple(resolve(raw[a]) for a in lhs)
                witness = buckets.get(key)
                if witness is None:
                    buckets[key] = i
                    self._register(fd_index, key)
                else:
                    other = raw_rows[witness]
                    for b in rhs:
                        left = resolve(raw[b])
                        right = resolve(other[b])
                        if left != right:
                            if not equate(left, right):
                                return engine._fds[fd_index]
                            self._steps += 1
                            if prof is not None:
                                prof.chase_steps += 1
        return None

    def _drain(self, raw_rows: list) -> Optional[FunctionalDependency]:
        """Re-key the buckets dirtied by each merge until no events remain.

        A bucket whose key mentions the absorbed representative is re-filed
        under its coarsened key; when that key is already taken the two
        buckets merge by equating their witnesses' RHS cells (which may queue
        further merges).  Returns the violated FD on a constant clash.
        """
        engine = self._engine
        tableau = self._tableau
        resolve = tableau.resolve
        equate = tableau.equate
        merges = self._merges
        occurrences = self._occurrences
        prof = profiling.active()
        while merges:
            if prof is not None:
                prof.chase_steps += 1
                prof.deadline_checks += 1
            check_deadline()  # one budget check per merge event
            _winner, loser = merges.popleft()
            entries = occurrences.pop(loser, None)
            if not entries:
                continue
            for fd_index, key in entries:
                buckets = self._buckets[fd_index]
                witness = buckets.get(key)
                if witness is None:
                    continue  # bucket already re-keyed under an earlier event
                del buckets[key]
                new_key = tuple(resolve(component) for component in key)
                other = buckets.get(new_key)
                if other is None:
                    buckets[new_key] = witness
                    self._register(fd_index, new_key)
                    continue
                # Two buckets coarsened onto one key: their rows now agree on
                # the LHS, so equate the witnesses' RHS cells once.
                raw = raw_rows[witness]
                kept = raw_rows[other]
                for b in engine._rhs[fd_index]:
                    left = resolve(raw[b])
                    right = resolve(kept[b])
                    if left != right:
                        if not equate(left, right):
                            return engine._fds[fd_index]
                        self._steps += 1
        return None


def chase_fds_indexed(tableau: Tableau, fds: Sequence[FunctionalDependency]) -> ChaseResult:
    """One-shot indexed chase of a tableau (drop-in for :func:`chase_fds`)."""
    return ChaseEngine(fds).chase(tableau)


def chase_database_indexed(
    database: Database, fds: Sequence[FunctionalDependency]
) -> ChaseResult:
    """One-shot indexed chase of a database (drop-in for :func:`chase_database`)."""
    return ChaseEngine(fds).chase_database(database)


def chase_many(
    databases: Iterable[Database], fds: Sequence[FunctionalDependency]
) -> list[ChaseResult]:
    """Chase several databases with one FD set, amortizing preprocessing."""
    return ChaseEngine(fds).chase_many(databases)
