"""Relation schemes and database schemes (paper §2.1).

A *relation scheme* is an object ``R[U]`` where ``R`` is a name and ``U`` a
set of attributes.  A *database scheme* is a finite set of relation schemes
``D = {R1[U1], ..., Rn[Un]}``.

The paper stresses (§3.1) that under partition semantics the *attributes*
carry all the meaning: two relation schemes over the same attributes have the
same semantics regardless of their names.  :meth:`RelationScheme.semantic_key`
exposes exactly that.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Union

from repro.errors import SchemaError
from repro.relational.attributes import Attribute, AttributeSet, as_attribute_set


class RelationScheme:
    """A named relation scheme ``R[U]``.

    ``name`` is the relation name ``R``; ``attributes`` is the attribute set
    ``U``.  Instances are immutable, hashable and compare structurally on
    *both* name and attributes (syntactic identity); use
    :meth:`semantic_key` for the attribute-only identity relevant to
    partition semantics.
    """

    __slots__ = ("_name", "_attributes")

    def __init__(self, name: str, attributes: Union[str, Iterable[Attribute]]) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"relation scheme name must be a non-empty string, got {name!r}")
        attrs = as_attribute_set(attributes)
        if not attrs:
            raise SchemaError(f"relation scheme {name!r} must have at least one attribute")
        self._name = name
        self._attributes = attrs

    @property
    def name(self) -> str:
        """The relation name ``R``."""
        return self._name

    @property
    def attributes(self) -> AttributeSet:
        """The attribute set ``U``."""
        return self._attributes

    def semantic_key(self) -> AttributeSet:
        """The partition-semantics identity of this scheme: its attributes.

        Under partition semantics the meaning of ``R[U]`` is the product of
        the atomic partitions of the attributes in ``U`` — the name ``R`` is
        irrelevant (paper §3.1, remark after the meaning of relation
        schemes).
        """
        return self._attributes

    def rename(self, new_name: str) -> "RelationScheme":
        """Return a scheme with the same attributes under a different name."""
        return RelationScheme(new_name, self._attributes)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self._attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationScheme):
            return NotImplemented
        return self._name == other._name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        return f"RelationScheme({self._name!r}, {self._attributes.sorted()!r})"

    def __str__(self) -> str:
        return f"{self._name}[{self._attributes}]"


class DatabaseScheme:
    """A database scheme: a finite set of relation schemes with distinct names."""

    __slots__ = ("_schemes",)

    def __init__(self, schemes: Iterable[RelationScheme]) -> None:
        by_name: dict[str, RelationScheme] = {}
        for scheme in schemes:
            if not isinstance(scheme, RelationScheme):
                raise SchemaError(f"expected RelationScheme, got {scheme!r}")
            if scheme.name in by_name:
                raise SchemaError(f"duplicate relation scheme name {scheme.name!r}")
            by_name[scheme.name] = scheme
        if not by_name:
            raise SchemaError("a database scheme must contain at least one relation scheme")
        self._schemes: Mapping[str, RelationScheme] = dict(sorted(by_name.items()))

    @property
    def universe(self) -> AttributeSet:
        """The union ``U`` of all attributes mentioned by any relation scheme."""
        attrs: AttributeSet = AttributeSet()
        for scheme in self._schemes.values():
            attrs = attrs | scheme.attributes
        return attrs

    def scheme(self, name: str) -> RelationScheme:
        """The relation scheme named ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._schemes[name]
        except KeyError as exc:
            raise SchemaError(f"no relation scheme named {name!r}") from exc

    @property
    def names(self) -> list[str]:
        """The relation scheme names in sorted order."""
        return list(self._schemes)

    def __iter__(self) -> Iterator[RelationScheme]:
        return iter(self._schemes.values())

    def __len__(self) -> int:
        return len(self._schemes)

    def __contains__(self, name: object) -> bool:
        return name in self._schemes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseScheme):
            return NotImplemented
        return dict(self._schemes) == dict(other._schemes)

    def __hash__(self) -> int:
        return hash(tuple(self._schemes.items()))

    def __repr__(self) -> str:
        return f"DatabaseScheme({list(self._schemes.values())!r})"

    def __str__(self) -> str:
        return "{" + ", ".join(str(s) for s in self._schemes.values()) + "}"
