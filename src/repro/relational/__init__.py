"""Relational substrate: attributes, tuples, relations, databases, FDs, MVDs, chase.

This package implements §2.1 of the paper (the conventional relational
vocabulary) plus the classical machinery the paper builds on: relational
algebra, FD closure/implication, the chase with labelled nulls, and
Honeyman's weak-instance consistency test.
"""

from repro.relational.attributes import Attribute, AttributeSet, Symbol, as_attribute_set
from repro.relational.chase import (
    ChaseResult,
    MergeListener,
    Tableau,
    TableauValue,
    chase_database,
    chase_fds,
    representative_instance,
)
from repro.relational.chase_engine import (
    ChaseEngine,
    chase_database_indexed,
    chase_fds_indexed,
    chase_many,
)
from repro.relational.database import Database
from repro.relational.functional_dependencies import (
    FunctionalDependency,
    candidate_keys,
    closure,
    equivalent,
    implies,
    minimal_cover,
    parse_fd_set,
    project_fds,
)
from repro.relational.multivalued_dependencies import MultivaluedDependency, theorem5_mvd
from repro.relational.relations import Relation
from repro.relational.schema import DatabaseScheme, RelationScheme
from repro.relational.tuples import Row, row_from_string
from repro.relational.weak_instance import (
    WeakInstanceResult,
    is_consistent_with_fds,
    is_weak_instance,
    weak_instance_consistency,
    weak_instance_with_fixed_domains,
)

__all__ = [
    "Attribute",
    "AttributeSet",
    "Symbol",
    "as_attribute_set",
    "Row",
    "row_from_string",
    "RelationScheme",
    "DatabaseScheme",
    "Relation",
    "Database",
    "FunctionalDependency",
    "closure",
    "implies",
    "equivalent",
    "minimal_cover",
    "candidate_keys",
    "project_fds",
    "parse_fd_set",
    "MultivaluedDependency",
    "theorem5_mvd",
    "Tableau",
    "TableauValue",
    "MergeListener",
    "ChaseResult",
    "chase_fds",
    "chase_database",
    "representative_instance",
    "ChaseEngine",
    "chase_fds_indexed",
    "chase_database_indexed",
    "chase_many",
    "WeakInstanceResult",
    "is_weak_instance",
    "weak_instance_consistency",
    "is_consistent_with_fds",
    "weak_instance_with_fixed_domains",
]
