"""Relational algebra over :class:`~repro.relational.relations.Relation`.

The conclusion of the paper (§7) points out that assigning partition
semantics to the relational model does not interfere with the familiar
algebraic operations on relations — selection, projection, Cartesian product,
union, difference, etc. remain purely syntactic manipulations.  This module
implements those operations (plus intersection, renaming, natural join and
division) so that the library is a usable relational substrate and the
examples can build realistic multi-relation databases.

All operations are pure functions returning new :class:`Relation` objects.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SchemaError
from repro.relational.attributes import Attribute, AttributeSet, as_attribute_set
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


def _derived_name(base: str, suffix: str, name: str | None) -> str:
    """Pick a name for a derived relation (explicit name wins)."""
    return name if name is not None else f"{base}_{suffix}"


def project(relation: Relation, attributes: AttributeSet | str, name: str | None = None) -> Relation:
    """The projection ``r[X]``: restrict every tuple to ``X`` and remove duplicates."""
    target = as_attribute_set(attributes)
    if not target:
        raise SchemaError("cannot project on the empty attribute set")
    missing = target - relation.attributes
    if missing:
        raise SchemaError(f"cannot project on missing attributes {sorted(missing)}")
    scheme = RelationScheme(_derived_name(relation.name, "proj", name), target)
    rows = {row.restrict(target) for row in relation.rows}
    return Relation(scheme, rows)


def select(
    relation: Relation, predicate: Callable[[Row], bool], name: str | None = None
) -> Relation:
    """Selection ``σ_predicate(r)``: keep the rows on which ``predicate`` is true."""
    scheme = RelationScheme(_derived_name(relation.name, "sel", name), relation.attributes)
    rows = {row for row in relation.rows if predicate(row)}
    return Relation(scheme, rows)


def select_eq(relation: Relation, attribute: Attribute, symbol: str, name: str | None = None) -> Relation:
    """The common special case ``σ_{A = a}(r)``."""
    if attribute not in relation.attributes:
        raise SchemaError(f"relation {relation.name!r} has no attribute {attribute!r}")
    return select(relation, lambda row: row[attribute] == symbol, name=name)


def rename(
    relation: Relation, mapping: dict[Attribute, Attribute], name: str | None = None
) -> Relation:
    """Rename attributes according to ``mapping``; unmentioned attributes keep their names."""
    unknown = set(mapping) - set(relation.attributes)
    if unknown:
        raise SchemaError(f"cannot rename missing attributes {sorted(unknown)}")
    new_attrs = [mapping.get(a, a) for a in relation.attributes.sorted()]
    if len(set(new_attrs)) != len(new_attrs):
        raise SchemaError("attribute renaming produces duplicate attribute names")
    scheme = RelationScheme(_derived_name(relation.name, "ren", name), new_attrs)
    rows = {
        Row({mapping.get(a, a): row[a] for a in relation.attributes}) for row in relation.rows
    }
    return Relation(scheme, rows)


def _require_same_attributes(left: Relation, right: Relation, operation: str) -> None:
    if left.attributes != right.attributes:
        raise SchemaError(
            f"{operation} requires identical attribute sets, got "
            f"{left.attributes.sorted()} and {right.attributes.sorted()}"
        )


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set union of two relations over the same attributes."""
    _require_same_attributes(left, right, "union")
    scheme = RelationScheme(_derived_name(left.name, "union", name), left.attributes)
    return Relation(scheme, left.rows | right.rows)


def difference(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set difference ``left - right`` of two relations over the same attributes."""
    _require_same_attributes(left, right, "difference")
    scheme = RelationScheme(_derived_name(left.name, "diff", name), left.attributes)
    return Relation(scheme, left.rows - right.rows)


def intersection(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Set intersection of two relations over the same attributes."""
    _require_same_attributes(left, right, "intersection")
    scheme = RelationScheme(_derived_name(left.name, "inter", name), left.attributes)
    return Relation(scheme, left.rows & right.rows)


def cartesian_product(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Cartesian product of two relations with disjoint attribute sets."""
    overlap = left.attributes & right.attributes
    if overlap:
        raise SchemaError(
            f"cartesian product requires disjoint attributes, shared: {sorted(overlap)}"
        )
    scheme = RelationScheme(
        _derived_name(left.name, "times", name), left.attributes | right.attributes
    )
    rows = {lrow.merge(rrow) for lrow in left.rows for rrow in right.rows}
    return Relation(scheme, rows)


def natural_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Natural join: combine tuples that agree on all shared attributes.

    With disjoint attribute sets this degenerates to the Cartesian product;
    with identical attribute sets it degenerates to intersection.
    """
    shared = left.attributes & right.attributes
    scheme = RelationScheme(
        _derived_name(left.name, "join", name), left.attributes | right.attributes
    )
    if not shared:
        return Relation(
            scheme, {lrow.merge(rrow) for lrow in left.rows for rrow in right.rows}
        )
    # Hash-join on the shared attributes.
    index: dict[tuple[str, ...], list[Row]] = {}
    for rrow in right.rows:
        index.setdefault(rrow.values_on(shared), []).append(rrow)
    rows = set()
    for lrow in left.rows:
        for rrow in index.get(lrow.values_on(shared), ()):
            rows.add(lrow.merge(rrow))
    return Relation(scheme, rows)


def divide(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Relational division ``left ÷ right``.

    ``right``'s attributes must be a proper subset of ``left``'s.  The result
    contains the tuples over ``left.attributes - right.attributes`` that are
    paired in ``left`` with *every* tuple of ``right``.
    """
    if not right.attributes < left.attributes:
        raise SchemaError("division requires the divisor attributes to be a proper subset")
    keep = left.attributes - right.attributes
    scheme = RelationScheme(_derived_name(left.name, "div", name), keep)
    if not right.rows:
        return project(left, keep, name=scheme.name)
    candidates = {row.restrict(keep) for row in left.rows}
    left_pairs = {(row.restrict(keep), row.restrict(right.attributes)) for row in left.rows}
    rows = {
        cand
        for cand in candidates
        if all((cand, div_row) in left_pairs for div_row in right.rows)
    }
    return Relation(scheme, rows)
