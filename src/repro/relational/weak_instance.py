"""Weak instances and Honeyman's weak-satisfaction test (paper §2.1, §4.3, §6.2).

A relation ``w`` over the full attribute universe ``U`` is a *weak instance*
for a database ``d`` iff every tuple of every relation ``ri`` (over ``Ui``)
of ``d`` appears in the projection ``w[Ui]``.  A database ``d`` is
*consistent with a set of FDs Σ under the weak instance assumption* iff some
weak instance for ``d`` satisfies Σ.

Honeyman's test decides this in polynomial time: chase the representative
instance of ``d`` with Σ; consistency holds iff the chase never equates two
distinct constants.  Moreover the chased tableau itself (with nulls rendered
as fresh symbols) *is* a weak instance satisfying Σ whenever the test
succeeds, which is exactly the constructive content the paper's Theorems 6
and 7 rely on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConsistencyError
from repro.relational.attributes import AttributeSet, as_attribute_set
from repro.relational.chase import ChaseResult
from repro.relational.chase_engine import ChaseEngine
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation


def is_weak_instance(candidate: Relation, database: Database) -> bool:
    """True iff ``candidate`` is a weak instance for ``database``.

    ``candidate`` must be a relation over (at least) the database universe;
    every tuple of every database relation must appear in the projection of
    ``candidate`` onto that relation's attributes.
    """
    universe = database.universe
    if not universe <= candidate.attributes:
        raise ConsistencyError(
            "a weak instance must be defined over every attribute of the database"
        )
    for relation in database.relations:
        projected = candidate.project(relation.attributes)
        for row in relation.rows:
            if row not in projected.rows:
                return False
    return True


@dataclass(frozen=True)
class WeakInstanceResult:
    """Result of the weak-instance consistency test.

    ``consistent`` says whether a weak instance satisfying the FDs exists;
    when it does, ``witness`` is one such weak instance (the chased
    representative instance with nulls rendered as fresh symbols) and
    ``chase`` carries the underlying chase result for inspection.
    """

    consistent: bool
    witness: Optional[Relation]
    chase: ChaseResult


def weak_instance_consistency(
    database: Database,
    fds: Sequence[FunctionalDependency],
    witness_name: str = "weak_instance",
    engine: Optional[ChaseEngine] = None,
) -> WeakInstanceResult:
    """Honeyman's test: is ``database`` consistent with ``fds`` under the weak-instance assumption?

    Runs the FD chase on the representative instance — via the indexed,
    delta-driven :class:`~repro.relational.chase_engine.ChaseEngine` (the
    naive :func:`~repro.relational.chase.chase_fds` produces the identical
    tableau and survives as a cross-check oracle).  Callers issuing many
    tests against one FD set can pass a prebuilt ``engine`` to amortize the
    FD preprocessing; it must have been built from the same dependencies as
    ``fds`` (a mismatch raises, rather than silently chasing with the
    engine's set and reporting the verdict against the other).  On success
    the chased tableau is materialized into an actual weak instance
    satisfying the FDs and returned as the witness.
    """
    if engine is None:
        engine = ChaseEngine(fds)
    elif set(engine.fds) != set(fds):
        raise ConsistencyError(
            "the prebuilt chase engine was constructed from a different FD set "
            "than the one being tested"
        )
    result = engine.chase_database(database)
    if not result.consistent:
        return WeakInstanceResult(False, None, result)
    witness = result.tableau.to_relation(witness_name)
    return WeakInstanceResult(True, witness, result)


def is_consistent_with_fds(database: Database, fds: Sequence[FunctionalDependency]) -> bool:
    """Boolean convenience wrapper around :func:`weak_instance_consistency`."""
    return weak_instance_consistency(database, fds).consistent


def weak_instance_with_fixed_domains(
    database: Database, fds: Sequence[FunctionalDependency]
) -> Optional[Relation]:
    """Search for a weak instance ``w`` satisfying ``fds`` with ``w[A] = d[A]`` for every ``A``.

    This is the *CAD + EAP* variant of consistency (Theorem 6b / Theorem 11):
    the weak instance may only use symbols already present in the database
    under each attribute.  The problem is NP-complete; this function simply
    delegates to the exact solver in :mod:`repro.consistency.cad` and returns
    the witness relation (or ``None``).  It is re-exported here so that the
    two variants of the weak-instance assumption live side by side.
    """
    from repro.consistency.cad import cad_consistency

    outcome = cad_consistency(database, fds)
    return outcome.witness if outcome.consistent else None


def projection_containment_report(candidate: Relation, database: Database) -> dict[str, bool]:
    """Per-relation report of the weak-instance containment condition.

    Useful for debugging inconsistent databases: maps each relation name to
    whether its tuples are all contained in the corresponding projection of
    ``candidate``.
    """
    report: dict[str, bool] = {}
    for relation in database.relations:
        projected = candidate.project(relation.attributes)
        report[relation.name] = all(row in projected.rows for row in relation.rows)
    return report


def universe_of(database: Database, fds: Sequence[FunctionalDependency]) -> AttributeSet:
    """The attribute universe spanned by a database together with a set of FDs."""
    attrs = database.universe
    for fd in fds:
        attrs = attrs | as_attribute_set(fd.attributes)
    return attrs
