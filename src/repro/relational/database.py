"""Databases: collections of relations over a database scheme (paper §2.1).

A database ``d = {r1, ..., rn}`` associates each relation scheme ``Ri[Ui]``
of a database scheme ``D`` with a relation ``ri`` over ``Ui``.  The paper's
notation ``d[A]`` — the set of symbols appearing under attribute ``A``
anywhere in the database — is :meth:`Database.symbols_under`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.attributes import Attribute, AttributeSet, Symbol
from repro.relational.relations import Relation
from repro.relational.schema import DatabaseScheme


class Database:
    """An immutable database: a set of relations with pairwise-distinct names."""

    __slots__ = ("_relations", "_scheme")

    def __init__(self, relations: Iterable[Relation]) -> None:
        by_name: dict[str, Relation] = {}
        for relation in relations:
            if not isinstance(relation, Relation):
                raise SchemaError(f"expected Relation, got {relation!r}")
            if relation.name in by_name:
                raise SchemaError(f"duplicate relation name {relation.name!r} in database")
            by_name[relation.name] = relation
        if not by_name:
            raise SchemaError("a database must contain at least one relation")
        self._relations = dict(sorted(by_name.items()))
        self._scheme = DatabaseScheme([relation.scheme for relation in self._relations.values()])

    @classmethod
    def single(cls, relation: Relation) -> "Database":
        """A database consisting of one relation (the common case in §4.1–4.2)."""
        return cls([relation])

    # -- accessors -----------------------------------------------------------
    @property
    def scheme(self) -> DatabaseScheme:
        """The database scheme ``D``."""
        return self._scheme

    @property
    def universe(self) -> AttributeSet:
        """The union ``U`` of all attributes of all relation schemes."""
        return self._scheme.universe

    def relation(self, name: str) -> Relation:
        """The relation named ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"no relation named {name!r} in database") from exc

    @property
    def relations(self) -> list[Relation]:
        """The relations of the database in sorted-name order."""
        return list(self._relations.values())

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(self._relations.items()))

    # -- paper notation -------------------------------------------------------
    def symbols_under(self, attribute: Attribute) -> frozenset[Symbol]:
        """``d[A]``: the symbols appearing under attribute ``A`` in any relation.

        Returns the empty set when no relation scheme mentions ``A`` (the
        paper only uses ``d[A]`` for attributes of the universe, but a total
        function is more convenient for callers).
        """
        symbols: set[Symbol] = set()
        for relation in self._relations.values():
            if attribute in relation.attributes:
                symbols |= relation.column(attribute)
        return frozenset(symbols)

    def active_domain(self) -> frozenset[Symbol]:
        """All symbols appearing anywhere in the database."""
        return frozenset(s for relation in self._relations.values() for s in relation.active_domain())

    def total_tuples(self) -> int:
        """Total number of tuples across all relations (a size measure for benchmarks)."""
        return sum(len(relation) for relation in self._relations.values())

    def with_relation(self, relation: Relation) -> "Database":
        """Return a database with ``relation`` added or replaced (by name)."""
        relations = dict(self._relations)
        relations[relation.name] = relation
        return Database(relations.values())

    def __repr__(self) -> str:
        return f"Database({list(self._relations)!r}, {self.total_tuples()} tuples)"

    def __str__(self) -> str:
        return "\n\n".join(str(relation) for relation in self._relations.values())
