"""Encoding undirected graphs as relations (Example e, §3.2; Theorem 4, §4.2).

Example e of the paper represents an undirected graph as a single relation
over three attributes — ``A`` (head), ``B`` (tail), ``C`` (component) — with,
for every edge ``{a, b}``, the four tuples ``abc, bac, aac, bbc`` where ``c``
is the component label.  The PD ``C = A + B`` then states exactly that ``C``
labels the connected component of the edge, which is the paper's flagship
example of a constraint FDs cannot express.

This module provides both directions of the encoding:

* :func:`graph_to_relation` — build the relation from an edge list (the
  component labels are computed, so the resulting relation always satisfies
  ``C = A + B``);
* :func:`graph_to_relation_with_labels` — build the relation from an edge
  list and *given* component labels (possibly wrong — used to produce
  relations that violate the PD);
* :func:`relation_to_graph` — read the edge list back out of a relation.

An undirected graph is represented as a pair ``(vertices, edges)`` with
``edges`` a collection of 2-element (or 1-element, for self-loops) sets.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import SchemaError
from repro.relational.relations import Relation
from repro.relational.tuples import Row

#: Vertices can be any hashable value; they are rendered to symbols with str().
Vertex = Hashable


def _vertex_symbol(vertex: Vertex) -> str:
    return f"v{vertex}"


def connected_components(vertices: Iterable[Vertex], edges: Iterable[Iterable[Vertex]]) -> dict[Vertex, int]:
    """Connected components via union-find; returns a component index per vertex.

    Component indexes are normalized so that the component containing the
    smallest vertex (by string rendering) gets index 1, the next gets 2, etc.
    — this keeps the generated relations deterministic.
    """
    vertex_list = sorted(set(vertices), key=repr)
    parent: dict[Vertex, Vertex] = {v: v for v in vertex_list}

    def find(v: Vertex) -> Vertex:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for edge in edges:
        endpoints = list(edge)
        if not endpoints:
            continue
        first = endpoints[0]
        for other in endpoints[1:]:
            if first not in parent or other not in parent:
                raise SchemaError(f"edge {endpoints!r} mentions a vertex outside the vertex set")
            root_a, root_b = find(first), find(other)
            if root_a != root_b:
                parent[root_a] = root_b

    component_of: dict[Vertex, int] = {}
    next_index = 1
    for vertex in vertex_list:
        root = find(vertex)
        if root not in component_of:
            component_of[root] = next_index
            next_index += 1
    return {vertex: component_of[find(vertex)] for vertex in vertex_list}


def graph_to_relation(
    vertices: Iterable[Vertex],
    edges: Iterable[Iterable[Vertex]],
    name: str = "graph",
) -> Relation:
    """Example e: the relation encoding of a graph, with *correct* component labels.

    The resulting relation always satisfies ``C = A + B`` (a fact the test
    suite checks against both Definition 7 and the direct characterization).
    Isolated vertices are encoded by the tuple ``vvc`` alone.
    """
    vertex_list = sorted(set(vertices), key=repr)
    edge_list = [tuple(sorted(set(edge), key=repr)) for edge in edges]
    components = connected_components(vertex_list, edge_list)
    return graph_to_relation_with_labels(
        vertex_list, edge_list, {v: f"c{components[v]}" for v in vertex_list}, name=name
    )


def graph_to_relation_with_labels(
    vertices: Iterable[Vertex],
    edges: Iterable[Iterable[Vertex]],
    labels: Mapping[Vertex, str],
    name: str = "graph",
) -> Relation:
    """The Example e encoding with caller-supplied component labels.

    Labels need not be correct; supplying wrong labels yields relations that
    violate ``C = A + B``, which the expressiveness tests and the
    connectivity benchmark need.  All endpoints of an edge must carry the
    same label (otherwise the four tuples of the edge would disagree on ``C``
    within the same edge, which the encoding cannot represent).
    """
    rows: set[Row] = set()
    vertex_list = sorted(set(vertices), key=repr)
    for vertex in vertex_list:
        if vertex not in labels:
            raise SchemaError(f"no component label supplied for vertex {vertex!r}")
        symbol = _vertex_symbol(vertex)
        rows.add(Row({"A": symbol, "B": symbol, "C": labels[vertex]}))
    for edge in edges:
        endpoints = sorted(set(edge), key=repr)
        if not endpoints:
            continue
        if any(v not in set(vertex_list) for v in endpoints):
            raise SchemaError(f"edge {endpoints!r} mentions a vertex outside the vertex set")
        if len(endpoints) == 1:
            continue  # self-loop: the diagonal tuple is already there
        if len(endpoints) != 2:
            raise SchemaError(f"edges must have at most two endpoints, got {endpoints!r}")
        a, b = endpoints
        if labels[a] != labels[b]:
            raise SchemaError(
                f"edge {endpoints!r} joins vertices with different component labels"
            )
        label = labels[a]
        sa, sb = _vertex_symbol(a), _vertex_symbol(b)
        rows.add(Row({"A": sa, "B": sb, "C": label}))
        rows.add(Row({"A": sb, "B": sa, "C": label}))
    return Relation.from_rows(name, "ABC", rows)


def relation_to_graph(relation: Relation) -> tuple[list[str], list[frozenset[str]]]:
    """Read the vertex and edge lists back from an Example e relation.

    Vertices are the symbols occurring under ``A`` (equivalently ``B``);
    edges are the unordered pairs ``{t[A], t[B]}`` of non-diagonal tuples.
    """
    if set(relation.attributes) != {"A", "B", "C"}:
        raise SchemaError("an Example e relation must have attributes A, B, C")
    vertices = sorted(relation.column("A") | relation.column("B"))
    edges: set[frozenset[str]] = set()
    for row in relation.rows:
        if row["A"] != row["B"]:
            edges.add(frozenset({row["A"], row["B"]}))
    return vertices, sorted(edges, key=sorted)
