"""Graph substrate: the Example e encoding, connectivity PDs, and the Theorem 4 family."""

from repro.graphs.connectivity import (
    component_labels_from_relation,
    components_by_partition_sum,
    connectivity_pd,
    number_of_components,
    satisfies_connectivity_pd,
)
from repro.graphs.encoding import (
    Vertex,
    connected_components,
    graph_to_relation,
    graph_to_relation_with_labels,
    relation_to_graph,
)
from repro.graphs.families import (
    cycle_graph,
    disjoint_cliques,
    mislabeled_path_relation,
    path_graph,
    path_relation,
    random_graph,
    theorem4_designated_tuples,
    theorem4_path_relation,
)

__all__ = [
    "Vertex",
    "connected_components",
    "graph_to_relation",
    "graph_to_relation_with_labels",
    "relation_to_graph",
    "connectivity_pd",
    "components_by_partition_sum",
    "satisfies_connectivity_pd",
    "component_labels_from_relation",
    "number_of_components",
    "theorem4_path_relation",
    "theorem4_designated_tuples",
    "path_graph",
    "cycle_graph",
    "disjoint_cliques",
    "random_graph",
    "path_relation",
    "mislabeled_path_relation",
]
