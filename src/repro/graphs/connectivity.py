"""Connectivity via partition dependencies (Example e, Theorem 4).

The PD ``C = A + B`` over the Example e encoding states that ``C`` is the
connected-component label.  This module offers three independent ways to
check it — Definition 7 (canonical interpretation), the direct chain
characterization (II) of §4.1, and a plain union-find recomputation of the
components — plus the component computation itself as a *partition sum*,
which is the algorithmic reading of the paper's semantics.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dependencies.pd import PartitionDependency
from repro.dependencies.satisfaction import (
    relation_satisfies_pd,
    satisfies_order_sum_characterization,
    satisfies_sum_characterization,
)
from repro.expressions.ast import attr
from repro.graphs.encoding import Vertex, connected_components, relation_to_graph
from repro.partitions.kernel import Universe
from repro.partitions.partition import Partition
from repro.relational.relations import Relation


def connectivity_pd() -> PartitionDependency:
    """The PD ``C = A + B`` of Example e."""
    return PartitionDependency(attr("C"), attr("A") + attr("B"))


def components_by_partition_sum(relation: Relation) -> Partition:
    """The connected components of the encoded graph, computed as a partition sum.

    Tuples of the relation are grouped by their ``A`` value and by their
    ``B`` value; the sum of those two partitions (over tuple identifiers) is
    exactly the chain-connectivity partition of characterization (II).
    """
    rows = relation.sorted_rows()
    universe = Universe(range(1, len(rows) + 1))
    by_a = Partition.from_labels(universe, (rows[i - 1]["A"] for i in universe.elements))
    by_b = Partition.from_labels(universe, (rows[i - 1]["B"] for i in universe.elements))
    return by_a + by_b


def satisfies_connectivity_pd(relation: Relation, method: str = "canonical") -> bool:
    """Does the relation satisfy ``C = A + B``?

    ``method`` selects the route: ``"canonical"`` (Definition 7 via ``I(r)``),
    ``"direct"`` (the chain characterization (II)), or ``"order"`` for the
    one-directional ``C ≤ A + B``.  All agree on every relation; tests verify
    this and the connectivity benchmark compares their cost.
    """
    if method == "canonical":
        return relation_satisfies_pd(relation, connectivity_pd())
    if method == "direct":
        return satisfies_sum_characterization(relation, "C", "A", "B")
    if method == "order":
        return satisfies_order_sum_characterization(relation, "C", "A", "B")
    raise ValueError(f"unknown method {method!r}")


def component_labels_from_relation(relation: Relation) -> dict[str, str]:
    """Recompute correct component labels for the graph encoded by ``relation``.

    Returns a mapping from vertex symbol to a canonical component label
    ``c1, c2, ...`` — the labels the ``C`` column *should* carry for the
    relation to satisfy ``C = A + B``.
    """
    vertices, edges = relation_to_graph(relation)
    components = connected_components(vertices, edges)
    return {vertex: f"c{components[vertex]}" for vertex in vertices}


def number_of_components(vertices: Iterable[Vertex], edges: Iterable[Iterable[Vertex]]) -> int:
    """The number of connected components of a graph (direct union-find)."""
    components = connected_components(vertices, edges)
    return len(set(components.values()))
