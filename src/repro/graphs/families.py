"""Graph/relation families used in the paper's proofs and in the benchmarks.

The proof of Theorem 4 (non-first-order expressibility of ``C = A + B``)
uses the family of "path relations"

    r_i = { 1.2.0, 3.2.0, 3.4.0, 5.4.0, ..., (i-1).i.0, (i+1).i.0, (i+1).(i+2).0 }

(for even ``i``): every tuple carries component label ``0``, the tuples form
a single path of length ``i`` between the designated tuples ``1.2.0`` and
``(i+1).(i+2).0``, so the relation satisfies ``C = A + B`` but only via a
chain of length ``i`` — no first-order sentence can uniformly demand
arbitrarily long chains, which is the compactness argument.

Besides that family this module provides standard generators (paths, cycles,
disjoint unions of cliques, random graphs) used by the connectivity
benchmark and the property tests.
"""

from __future__ import annotations

import random

from repro.errors import SchemaError
from repro.graphs.encoding import graph_to_relation, graph_to_relation_with_labels
from repro.relational.relations import Relation


def theorem4_path_relation(i: int) -> Relation:
    """The relation ``r_i`` from the proof of Theorem 4 (``i`` must be even and ≥ 2).

    The designated tuples of the proof are ``1.2.0`` and ``(i+1).(i+2).0``;
    they agree on ``C`` and are chain-connected, but only through all the
    intermediate tuples.
    """
    if i < 2 or i % 2 != 0:
        raise SchemaError("the Theorem 4 family is defined for even i >= 2")
    compact_rows = ["1.2.0"]
    for odd in range(3, i + 1, 2):
        compact_rows.append(f"{odd}.{odd - 1}.0")
        compact_rows.append(f"{odd}.{odd + 1}.0")
    compact_rows.append(f"{i + 1}.{i}.0")
    compact_rows.append(f"{i + 1}.{i + 2}.0")
    return Relation.from_strings(f"r{i}", "ABC", compact_rows)


def theorem4_designated_tuples(i: int) -> tuple[str, str]:
    """The compact forms of the designated tuples ``t_i`` and ``h_i`` of the proof."""
    return ("1.2.0", f"{i + 1}.{i + 2}.0")


def path_graph(length: int) -> tuple[list[int], list[frozenset[int]]]:
    """The path graph on ``length + 1`` vertices ``0 — 1 — ... — length``."""
    if length < 0:
        raise SchemaError("path length must be non-negative")
    vertices = list(range(length + 1))
    edges = [frozenset({v, v + 1}) for v in range(length)]
    return vertices, edges


def cycle_graph(size: int) -> tuple[list[int], list[frozenset[int]]]:
    """The cycle graph on ``size`` vertices (``size ≥ 3``)."""
    if size < 3:
        raise SchemaError("a cycle needs at least three vertices")
    vertices = list(range(size))
    edges = [frozenset({v, (v + 1) % size}) for v in range(size)]
    return vertices, edges


def disjoint_cliques(count: int, size: int) -> tuple[list[tuple[int, int]], list[frozenset]]:
    """``count`` disjoint cliques of ``size`` vertices each (many components)."""
    if count < 1 or size < 1:
        raise SchemaError("need at least one clique with at least one vertex")
    vertices = [(c, v) for c in range(count) for v in range(size)]
    edges = [
        frozenset({(c, v), (c, w)})
        for c in range(count)
        for v in range(size)
        for w in range(v + 1, size)
    ]
    return vertices, edges


def random_graph(
    vertex_count: int, edge_probability: float, seed: int = 0
) -> tuple[list[int], list[frozenset[int]]]:
    """An Erdős–Rényi style random graph (deterministic for a given seed)."""
    if vertex_count < 1:
        raise SchemaError("need at least one vertex")
    if not 0.0 <= edge_probability <= 1.0:
        raise SchemaError("edge probability must be in [0, 1]")
    rng = random.Random(seed)
    vertices = list(range(vertex_count))
    edges = [
        frozenset({v, w})
        for v in range(vertex_count)
        for w in range(v + 1, vertex_count)
        if rng.random() < edge_probability
    ]
    return vertices, edges


def path_relation(length: int, name: str | None = None) -> Relation:
    """The Example e encoding of a path graph (always satisfies ``C = A + B``)."""
    vertices, edges = path_graph(length)
    return graph_to_relation(vertices, edges, name=name or f"path{length}")


def mislabeled_path_relation(length: int, name: str | None = None) -> Relation:
    """A path graph whose component column splits the path in the middle.

    The graph is connected, but the ``C`` column pretends there are two
    components, so the relation violates ``C = A + B`` (and even ``C ≤ A+B``
    holds while ``A+B ≤ C`` fails) — the negative counterpart used by tests
    and the connectivity benchmark.
    """
    if length < 1:
        raise SchemaError("need a path of length at least 1 to mislabel")
    vertices, edges = path_graph(length)
    labels = {v: "left" for v in vertices}
    relation = graph_to_relation_with_labels(vertices, edges, labels, name=name or f"badpath{length}")
    # Flip the component label of the last vertex's diagonal tuple: the graph
    # stays connected but the C column now pretends there is a second component.
    from repro.relational.tuples import Row

    rows = set(relation.rows)
    last = f"v{length}"
    rows.discard(Row({"A": last, "B": last, "C": "left"}))
    rows.add(Row({"A": last, "B": last, "C": "right"}))
    return Relation(relation.scheme, rows)
