"""Propositional substrate: CNF formulas and NOT-ALL-EQUAL-3SAT solvers (for Theorem 11)."""

from repro.sat.formulas import Clause, CnfFormula, FormulaError, Literal
from repro.sat.nae3sat import (
    complement_assignment,
    count_nae_assignments,
    nae_backtracking,
    nae_brute_force,
    nae_is_satisfiable,
    to_proper_nae3cnf,
)

__all__ = [
    "Literal",
    "Clause",
    "CnfFormula",
    "FormulaError",
    "nae_brute_force",
    "nae_backtracking",
    "nae_is_satisfiable",
    "to_proper_nae3cnf",
    "complement_assignment",
    "count_nae_assignments",
]
