"""CNF formulas and literals — the substrate for the Theorem 11 reduction (§6.1).

Theorem 11 reduces NOT-ALL-EQUAL-3SAT to consistency under CAD + EAP.  This
module provides the minimal propositional vocabulary: literals, clauses and
CNF formulas, with the usual satisfaction and the *not-all-equal* satisfaction
(every clause must contain at least one true and at least one false literal).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import ReproError


class FormulaError(ReproError):
    """A malformed propositional formula."""


@dataclass(frozen=True, order=True)
class Literal:
    """A propositional literal: a variable name and a polarity."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The opposite literal."""
        return Literal(self.variable, not self.positive)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Truth value under a (total) assignment."""
        try:
            value = assignment[self.variable]
        except KeyError as exc:
            raise FormulaError(f"assignment does not cover variable {self.variable!r}") from exc
        return value if self.positive else not value

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"

    @classmethod
    def parse(cls, text: str) -> "Literal":
        """Parse ``"x1"`` / ``"~x1"`` / ``"-x1"`` / ``"¬x1"``."""
        stripped = text.strip()
        if stripped[:1] in ("~", "-", "¬"):
            return cls(stripped[1:].strip(), False)
        if not stripped:
            raise FormulaError("cannot parse an empty literal")
        return cls(stripped, True)


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.literals:
            raise FormulaError("a clause must contain at least one literal")

    @classmethod
    def of(cls, *literals: Literal | str) -> "Clause":
        """Build a clause from literals or literal strings."""
        parsed = tuple(
            literal if isinstance(literal, Literal) else Literal.parse(literal)
            for literal in literals
        )
        return cls(parsed)

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(literal.variable for literal in self.literals)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Ordinary clause satisfaction: at least one literal true."""
        return any(literal.evaluate(assignment) for literal in self.literals)

    def nae_evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Not-all-equal satisfaction: at least one literal true and at least one false."""
        values = [literal.evaluate(assignment) for literal in self.literals]
        return any(values) and not all(values)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        return "(" + " v ".join(str(literal) for literal in self.literals) + ")"


@dataclass(frozen=True)
class CnfFormula:
    """A conjunction of clauses."""

    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise FormulaError("a CNF formula must contain at least one clause")

    @classmethod
    def of(cls, clause_specs: Iterable[Iterable[str | Literal]]) -> "CnfFormula":
        """Build from nested literal specs, e.g. ``[["x1", "x2", "~x3"], ["x2", "x3", "x4"]]``."""
        return cls(tuple(Clause.of(*spec) for spec in clause_specs))

    @property
    def variables(self) -> list[str]:
        """All variable names, sorted."""
        names: set[str] = set()
        for clause in self.clauses:
            names |= clause.variables
        return sorted(names)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Ordinary CNF satisfaction."""
        return all(clause.evaluate(assignment) for clause in self.clauses)

    def nae_evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Not-all-equal satisfaction of every clause."""
        return all(clause.nae_evaluate(assignment) for clause in self.clauses)

    def is_3cnf(self) -> bool:
        """True iff every clause has at most three literals."""
        return all(len(clause) <= 3 for clause in self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return " & ".join(str(clause) for clause in self.clauses)
