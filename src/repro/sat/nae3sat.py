"""NOT-ALL-EQUAL-3SAT: the NP-complete problem behind Theorem 11 (§6.1).

An instance is a 3CNF formula; the question is whether some truth assignment
makes every clause contain at least one true and at least one false literal.
(The paper phrases it as "one true and one false literal" — the classical
Garey–Johnson problem LO3.)

Two solvers are provided and cross-checked by the tests:

* :func:`nae_brute_force` — enumerate all assignments (fine up to ~20
  variables, and the obviously-correct oracle);
* :func:`nae_backtracking` — DPLL-style backtracking with clause-state
  pruning, noticeably faster on the benchmark sweep.

Both return a satisfying assignment or ``None``; they are the ground truth
the CAD-consistency reduction (EXP-T11 / Figure 3) is validated against.
A useful structural fact, used by the benchmark's sanity checks: under NAE
semantics an assignment works iff its complement does.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro import profiling
from repro.deadline import check_deadline
from repro.sat.formulas import Clause, CnfFormula, FormulaError, Literal


def to_proper_nae3cnf(formula: CnfFormula, fresh_prefix: str = "w_pad") -> CnfFormula:
    """Rewrite a 3CNF formula into an NAE-equisatisfiable *proper* 3CNF.

    "Proper" means every clause has exactly three distinct variables — the
    form the Garey–Johnson problem (and the Theorem 11 reduction) assumes.
    The rewriting, clause by clause:

    * clauses containing a variable with both polarities are dropped (they
      are NAE-satisfied by every assignment);
    * duplicate literals inside a clause are removed;
    * a clause with two distinct literals ``(l1 ∨ l2)`` — whose NAE reading
      is ``l1 ≠ l2`` — becomes the pair ``(l1 ∨ l2 ∨ w)``, ``(l1 ∨ l2 ∨ ¬w)``
      with a fresh variable ``w``: if ``l1 = l2`` one of the two new clauses
      has all literals equal, and if ``l1 ≠ l2`` both are NAE-satisfied for
      either value of ``w``;
    * a clause with a single distinct literal is NAE-unsatisfiable; it is
      kept verbatim so the whole formula stays unsatisfiable;
    * exact duplicates of already-emitted clauses are dropped.

    Any NAE-satisfying assignment of the result restricts to one of the
    original formula, and conversely every NAE-satisfying assignment of the
    original extends to the result (choose the fresh variables arbitrarily).
    """
    emitted: list[Clause] = []
    seen_keys: set[frozenset[tuple[str, bool]]] = set()
    counter = 0

    def emit(literals: tuple[Literal, ...]) -> None:
        key = frozenset((literal.variable, literal.positive) for literal in literals)
        if key not in seen_keys:
            seen_keys.add(key)
            emitted.append(Clause(literals))

    for clause in formula.clauses:
        polarity: dict[str, bool] = {}
        tautological = False
        for literal in clause:
            if literal.variable in polarity and polarity[literal.variable] != literal.positive:
                tautological = True
                break
            polarity[literal.variable] = literal.positive
        if tautological:
            continue
        distinct = tuple(Literal(v, p) for v, p in sorted(polarity.items()))
        if len(distinct) >= 3:
            emit(distinct)
        elif len(distinct) == 2:
            counter += 1
            fresh = f"{fresh_prefix}{counter}"
            while fresh in formula.variables:
                counter += 1
                fresh = f"{fresh_prefix}{counter}"
            emit(distinct + (Literal(fresh, True),))
            emit(distinct + (Literal(fresh, False),))
        else:
            emit(distinct)
    if not emitted:
        # Every clause was tautological: the formula is NAE-satisfied by any
        # assignment; keep one always-satisfiable proper clause on fresh
        # variables so the result is still a well-formed CNF.
        emitted.append(
            Clause(
                (
                    Literal(f"{fresh_prefix}_t1", True),
                    Literal(f"{fresh_prefix}_t2", True),
                    Literal(f"{fresh_prefix}_t3", False),
                )
            )
        )
    return CnfFormula(tuple(emitted))


def ensure_both_polarities(
    formula: CnfFormula, fresh_variables: tuple[str, str, str] = ("p_anchor", "q_anchor", "r_anchor")
) -> CnfFormula:
    """Make every variable occur both positively and negatively, preserving NAE-satisfiability.

    The Theorem 11 reduction needs both "truth value" symbols of every
    variable to occur in the constructed database, which is the case exactly
    when the variable occurs with both polarities in the formula.  When some
    variable does not, we add:

    * two *anchor* clauses ``(p ∨ ¬q ∨ r)`` and ``(¬p ∨ q ∨ ¬r)`` on three
      fresh variables — always NAE-satisfiable (e.g. ``p=q=True, r=False``)
      and giving each anchor variable both polarities;
    * for every single-polarity variable ``x``, the clause
      ``(p ∨ ¬q ∨ l)`` where ``l`` is the missing-polarity literal of ``x``
      — NAE-satisfied by ``p=True, q=True`` regardless of ``x``.

    Restricting a NAE assignment of the result to the original variables
    NAE-satisfies the original formula, and any NAE assignment of the
    original extends by ``p=q=True, r=False``.
    """
    polarities: dict[str, set[bool]] = {}
    for clause in formula.clauses:
        for literal in clause:
            polarities.setdefault(literal.variable, set()).add(literal.positive)
    missing = {
        variable: next(iter({True, False} - seen))
        for variable, seen in sorted(polarities.items())
        if len(seen) == 1
    }
    if not missing:
        return formula
    p, q, r = fresh_variables
    for fresh in fresh_variables:
        if fresh in formula.variables:
            raise FormulaError(f"fresh anchor variable {fresh!r} already occurs in the formula")
    extra: list[Clause] = [
        Clause((Literal(p, True), Literal(q, False), Literal(r, True))),
        Clause((Literal(p, False), Literal(q, True), Literal(r, False))),
    ]
    for variable, polarity in missing.items():
        extra.append(Clause((Literal(p, True), Literal(q, False), Literal(variable, polarity))))
    return CnfFormula(formula.clauses + tuple(extra))


def nae_brute_force(formula: CnfFormula) -> Optional[dict[str, bool]]:
    """Exhaustive search for a not-all-equal satisfying assignment."""
    variables = formula.variables
    for values in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if formula.nae_evaluate(assignment):
            return assignment
    return None


def nae_backtracking(formula: CnfFormula) -> Optional[dict[str, bool]]:
    """Backtracking search with per-clause pruning.

    A partial assignment is pruned as soon as some clause has all literals
    assigned true or all assigned false.  Clauses are indexed by variable, so
    assigning one variable re-evaluates only the clause gadgets that mention
    it — clauses over untouched variables cannot have changed state — instead
    of rescanning the whole formula at every search node.
    """
    variables = formula.variables
    assignment: dict[str, bool] = {}
    clauses_of: dict[str, list[Clause]] = {variable: [] for variable in variables}
    for clause in formula.clauses:
        seen: set[str] = set()
        for literal in clause:
            if literal.variable not in seen:
                seen.add(literal.variable)
                clauses_of[literal.variable].append(clause)

    def clause_dead(clause: Clause) -> bool:
        """Dead iff fully assigned with all literals true or all false."""
        values = []
        for literal in clause:
            if literal.variable not in assignment:
                return False
            values.append(literal.evaluate(assignment))
        return all(values) or not any(values)

    prof = profiling.active()

    def backtrack(index: int) -> bool:
        if prof is not None:
            prof.backtrack_nodes += 1
            prof.deadline_checks += 1
        check_deadline()  # exponential search: one budget check per node
        if index == len(variables):
            return formula.nae_evaluate(assignment)
        variable = variables[index]
        touched = clauses_of[variable]
        for value in (False, True):
            assignment[variable] = value
            if not any(clause_dead(clause) for clause in touched) and backtrack(index + 1):
                return True
            del assignment[variable]
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def nae_is_satisfiable(formula: CnfFormula, method: str = "backtracking") -> bool:
    """Boolean wrapper selecting a solver by name (``"backtracking"`` or ``"brute_force"``)."""
    solver = nae_backtracking if method == "backtracking" else nae_brute_force
    return solver(formula) is not None


def complement_assignment(assignment: dict[str, bool]) -> dict[str, bool]:
    """Flip every value — NAE satisfaction is invariant under complementation."""
    return {variable: not value for variable, value in assignment.items()}


def count_nae_assignments(formula: CnfFormula) -> int:
    """The number of NAE-satisfying assignments (brute force; used in tests and benchmarks)."""
    variables = formula.variables
    count = 0
    for values in itertools.product([False, True], repeat=len(variables)):
        if formula.nae_evaluate(dict(zip(variables, values))):
            count += 1
    return count
