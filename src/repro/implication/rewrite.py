"""The rewrite system RR of Lemma 9.1 (§5.2).

The soundness/completeness proof of ALG goes through a rewrite system RR on
partition expressions.  Reading each rule left-to-right as "the left-hand
side rewrites to the right-hand side", the rules are (x, y arbitrary
expressions; the last family comes from the equations of E):

    1.  x + x   →  x
    2.  x · y   →  x
    3.  y · x   →  x
    4.  x       →  x · x
    5.  x       →  x + y
    6.  x       →  y + x
    7.  z       →  v        whenever z = v or v = z is in E

and rewriting may happen at any subexpression position.  Lemma 9.1 states
that ``p ≤_E q`` implies ``p →→_RR q`` (and every RR step is a sound ``≤_E``
inference, so the converse holds too).

Rules 4–6 introduce a fresh, arbitrary expression ``y``, so the one-step
rewrite relation is infinitely branching.  For executable purposes we bound
the search: the fresh operands are drawn from a caller-supplied *pool* of
expressions (by default the subexpressions of the source, the target and the
equations of E — which is exactly what the shortest proofs constructed in
Lemma 9.2 use).  :func:`rewrite_reachable` then performs a bounded
breadth-first search, and :func:`find_rewrite_sequence` returns an explicit
rewrite proof when one exists within the bound.

This module is primarily proof-replay machinery for the test suite and the
EXP-T9 ablation benchmark (ALG vs explicit rewrite search); production
callers should use :mod:`repro.implication.alg`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.expressions.ast import (
    ExpressionLike,
    PartitionExpression,
    Product,
    Sum,
    all_subexpressions,
    as_expression,
)


def _replace_at(
    expression: PartitionExpression,
    target: PartitionExpression,
    replacement: PartitionExpression,
    once_only: bool = True,
) -> list[PartitionExpression]:
    """All expressions obtained by replacing one occurrence of ``target`` inside ``expression``."""
    results: list[PartitionExpression] = []
    if expression == target:
        results.append(replacement)
    if isinstance(expression, (Product, Sum)):
        constructor = Product if isinstance(expression, Product) else Sum
        for left_variant in _replace_at(expression.left, target, replacement, once_only):
            results.append(constructor(left_variant, expression.right))
        for right_variant in _replace_at(expression.right, target, replacement, once_only):
            results.append(constructor(expression.left, right_variant))
    return results


def one_step_rewrites(
    expression: PartitionExpression,
    dependencies: Sequence[PartitionDependency],
    pool: Sequence[PartitionExpression],
) -> set[PartitionExpression]:
    """All expressions reachable from ``expression`` by a single RR step.

    The fresh operand of rules 4–6 ranges over ``pool``.
    """
    results: set[PartitionExpression] = set()
    subs = list(expression.subexpressions())
    for sub in subs:
        candidates: list[PartitionExpression] = []
        # Rule 1: x + x -> x
        if isinstance(sub, Sum) and sub.left == sub.right:
            candidates.append(sub.left)
        # Rules 2, 3: x * y -> x, y * x -> x
        if isinstance(sub, Product):
            candidates.append(sub.left)
            candidates.append(sub.right)
        # Rule 4: x -> x * x
        candidates.append(Product(sub, sub))
        # Rules 5, 6: x -> x + y, x -> y + x  (y from the pool)
        for fresh in pool:
            candidates.append(Sum(sub, fresh))
            candidates.append(Sum(fresh, sub))
        # Rule 7: z -> v and v -> z for equations z = v of E
        for pd in dependencies:
            if sub == pd.left:
                candidates.append(pd.right)
            if sub == pd.right:
                candidates.append(pd.left)
        for candidate in candidates:
            if candidate == sub:
                continue
            results.update(_replace_at(expression, sub, candidate))
    results.discard(expression)
    return results


def default_pool(
    source: ExpressionLike,
    target: ExpressionLike,
    dependencies: Iterable[PartitionDependencyLike],
) -> list[PartitionExpression]:
    """The default fresh-operand pool: every subexpression of source, target and E."""
    pds = [as_partition_dependency(pd) for pd in dependencies]
    roots = [as_expression(source), as_expression(target)]
    for pd in pds:
        roots.extend([pd.left, pd.right])
    return sorted(all_subexpressions(roots), key=lambda e: (e.size(), str(e)))


def rewrite_reachable(
    source: ExpressionLike,
    target: ExpressionLike,
    dependencies: Iterable[PartitionDependencyLike] = (),
    max_steps: int = 6,
    max_size: Optional[int] = None,
    pool: Optional[Sequence[PartitionExpression]] = None,
) -> bool:
    """Bounded test of ``source →→_RR target``.

    ``max_steps`` bounds the rewrite-sequence length and ``max_size`` bounds
    the size of intermediate expressions (default: a small multiple of the
    endpoints' sizes).  A ``True`` answer is a genuine RR derivation; a
    ``False`` answer only means no derivation was found within the bounds.
    """
    return find_rewrite_sequence(source, target, dependencies, max_steps, max_size, pool) is not None


def find_rewrite_sequence(
    source: ExpressionLike,
    target: ExpressionLike,
    dependencies: Iterable[PartitionDependencyLike] = (),
    max_steps: int = 6,
    max_size: Optional[int] = None,
    pool: Optional[Sequence[PartitionExpression]] = None,
) -> Optional[list[PartitionExpression]]:
    """Search (BFS) for an explicit RR rewrite sequence from ``source`` to ``target``."""
    pds = [as_partition_dependency(pd) for pd in dependencies]
    start = as_expression(source)
    goal = as_expression(target)
    if pool is None:
        pool = default_pool(start, goal, pds)
    if max_size is None:
        max_size = 2 * max(start.size(), goal.size()) + max((pd.size() for pd in pds), default=0)

    if start == goal:
        return [start]
    frontier: deque[PartitionExpression] = deque([start])
    parents: dict[PartitionExpression, PartitionExpression] = {start: start}
    depth: dict[PartitionExpression, int] = {start: 0}
    while frontier:
        current = frontier.popleft()
        if depth[current] >= max_steps:
            continue
        for nxt in one_step_rewrites(current, pds, pool):
            if nxt.size() > max_size or nxt in parents:
                continue
            parents[nxt] = current
            depth[nxt] = depth[current] + 1
            if nxt == goal:
                chain = [nxt]
                while chain[-1] != start:
                    chain.append(parents[chain[-1]])
                return list(reversed(chain))
            frontier.append(nxt)
    return None
