"""An incremental, congruence-collapsing ALG closure (the implication hot path).

:func:`repro.implication.alg.alg_closure` recomputes the whole digraph ``Γ``
from scratch for a fixed vertex set.  Every realistic caller, however, issues
a *stream* of queries against one PD set — the Theorem 12 normalization asks
for all ``A ≤ B`` pairs, the quotient construction classifies a growing pool
of expressions, batched FD implication translates many targets — and each new
query drags a handful of new subexpressions into ``V``.  Recomputing Γ per
query throws away almost all of the work.

:class:`ImplicationIndex` keeps the ALG worklist state alive between calls:

* **Incremental vertices** — :meth:`add_expressions` registers only the
  missing subexpressions and *resumes* rule propagation from the existing
  relation: a new composite catches up on the arcs its operands already have
  (rules 2–5 restricted to the new vertex) and the worklist derives the rest.
  :meth:`add_dependencies` likewise extends ``E`` by seeding the two new
  equation arcs and propagating only their consequences.
* **Congruence classes** — vertices provably Γ-equivalent (arcs both ways,
  i.e. ``p ≤_E q`` and ``q ≤_E p``) are collapsed into one class via
  union-find with deterministic representative election (smallest vertex id
  wins, mirroring the chase engine's representative election).  Arcs are kept
  between class representatives only, so successor/predecessor sets — and
  hence transitivity propagation — stay small when ``E`` forces many
  equalities (FD-style chains collapse whole towers of expressions).

Soundness of the collapse: Γ is transitively closed, so two-way arcs make the
members' successor and predecessor sets agree; the class representative
carries them once.  On a merge the absorbed class's arcs are re-enqueued so
rules that key on composite structure (a sum/product having an operand in the
class) observe the enlarged class — this is what keeps the fixpoint identical
to the from-scratch closure, which ``tests/test_implication_index.py``
verifies against both :func:`~repro.implication.alg.alg_closure` and
:func:`~repro.implication.alg.alg_closure_naive` on randomized interleavings.

The index never forgets: dependencies and vertices can only be added, which
is exactly the monotone shape of ALG (rules only ever insert arcs).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.dependencies.pd import (
    PartitionDependency,
    PartitionDependencyLike,
    as_partition_dependency,
)
from repro.expressions.ast import (
    Attr,
    ExpressionLike,
    PartitionExpression,
    Product,
    as_expression,
)


class ImplicationIndex:
    """Persistent, incremental arc relation ``Γ`` of ALG over a growing ``(E, V)``.

    ``leq(e, e')`` answers ``e ≤_E e'`` (registering the expressions first if
    needed); :meth:`add_dependencies` grows ``E``; :meth:`add_expressions`
    grows the query-expression pool.  All operations leave the relation closed
    under the seven ALG rules restricted to the current vertex set.
    """

    def __init__(
        self,
        dependencies: Iterable[PartitionDependencyLike] = (),
        expressions: Iterable[ExpressionLike] = (),
    ) -> None:
        self._dependencies: list[PartitionDependency] = []
        self._vertex: dict[PartitionExpression, int] = {}
        self._exprs: list[PartitionExpression] = []
        self._parent: list[int] = []
        self._members: dict[int, list[int]] = {}
        # Arcs between class representatives (including explicit self-arcs).
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        # Composite structure: vertex id -> operand vertex ids, and the
        # reverse maps keyed by the operands' *current* class representative.
        self._products: dict[int, tuple[int, int]] = {}
        self._sums: dict[int, tuple[int, int]] = {}
        self._product_by_operand: dict[int, list[int]] = {}
        self._sum_by_operand: dict[int, list[int]] = {}
        self._worklist: deque[tuple[int, int]] = deque()
        self._pending_merges: deque[tuple[int, int]] = deque()
        self.add_dependencies(dependencies)
        self.add_expressions(expressions)

    # -- public surface ---------------------------------------------------------

    @property
    def dependencies(self) -> list[PartitionDependency]:
        """The PD set ``E`` accumulated so far."""
        return list(self._dependencies)

    @property
    def vertex_count(self) -> int:
        """Number of registered subexpressions (vertices of ``Γ``)."""
        return len(self._exprs)

    @property
    def class_count(self) -> int:
        """Number of congruence classes (collapsed vertices)."""
        return len(self._members)

    def arc_count(self) -> int:
        """Number of arcs between class representatives (not expanded)."""
        return sum(len(targets) for targets in self._succ.values())

    def add_dependencies(self, dependencies: Iterable[PartitionDependencyLike]) -> None:
        """Extend ``E`` and resume propagation from the new equation arcs."""
        for raw in dependencies:
            pd = as_partition_dependency(raw)
            self._dependencies.append(pd)
            left = self._register(pd.left)
            right = self._register(pd.right)
            self._insert(left, right)
            self._insert(right, left)
        self._drain()

    def add_expressions(self, expressions: Iterable[ExpressionLike]) -> None:
        """Extend the vertex set with all subexpressions of ``expressions``."""
        for raw in expressions:
            self._register(as_expression(raw))
        self._drain()

    def knows(self, expression: ExpressionLike) -> bool:
        """True iff the expression is already a vertex (no mutation)."""
        return as_expression(expression) in self._vertex

    def leq(self, left: ExpressionLike, right: ExpressionLike) -> bool:
        """``left ≤_E right``, registering the expressions if necessary."""
        p = self._register(as_expression(left))
        q = self._register(as_expression(right))
        self._drain()
        return self._find(q) in self._succ[self._find(p)]

    def has_arc(self, left: ExpressionLike, right: ExpressionLike) -> bool:
        """``left ≤_E right`` for already-registered expressions (read-only).

        Raises :class:`KeyError` when either expression was never registered.
        """
        p = self._vertex[as_expression(left)]
        q = self._vertex[as_expression(right)]
        return self._find(q) in self._succ[self._find(p)]

    def equivalent(self, left: ExpressionLike, right: ExpressionLike) -> bool:
        """``left =_E right``: the two expressions are in the same congruence class."""
        p = self._register(as_expression(left))
        q = self._register(as_expression(right))
        self._drain()
        return self._find(p) == self._find(q)

    def congruence_classes(self) -> list[list[PartitionExpression]]:
        """The current classes of Γ-equivalent vertices, in vertex order."""
        return list(self.classes().values())

    def class_id(self, expression: ExpressionLike) -> int:
        """The congruence-class id of an expression (registering it if necessary).

        Two expressions share a class id iff they are provably ``=_E``
        (mutual Γ-arcs).  Ids are stable as long as only *expressions* are
        added: registering a new vertex cannot merge existing classes (ALG
        restricted to a larger ``V`` is conservative over the old one), so a
        snapshot of class ids stays valid across ``add_expressions`` /
        ``leq`` calls.  :meth:`add_dependencies` can merge classes and
        thereby retire ids — take fresh snapshots after growing ``E``.
        """
        vid = self._register(as_expression(expression))
        self._drain()
        return self._find(vid)

    def classes(self) -> dict[int, list[PartitionExpression]]:
        """The current classes keyed by class id (member expressions in vertex order)."""
        return {
            root: [self._exprs[vid] for vid in sorted(member_ids)]
            for root, member_ids in sorted(self._members.items())
        }

    def class_leq(self, left_class: int, right_class: int) -> bool:
        """``≤_E`` between two congruence classes by *current* class id (read-only).

        One integer set-membership test — the quotient order computation runs
        k² of these.  Both arguments must be class ids from the current
        snapshot (as returned by :meth:`class_id` / :meth:`classes`).
        """
        return right_class in self._succ[left_class]

    def representative(self, expression: ExpressionLike) -> PartitionExpression:
        """The elected representative of the expression's congruence class."""
        vid = self._register(as_expression(expression))
        self._drain()
        return self._exprs[min(self._members[self._find(vid)])]

    def vertices(self) -> list[PartitionExpression]:
        """All registered subexpressions, in registration order."""
        return list(self._exprs)

    def as_expression_pairs(self) -> set[tuple[PartitionExpression, PartitionExpression]]:
        """The full arc relation expanded back to expression pairs.

        Matches :meth:`repro.implication.alg._ArcRelation.as_expression_pairs`
        exactly (the cross-check oracles rely on this).
        """
        pairs: set[tuple[PartitionExpression, PartitionExpression]] = set()
        for source_root, targets in self._succ.items():
            source_members = self._members[source_root]
            for target_root in targets:
                for i in source_members:
                    for j in self._members[target_root]:
                        pairs.add((self._exprs[i], self._exprs[j]))
        return pairs

    # -- snapshot support -------------------------------------------------------

    def export_state(self) -> dict:
        """The closed arc relation as plain, restore-ready Python structures.

        Everything derived (members, predecessor sets, operand indexes, the
        empty worklist) is omitted — :meth:`from_state` rebuilds it — so the
        state is minimal and canonical: expressions in vertex-id order, the
        union-find flattened to per-vertex roots, and arcs as sorted target
        lists per class representative.  Exporting twice (or exporting a
        restored index) yields equal structures, which is what gives the
        service's snapshot codec its encode→decode→encode byte-identity.
        """
        self._drain()  # exported state must be a fixpoint, never mid-propagation
        return {
            "expressions": list(self._exprs),
            "dependencies": list(self._dependencies),
            "parent": [self._find(vid) for vid in range(len(self._parent))],
            "arcs": {root: sorted(targets) for root, targets in self._succ.items()},
        }

    @classmethod
    def from_state(
        cls,
        dependencies: Iterable[PartitionDependencyLike],
        expressions: Iterable[PartitionExpression],
        parent: Iterable[int],
        arcs: dict[int, Iterable[int]],
    ) -> "ImplicationIndex":
        """Rebuild an index from :meth:`export_state` output without re-propagating.

        The stored relation is already the ALG fixpoint, so no rules fire:
        the vertices are re-registered in their original order (re-interning
        each expression), the union-find and arc sets are installed directly,
        and the derived tables (members, predecessors, operand indexes) are
        reconstructed.  Malformed state raises :class:`ValueError` — the
        service codec wraps that into its own error type.
        """
        index = cls.__new__(cls)
        index._dependencies = [as_partition_dependency(pd) for pd in dependencies]
        index._vertex = {}
        index._exprs = []
        index._parent = []
        index._members = {}
        index._succ = {}
        index._pred = {}
        index._products = {}
        index._sums = {}
        index._product_by_operand = {}
        index._sum_by_operand = {}
        index._worklist = deque()
        index._pending_merges = deque()

        for vid, node in enumerate(expressions):
            if node in index._vertex:
                raise ValueError(f"duplicate vertex expression at id {vid}")
            if not isinstance(node, Attr):
                left = index._vertex.get(node.left)  # type: ignore[attr-defined]
                right = index._vertex.get(node.right)  # type: ignore[attr-defined]
                if left is None or right is None:
                    raise ValueError(
                        f"vertex {vid} appears before its operands (state is not children-first)"
                    )
                if isinstance(node, Product):
                    index._products[vid] = (left, right)
                else:
                    index._sums[vid] = (left, right)
            index._vertex[node] = vid
            index._exprs.append(node)

        count = len(index._exprs)
        roots = list(parent)
        if len(roots) != count:
            raise ValueError(f"parent array has {len(roots)} entries for {count} vertices")
        for vid, root in enumerate(roots):
            if not isinstance(root, int) or not 0 <= root <= vid or roots[root] != root:
                raise ValueError(f"vertex {vid} has invalid class root {root!r}")
        index._parent = roots
        for vid, root in enumerate(roots):
            index._members.setdefault(root, []).append(vid)

        for root in index._members:
            index._succ[root] = set()
            index._pred[root] = set()
        for source, targets in arcs.items():
            if source not in index._members:
                raise ValueError(f"arc source {source!r} is not a class representative")
            for target in targets:
                if target not in index._members:
                    raise ValueError(f"arc target {target!r} is not a class representative")
                index._succ[source].add(target)
                index._pred[target].add(source)

        for table, composites in (
            (index._product_by_operand, index._products),
            (index._sum_by_operand, index._sums),
        ):
            for vid in sorted(composites):
                left, right = composites[vid]
                left_root = roots[left]
                right_root = roots[right]
                table.setdefault(left_root, []).append(vid)
                if right_root != left_root:
                    table.setdefault(right_root, []).append(vid)
        return index

    # -- vertex registration ----------------------------------------------------

    def _register(self, expression: PartitionExpression) -> int:
        """Intern ``expression`` and all its subexpressions as vertices (children first)."""
        vid = self._vertex.get(expression)
        if vid is not None:
            return vid
        stack: list[tuple[PartitionExpression, bool]] = [(expression, False)]
        while stack:
            node, expanded = stack.pop()
            if node in self._vertex:
                continue
            if expanded:
                self._create_vertex(node)
            else:
                stack.append((node, True))
                if not isinstance(node, Attr):
                    stack.append((node.left, False))  # type: ignore[attr-defined]
                    stack.append((node.right, False))  # type: ignore[attr-defined]
        return self._vertex[expression]

    def _create_vertex(self, node: PartitionExpression) -> None:
        """Add one vertex whose operands are already registered, with rule catch-up."""
        vid = len(self._exprs)
        self._vertex[node] = vid
        self._exprs.append(node)
        self._parent.append(vid)
        self._members[vid] = [vid]
        self._succ[vid] = set()
        self._pred[vid] = set()

        if isinstance(node, Attr):
            # Rule 1: reflexivity of attributes.
            self._insert(vid, vid)
            return

        left = self._vertex[node.left]  # type: ignore[attr-defined]
        right = self._vertex[node.right]  # type: ignore[attr-defined]
        left_root = self._find(left)
        right_root = self._find(right)
        if isinstance(node, Product):
            self._products[vid] = (left, right)
            self._product_by_operand.setdefault(left_root, []).append(vid)
            if right_root != left_root:
                self._product_by_operand.setdefault(right_root, []).append(vid)
            # Catch-up rule 3: p*q ≤ s for every s one of its operands is ≤.
            for target in list(self._succ[left_root]):
                self._insert(vid, target)
            for target in list(self._succ[right_root]):
                self._insert(vid, target)
            # Catch-up rule 4: o ≤ p*q for every o below both operands.
            for origin in list(self._pred[left_root]):
                if right_root == left_root or right_root in self._succ[origin]:
                    self._insert(origin, vid)
        else:
            self._sums[vid] = (left, right)
            self._sum_by_operand.setdefault(left_root, []).append(vid)
            if right_root != left_root:
                self._sum_by_operand.setdefault(right_root, []).append(vid)
            # Catch-up rule 5: o ≤ p+q for every o below an operand.
            for origin in list(self._pred[left_root]):
                self._insert(origin, vid)
            for origin in list(self._pred[right_root]):
                self._insert(origin, vid)
            # Catch-up rule 2: p+q ≤ s for every s above both operands.
            for target in list(self._succ[left_root]):
                if right_root == left_root or target in self._succ[right_root]:
                    self._insert(vid, target)

    # -- union-find -------------------------------------------------------------

    def _find(self, vid: int) -> int:
        parent = self._parent
        root = vid
        while parent[root] != root:
            root = parent[root]
        while parent[vid] != root:
            parent[vid], vid = root, parent[vid]
        return root

    # -- worklist core ----------------------------------------------------------

    def _insert(self, source: int, target: int) -> None:
        """Record the arc ``source ≤ target`` (by any member id) if new."""
        source_root = self._find(source)
        target_root = self._find(target)
        if target_root in self._succ[source_root]:
            return
        self._succ[source_root].add(target_root)
        self._pred[target_root].add(source_root)
        self._worklist.append((source_root, target_root))
        if source_root != target_root and source_root in self._succ[target_root]:
            self._pending_merges.append((source_root, target_root))

    def _drain(self) -> None:
        """Run merges and rule propagation to fixpoint."""
        while self._pending_merges or self._worklist:
            while self._pending_merges:
                a, b = self._pending_merges.popleft()
                self._merge(a, b)
            if not self._worklist:
                break
            p, s = self._worklist.popleft()
            self._process_arc(self._find(p), self._find(s))

    def _merge(self, a: int, b: int) -> None:
        """Collapse two mutually-reachable classes; smallest member id wins."""
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        winner, loser = (root_a, root_b) if root_a < root_b else (root_b, root_a)
        self._parent[loser] = winner
        self._members[winner].extend(self._members.pop(loser))

        loser_succ = self._succ.pop(loser)
        loser_pred = self._pred.pop(loser)
        merged_succ = {winner if t == loser else t for t in self._succ[winner] | loser_succ}
        merged_pred = {winner if o == loser else o for o in self._pred[winner] | loser_pred}
        self._succ[winner] = merged_succ
        self._pred[winner] = merged_pred
        for target in merged_succ:
            neighbors = self._pred[target]
            neighbors.discard(loser)
            neighbors.add(winner)
        for origin in merged_pred:
            neighbors = self._succ[origin]
            neighbors.discard(loser)
            neighbors.add(winner)

        # Renaming loser → winner can itself complete a mutual pair (an old
        # arc into the loser plus an old arc out of the winner, say) without
        # ever passing through _insert's mutual-arc detection; a merge only
        # rewrites arcs incident to the merged class, so the winner is the
        # only vertex a new mutual pair can involve.
        for neighbor in merged_succ & merged_pred:
            if neighbor != winner:
                self._pending_merges.append((winner, neighbor))

        for table in (self._product_by_operand, self._sum_by_operand):
            absorbed = table.pop(loser, None)
            if absorbed:
                existing = table.get(winner)
                if existing:
                    table[winner] = list(dict.fromkeys(existing + absorbed))
                else:
                    table[winner] = absorbed

        # Re-enqueue every arc incident to the merged class: composites that
        # key an operand through it must observe the enlarged class, and arcs
        # absorbed from the loser must fire rules under the winner's indexes.
        for target in merged_succ:
            self._worklist.append((winner, target))
        for origin in merged_pred:
            self._worklist.append((origin, winner))

    def _process_arc(self, p: int, s: int) -> None:
        """Fire every ALG rule that has the arc ``(p, s)`` as a premise."""
        succ = self._succ
        pred = self._pred
        # Rule 7 (transitivity): compose with arcs out of s and into p.
        for target in list(succ[s]):
            self._insert(p, target)
        for origin in list(pred[p]):
            self._insert(origin, s)

        # Rule 2: (p, s) and (q, s) with p + q in V  ⇒  (p + q, s).
        for composite in self._sum_by_operand.get(p, ()):
            left, right = self._sums[composite]
            left_root = self._find(left)
            other = self._find(right) if left_root == p else left_root
            if other == p or s in succ[other]:
                self._insert(composite, s)

        # Rule 3: (p, s) with p * q (or q * p) in V  ⇒  (p * q, s).
        for composite in self._product_by_operand.get(p, ()):
            self._insert(composite, s)

        # Rule 4: (p, s') and (p, s'') with s' * s'' in V  ⇒  (p, s' * s'').
        # Our arc is (p, s) with s an operand of the composite.
        for composite in self._product_by_operand.get(s, ()):
            left, right = self._products[composite]
            left_root = self._find(left)
            other = self._find(right) if left_root == s else left_root
            if other == s or other in succ[p]:
                self._insert(p, composite)

        # Rule 5: (p, s) with s + q (or q + s) in V  ⇒  (p, s + q).
        for composite in self._sum_by_operand.get(s, ()):
            self._insert(p, composite)


def implication_index(
    dependencies: Iterable[PartitionDependencyLike] = (),
    expressions: Iterable[ExpressionLike] = (),
) -> ImplicationIndex:
    """Convenience constructor mirroring :func:`repro.implication.alg.alg_closure`."""
    return ImplicationIndex(dependencies, expressions)
