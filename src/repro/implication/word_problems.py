"""Uniform word problems: the algebraic face of dependency implication (§5.1, §5.3).

The paper's central identification is:

* **PD implication** = the uniform word problem for **lattices**
  (Theorem 8 / Theorem 9): given equations ``E`` between lattice terms over
  generators ``U`` and a query equation, decide whether every lattice with
  constants over ``U`` satisfying ``E`` satisfies the query.
* **FD implication** = the uniform word problem for **idempotent commutative
  semigroups** (§5.3): terms are ``·``-only, i.e. finite non-empty sets of
  generators, and the word problem reduces to FD implication both ways.

This module exposes both word problems with algebra-flavoured signatures, so
a reader coming from universal algebra can use the library without touching
relational vocabulary, and so tests can state the reductions exactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.errors import DependencyError
from repro.expressions.ast import ExpressionLike, as_expression
from repro.implication.alg import ImplicationEngine, pd_implies
from repro.implication.identities import identically_equal
from repro.relational.attributes import AttributeSet, as_attribute_set
from repro.relational.functional_dependencies import FunctionalDependency, implies


def lattice_word_problem(
    equations: Iterable[PartitionDependencyLike | tuple[ExpressionLike, ExpressionLike]],
    query: PartitionDependencyLike | tuple[ExpressionLike, ExpressionLike],
) -> bool:
    """The uniform word problem for lattices: does ``E ∪ LA`` imply the query equation?

    Decided in polynomial time by ALG (Theorem 9).  By Theorem 8 the answer
    is the same over all lattices, finite lattices, relations and finite
    relations.
    """
    pds = [as_partition_dependency(eq) for eq in equations]
    return pd_implies(pds, as_partition_dependency(query))


def lattice_word_problems(
    equations: Iterable[PartitionDependencyLike | tuple[ExpressionLike, ExpressionLike]],
    queries: Iterable[PartitionDependencyLike | tuple[ExpressionLike, ExpressionLike]],
) -> list[bool]:
    """Batch uniform word problems: many query equations against one theory ``E``.

    One incremental :class:`~repro.implication.alg.ImplicationEngine` is
    shared across the whole query stream, so the closure over ``E`` is
    computed once and each query only extends it with its own subexpressions.
    """
    pds = [as_partition_dependency(eq) for eq in equations]
    query_pds = [as_partition_dependency(q) for q in queries]
    engine = ImplicationEngine(
        pds, query_expressions=[side for pd in query_pds for side in (pd.left, pd.right)]
    )
    return [engine.implies(pd) for pd in query_pds]


def lattice_identity(query: PartitionDependencyLike | tuple[ExpressionLike, ExpressionLike]) -> bool:
    """The word problem for the free lattice (``E = ∅``): is the query a lattice identity?

    Decided by the ``≤_id`` recursion (Theorem 10); cheaper than running ALG.
    """
    pd = as_partition_dependency(query)
    return identically_equal(pd.left, pd.right)


def _term_to_attribute_set(term) -> AttributeSet:
    """Interpret a ``·``-only term (or an explicit generator collection) as a set of generators.

    Accepted forms: a partition expression built only from ``*`` (e.g. the
    parse of ``"A * B"``), a string in the expression syntax, or a collection
    of generator names (set/frozenset/list).
    """
    if isinstance(term, (frozenset, set, list)):
        return as_attribute_set(term)
    expression = as_expression(term)
    if not expression.is_product_of_attributes():
        raise DependencyError(
            f"semigroup terms must be products of generators, got {expression}"
        )
    return expression.attributes()


def semigroup_word_problem(
    equations: Sequence[tuple[ExpressionLike, ExpressionLike]],
    query: tuple[ExpressionLike, ExpressionLike],
) -> bool:
    """The uniform word problem for idempotent commutative semigroups.

    Terms are products of generators, i.e. finite non-empty generator sets.
    Following §5.3, an equation ``X = Y`` is translated to the FD pair
    ``{X → Y, Y → X}`` and the query ``P = Q`` holds iff both ``P → Q`` and
    ``Q → P`` follow — decided with the attribute-closure algorithm.
    """
    fds: list[FunctionalDependency] = []
    for left, right in equations:
        left_set = _term_to_attribute_set(left)
        right_set = _term_to_attribute_set(right)
        fds.append(FunctionalDependency(left_set, right_set))
        fds.append(FunctionalDependency(right_set, left_set))
    query_left = _term_to_attribute_set(query[0])
    query_right = _term_to_attribute_set(query[1])
    return implies(fds, FunctionalDependency(query_left, query_right)) and implies(
        fds, FunctionalDependency(query_right, query_left)
    )


def fd_implication_as_semigroup_problem(
    fds: Sequence[FunctionalDependency], target: FunctionalDependency
) -> bool:
    """FD implication phrased as a semigroup word problem (§5.3).

    The FD ``X → Y`` corresponds to the equation ``X = X·Y``; the reduction
    is sound and complete, so the answer always agrees with
    :func:`repro.relational.functional_dependencies.implies` (tests verify
    this on random inputs).
    """
    equations = [(set(fd.lhs), set(fd.lhs | fd.rhs)) for fd in fds]
    query = (set(target.lhs), set(target.lhs | target.rhs))
    return semigroup_word_problem(equations, query)
