"""ALG: the polynomial-time decision procedure for PD implication (§5.2, Theorem 9).

Given a finite set ``E`` of PDs and two partition expressions ``e, e'``, the
paper's Algorithm ALG builds a digraph ``Γ`` over the set ``V`` of all
subexpressions of ``E``, ``e`` and ``e'`` by closing under seven rules
(reflexivity of attributes, the ID rules restricted to ``V``, the equations
of ``E``, and transitivity).  Lemma 9.2 proves that for ``p, q ∈ V``:

    ``p ≤_E q``  iff  ``(p, q) ∈ Γ``

and therefore ``E ⊨ e = e'`` iff both ``(e, e')`` and ``(e', e)`` are arcs.
Since ``E ⊨_lat``, ``⊨_lat,fin``, ``⊨_rel`` and ``⊨_rel,fin`` all coincide
(Theorem 8), ALG decides the implication problem for PDs over relations,
finite relations, lattices and finite lattices at once — and it *is* a
decision procedure for the uniform word problem for lattices.

Two implementations are provided and cross-checked by the tests:

* :func:`alg_closure_naive` — the literal "repeat until no new arcs are
  added" loop of the paper (a straightforward O(n⁴)-flavoured fixpoint);
* :func:`alg_closure` — a worklist refinement that processes each inserted
  arc once, propagating through per-node indexes (much faster in practice,
  same output).

The public entry points are :func:`pd_leq`, :func:`pd_implies`,
:func:`pd_implies_all` and :class:`ImplicationEngine` (which caches the
closure so that many queries against the same ``E`` and query-expression
pool are cheap — the Theorem 12 consistency test needs exactly that).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from repro.dependencies.pd import (
    PartitionDependency,
    PartitionDependencyLike,
    as_partition_dependency,
)
from repro.expressions.ast import (
    Attr,
    ExpressionLike,
    PartitionExpression,
    Product,
    Sum,
    as_expression,
)
from repro.implication.index import ImplicationIndex


def _vertex_set(
    dependencies: Sequence[PartitionDependency],
    extra: Iterable[PartitionExpression],
) -> list[PartitionExpression]:
    """``V``: all subexpressions of the PDs in ``E`` and of the extra query expressions."""
    seen: dict[PartitionExpression, None] = {}
    roots: list[PartitionExpression] = []
    for pd in dependencies:
        roots.append(pd.left)
        roots.append(pd.right)
    roots.extend(extra)
    for root in roots:
        for node in root.subexpressions():
            seen.setdefault(node, None)
    return list(seen)


class _ArcRelation:
    """A mutable binary relation over the vertex list, with forward/backward adjacency."""

    def __init__(self, vertices: Sequence[PartitionExpression]) -> None:
        self.vertices = list(vertices)
        self.index = {vertex: i for i, vertex in enumerate(self.vertices)}
        n = len(self.vertices)
        self.arcs: set[tuple[int, int]] = set()
        self.successors: list[set[int]] = [set() for _ in range(n)]
        self.predecessors: list[set[int]] = [set() for _ in range(n)]

    def has(self, source: int, target: int) -> bool:
        return (source, target) in self.arcs

    def add(self, source: int, target: int) -> bool:
        """Insert an arc; returns True iff it is new."""
        if (source, target) in self.arcs:
            return False
        self.arcs.add((source, target))
        self.successors[source].add(target)
        self.predecessors[target].add(source)
        return True

    def as_expression_pairs(self) -> set[tuple[PartitionExpression, PartitionExpression]]:
        return {(self.vertices[i], self.vertices[j]) for i, j in self.arcs}


def _structure_indexes(relation: _ArcRelation):
    """Index the composite vertices by their operands, for the ID-rule propagation.

    Returns ``(products, sums, product_by_operand, sum_by_operand)`` where
    ``products``/``sums`` map a vertex index to its two operand indexes and
    the ``*_by_operand`` maps send an operand index to the composite vertices
    it participates in.
    """
    products: dict[int, tuple[int, int]] = {}
    sums: dict[int, tuple[int, int]] = {}
    product_by_operand: dict[int, list[int]] = {}
    sum_by_operand: dict[int, list[int]] = {}
    for i, vertex in enumerate(relation.vertices):
        if isinstance(vertex, Product):
            left = relation.index[vertex.left]
            right = relation.index[vertex.right]
            products[i] = (left, right)
            product_by_operand.setdefault(left, []).append(i)
            product_by_operand.setdefault(right, []).append(i)
        elif isinstance(vertex, Sum):
            left = relation.index[vertex.left]
            right = relation.index[vertex.right]
            sums[i] = (left, right)
            sum_by_operand.setdefault(left, []).append(i)
            sum_by_operand.setdefault(right, []).append(i)
    return products, sums, product_by_operand, sum_by_operand


def _seed_arcs(
    relation: _ArcRelation, dependencies: Sequence[PartitionDependency]
) -> list[tuple[int, int]]:
    """Rule 1 (attribute reflexivity) and rule 6 of ALG (the equations of E)."""
    seeds: list[tuple[int, int]] = []
    for i, vertex in enumerate(relation.vertices):
        if isinstance(vertex, Attr):
            seeds.append((i, i))
    for pd in dependencies:
        left = relation.index[pd.left]
        right = relation.index[pd.right]
        seeds.append((left, right))
        seeds.append((right, left))
    return seeds


def alg_closure(
    dependencies: Sequence[PartitionDependencyLike],
    query_expressions: Iterable[ExpressionLike] = (),
) -> _ArcRelation:
    """Run ALG (worklist variant) and return the closed arc relation ``Γ`` over ``V``."""
    pds = [as_partition_dependency(pd) for pd in dependencies]
    extra = [as_expression(e) for e in query_expressions]
    relation = _ArcRelation(_vertex_set(pds, extra))
    products, sums, product_by_operand, sum_by_operand = _structure_indexes(relation)

    worklist: list[tuple[int, int]] = []

    def insert(source: int, target: int) -> None:
        if relation.add(source, target):
            worklist.append((source, target))

    for source, target in _seed_arcs(relation, pds):
        insert(source, target)

    while worklist:
        p, s = worklist.pop()

        # Rule 7 (transitivity): (p, s) composed with existing arcs.
        for t in list(relation.successors[s]):
            insert(p, t)
        for o in list(relation.predecessors[p]):
            insert(o, s)

        # Rule 2: (p, s) and (q, s) with p + q in V  ⇒  (p + q, s).
        for composite in sum_by_operand.get(p, ()):
            left, right = sums[composite]
            other = right if left == p else left
            if relation.has(other, s) or other == p:
                insert(composite, s)

        # Rule 3: (p, s) with p * q (or q * p) in V  ⇒  (p * q, s).
        for composite in product_by_operand.get(p, ()):
            insert(composite, s)

        # Rule 4: (s', p) and (s', q) with p * q in V  ⇒  (s', p * q).
        # Our new arc is (p, s) read as (s', p') with s' = p, p' = s.
        for composite in product_by_operand.get(s, ()):
            left, right = products[composite]
            other = right if left == s else left
            if relation.has(p, other) or other == s:
                insert(p, composite)

        # Rule 5: (s', p) with p + q (or q + p) in V  ⇒  (s', p + q).
        for composite in sum_by_operand.get(s, ()):
            insert(p, composite)

    return relation


def alg_closure_naive(
    dependencies: Sequence[PartitionDependencyLike],
    query_expressions: Iterable[ExpressionLike] = (),
) -> _ArcRelation:
    """The literal fixpoint formulation of ALG from the paper (repeat rules until stable).

    Asymptotically slower than :func:`alg_closure` but a direct transcription
    of the published pseudo-code; used as an oracle in tests and as the
    baseline in the implication benchmark.
    """
    pds = [as_partition_dependency(pd) for pd in dependencies]
    extra = [as_expression(e) for e in query_expressions]
    relation = _ArcRelation(_vertex_set(pds, extra))
    products, sums, _, _ = _structure_indexes(relation)

    for source, target in _seed_arcs(relation, pds):
        relation.add(source, target)

    changed = True
    while changed:
        changed = False
        n = len(relation.vertices)
        # Rule 2 and 3: products/sums below a common target.
        for composite, (left, right) in sums.items():
            for s in range(n):
                if relation.has(left, s) and relation.has(right, s):
                    changed |= relation.add(composite, s)
        for composite, (left, right) in products.items():
            for s in range(n):
                if relation.has(left, s) or relation.has(right, s):
                    changed |= relation.add(composite, s)
        # Rule 4 and 5: targets above a common source.
        for composite, (left, right) in products.items():
            for s in range(n):
                if relation.has(s, left) and relation.has(s, right):
                    changed |= relation.add(s, composite)
        for composite, (left, right) in sums.items():
            for s in range(n):
                if relation.has(s, left) or relation.has(s, right):
                    changed |= relation.add(s, composite)
        # Rule 7: transitivity.
        for (p, s) in list(relation.arcs):
            for t in list(relation.successors[s]):
                changed |= relation.add(p, t)
    return relation


# -- public query layer -----------------------------------------------------------


class ImplicationEngine:
    """Decides ``E ⊨ e = e'`` queries against a growing set of PDs.

    The default engine is a facade over the persistent
    :class:`~repro.implication.index.ImplicationIndex`: a query mentioning a
    new expression extends the vertex set and *resumes* rule propagation
    delta-wise instead of recomputing the closure, so long query streams
    against one PD set cost little more than one closure overall.

    With ``naive=True`` the engine instead rebuilds the closure from scratch
    with :func:`alg_closure_naive` whenever the vertex set grows — the
    behaviour of the paper's literal pseudo-code, kept as a cross-check
    oracle and benchmark baseline.
    """

    def __init__(
        self,
        dependencies: Iterable[PartitionDependencyLike] = (),
        query_expressions: Iterable[ExpressionLike] = (),
        naive: bool = False,
    ) -> None:
        self._dependencies = [as_partition_dependency(pd) for pd in dependencies]
        self._naive = naive
        if naive:
            self._index: Optional[ImplicationIndex] = None
            self._known: set[PartitionExpression] = set()
            self._relation: Optional[_ArcRelation] = None
            self._pending: list[PartitionExpression] = [
                as_expression(e) for e in query_expressions
            ]
        else:
            self._index = ImplicationIndex(self._dependencies, query_expressions)

    @classmethod
    def from_index(cls, index: ImplicationIndex) -> "ImplicationEngine":
        """Wrap an existing (e.g. snapshot-restored) index without recomputation.

        The engine adopts the index's dependency set; nothing is propagated —
        the index is already closed.  This is the restore path of
        :mod:`repro.service.snapshot`.
        """
        engine = cls.__new__(cls)
        engine._dependencies = list(index.dependencies)
        engine._naive = False
        engine._index = index
        return engine

    @property
    def dependencies(self) -> list[PartitionDependency]:
        """The PD set ``E`` this engine reasons over."""
        return list(self._dependencies)

    @property
    def index(self) -> Optional[ImplicationIndex]:
        """The underlying incremental index (``None`` for a naive engine)."""
        return self._index

    def _ensure(self, expressions: Sequence[PartitionExpression]) -> _ArcRelation:
        missing = [e for e in expressions if e not in self._known]
        if self._relation is None or missing:
            self._pending.extend(missing)
            self._relation = alg_closure_naive(self._dependencies, self._pending)
            self._known = set(self._relation.vertices)
        return self._relation

    def add_dependencies(self, dependencies: Iterable[PartitionDependencyLike]) -> None:
        """Extend ``E`` in place; the incremental index resumes propagation."""
        added = [as_partition_dependency(pd) for pd in dependencies]
        self._dependencies.extend(added)
        if self._index is not None:
            self._index.add_dependencies(added)
        else:
            self._relation = None  # force a recompute on the next query

    def prepare(self, expressions: Iterable[ExpressionLike]) -> None:
        """Register query expressions ahead of time (one propagation for the batch)."""
        exprs = [as_expression(e) for e in expressions]
        if self._index is not None:
            self._index.add_expressions(exprs)
        else:
            self._ensure(exprs)

    def leq(self, left: ExpressionLike, right: ExpressionLike) -> bool:
        """``left ≤_E right``: the PD ``left = left·right`` is implied by ``E``."""
        p = as_expression(left)
        q = as_expression(right)
        if self._index is not None:
            return self._index.leq(p, q)
        relation = self._ensure([p, q])
        return relation.has(relation.index[p], relation.index[q])

    def class_id(self, expression: ExpressionLike) -> Optional[int]:
        """The ``=_E`` congruence-class id of an expression, or ``None`` on naive engines.

        Delegates to :meth:`ImplicationIndex.class_id`; the quotient pipeline
        collapses expression pools by grouping on these ids instead of
        pairwise ``leq`` probes.
        """
        if self._index is None:
            return None
        return self._index.class_id(expression)

    def implies(self, dependency: PartitionDependencyLike) -> bool:
        """``E ⊨ e = e'`` (equivalently over lattices, finite lattices, relations, finite relations)."""
        pd = as_partition_dependency(dependency)
        return self.leq(pd.left, pd.right) and self.leq(pd.right, pd.left)

    def implies_all(self, dependencies: Iterable[PartitionDependencyLike]) -> bool:
        """True iff every PD in ``dependencies`` is implied (single propagation)."""
        pds = [as_partition_dependency(pd) for pd in dependencies]
        self.prepare([side for pd in pds for side in (pd.left, pd.right)])
        return all(self.implies(pd) for pd in pds)

    def attribute_order_consequences(
        self, attributes: Iterable[str]
    ) -> list[tuple[str, str]]:
        """All consequences of the form ``A ≤ B`` between the given attributes.

        This is the closure step of the Theorem 12 consistency test.  The
        reflexive pairs ``A ≤ A`` are omitted.
        """
        names = sorted(set(attributes))
        exprs = [Attr(name) for name in names]
        self.prepare(exprs)
        result: list[tuple[str, str]] = []
        for a in names:
            for b in names:
                if a != b and self.leq(Attr(a), Attr(b)):
                    result.append((a, b))
        return result


def pd_leq(
    dependencies: Iterable[PartitionDependencyLike],
    left: ExpressionLike,
    right: ExpressionLike,
    naive: bool = False,
) -> bool:
    """``left ≤_E right`` for a one-shot query."""
    return ImplicationEngine(dependencies, naive=naive).leq(left, right)


def pd_implies(
    dependencies: Iterable[PartitionDependencyLike],
    dependency: PartitionDependencyLike,
    naive: bool = False,
) -> bool:
    """``E ⊨ δ`` for a one-shot query (Theorem 9's polynomial-time implication test)."""
    return ImplicationEngine(dependencies, naive=naive).implies(dependency)


def pd_implies_all(
    dependencies: Iterable[PartitionDependencyLike],
    queries: Iterable[PartitionDependencyLike],
    naive: bool = False,
) -> bool:
    """``E ⊨ δ`` for every δ in ``queries`` (single closure computation)."""
    return ImplicationEngine(dependencies, naive=naive).implies_all(queries)


def pd_equivalent(
    first: Iterable[PartitionDependencyLike],
    second: Iterable[PartitionDependencyLike],
    naive: bool = False,
) -> bool:
    """True iff the two PD sets imply each other.

    Each direction is decided on one engine whose closure already contains
    every query expression, so the arc relation is propagated exactly once
    per PD set (instead of once per query, as rebuilding via two
    :func:`pd_implies_all` calls used to do).
    """
    first_list = [as_partition_dependency(pd) for pd in first]
    second_list = [as_partition_dependency(pd) for pd in second]
    forward = ImplicationEngine(
        first_list,
        query_expressions=[side for pd in second_list for side in (pd.left, pd.right)],
        naive=naive,
    )
    if not forward.implies_all(second_list):
        return False
    backward = ImplicationEngine(
        second_list,
        query_expressions=[side for pd in first_list for side in (pd.left, pd.right)],
        naive=naive,
    )
    return backward.implies_all(first_list)
