"""Recognizing PD identities: the relation ``≤_id`` (§5.1 rules I, Theorem 10).

``p ≤_id q`` holds iff ``p ≤ q`` in *every* lattice with constants, i.e. iff
the PD ``p = p·q`` is a lattice identity.  The paper derives ``≤_id`` from
five inference rules (its "ID rules") and then observes (Theorem 10) that the
rules can be read as a deterministic recursion — Whitman's solution of the
word problem for free lattices — which needs only logarithmic space:

1. ``A ≤_id A'``          iff  ``A`` and ``A'`` are the same attribute;
2. ``A ≤_id p'·q'``       iff  ``A ≤_id p'`` and ``A ≤_id q'``;
3. ``A ≤_id p'+q'``       iff  ``A ≤_id p'`` or  ``A ≤_id q'``;
4. ``p·q ≤_id A'``        iff  ``p ≤_id A'`` or ``q ≤_id A'``;
5. ``p·q ≤_id p'·q'``     iff  ``p·q ≤_id p'`` and ``p·q ≤_id q'``;
6. ``p·q ≤_id p'+q'``     iff  ``p ≤_id p'+q'`` or ``q ≤_id p'+q'`` or
                               ``p·q ≤_id p'`` or ``p·q ≤_id q'``  (Whitman's condition);
7. ``p+q ≤_id e'``        iff  ``p ≤_id e'`` and ``q ≤_id e'``.

Three implementations are provided:

* :func:`identically_leq` — the practical one: the recursion is memoized in a
  **global weak table** keyed on interned node pairs (PR 2's hash-consing
  makes structural equality object identity), shared across calls.  The
  Theorem 8 pipeline, :func:`~repro.implication.word_problems.lattice_identity`
  and :mod:`repro.lattice.free_lattice` all probe overlapping pairs of the
  same interned subterms, so warm queries are dictionary hits; a row of
  verdicts dies with its (weakly held) left endpoint;
* :func:`identically_leq_cold` — the same recursion with a fresh per-call
  cache (the previous behaviour, kept as the memoization oracle and the
  EXP-LAT benchmark baseline);
* :func:`identically_leq_iterative` — an explicit-stack evaluation that
  stores only (pointers to) the pair currently being compared plus a
  constant amount of bookkeeping per recursion frame, mirroring the
  logarithmic-space argument of Theorem 10.  It never memoizes, so its
  running time can be exponential — which is precisely the time/space
  trade-off the theorem describes.  Tests cross-check all three.
"""

from __future__ import annotations

import os
import weakref

from repro.errors import ExpressionError
from repro.expressions.ast import Attr, ExpressionLike, PartitionExpression, Product, Sum, as_expression

# Outer level keyed weakly on the left expression; each value is a plain
# inner dict right expression -> verdict.  When the left endpoint is
# reclaimed its whole row of verdicts goes with it (and releases the rows'
# strong references to the right endpoints); the inner level stays a plain
# dict because the hot path probes it once per recursion step and
# WeakKeyDictionary lookups allocate a weakref per probe.
_LEQ_CACHE: "weakref.WeakKeyDictionary[PartitionExpression, dict[PartitionExpression, bool]]" = (
    weakref.WeakKeyDictionary()
)
_CACHE_HITS = 0
_CACHE_MISSES = 0


def identically_leq(left: ExpressionLike, right: ExpressionLike) -> bool:
    """Decide ``left ≤_id right`` (the free-lattice order) by globally memoized recursion."""
    return _leq_memo(as_expression(left), as_expression(right))


def _leq_memo(x: PartitionExpression, y: PartitionExpression) -> bool:
    global _CACHE_HITS, _CACHE_MISSES
    inner = _LEQ_CACHE.get(x)
    if inner is None:
        inner = {}
        _LEQ_CACHE[x] = inner
    cached = inner.get(y)
    if cached is not None:
        _CACHE_HITS += 1
        return cached
    _CACHE_MISSES += 1
    # Seed the entry with False to guard against hypothetical cycles; the
    # recursion always descends into proper subexpressions so it cannot
    # actually loop, but the guard keeps the function total on any input.
    # The seed must not outlive an aborted computation (RecursionError,
    # KeyboardInterrupt): the cache is process-global now, so every
    # unwinding frame drops its own in-flight entry.
    inner[y] = False
    try:
        result = _leq_step(x, y, _leq_memo)
    except BaseException:
        inner.pop(y, None)
        raise
    inner[y] = result
    return result


def identity_cache_info() -> dict[str, int]:
    """Diagnostics for the global ``≤_id`` memo: live pair count and hit/miss counters."""
    return {
        "pairs": sum(len(inner) for inner in _LEQ_CACHE.values()),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
    }


def clear_identity_cache() -> None:
    """Drop every memoized ``≤_id`` verdict (benchmarks use this for cold runs)."""
    global _CACHE_HITS, _CACHE_MISSES
    _LEQ_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI and production
    # A fork can land while another thread is inside _leq_memo, between the
    # False seed and the final verdict: the child would then read the seed as
    # a memoized answer and return wrong ``≤_id`` verdicts forever.  The
    # parent's unwind-on-error cleanup never runs in the child (the exception
    # unwinds in the parent's address space), so the only safe child state is
    # an empty memo — it re-fills lazily, and correctness never depended on
    # warmth.  Registered at import time so multiprocessing fork workers (the
    # service's shard executor) always start clean.
    os.register_at_fork(after_in_child=clear_identity_cache)


def identically_leq_cold(left: ExpressionLike, right: ExpressionLike) -> bool:
    """Decide ``left ≤_id right`` with a fresh per-call cache (no sharing across calls).

    This is the seed implementation, preserved as the cross-check oracle for
    the global memo and as the cold baseline of the EXP-LAT benchmark.
    """
    p = as_expression(left)
    q = as_expression(right)
    cache: dict[tuple[PartitionExpression, PartitionExpression], bool] = {}

    def leq(x: PartitionExpression, y: PartitionExpression) -> bool:
        key = (x, y)
        if key in cache:
            return cache[key]
        cache[key] = False
        result = _leq_step(x, y, leq)
        cache[key] = result
        return result

    return leq(p, q)


def _leq_step(x, y, leq) -> bool:
    """One unfolding of the seven-case analysis of Theorem 10."""
    if isinstance(x, Attr):
        if isinstance(y, Attr):
            return x.name == y.name  # case 1
        if isinstance(y, Product):
            return leq(x, y.left) and leq(x, y.right)  # case 2
        if isinstance(y, Sum):
            return leq(x, y.left) or leq(x, y.right)  # case 3
        raise ExpressionError(f"unknown expression node {y!r}")
    if isinstance(x, Sum):
        # case 7 (covers every shape of y)
        return leq(x.left, y) and leq(x.right, y)
    if isinstance(x, Product):
        if isinstance(y, Attr):
            return leq(x.left, y) or leq(x.right, y)  # case 4
        if isinstance(y, Product):
            return leq(x, y.left) and leq(x, y.right)  # case 5
        if isinstance(y, Sum):
            return (
                leq(x.left, y)
                or leq(x.right, y)
                or leq(x, y.left)
                or leq(x, y.right)
            )  # case 6, Whitman's condition
        raise ExpressionError(f"unknown expression node {y!r}")
    raise ExpressionError(f"unknown expression node {x!r}")


def identically_leq_iterative(left: ExpressionLike, right: ExpressionLike) -> bool:
    """Decide ``left ≤_id right`` with an explicit evaluation stack and no memoization.

    Every stack frame holds a sub-pair of the original pair plus the boolean
    connective that combines its children's answers, which is the
    "two pointers into the input" bookkeeping of the Theorem 10 logspace
    argument (our stack plays the role of the re-walkable input tree).
    """
    p = as_expression(left)
    q = as_expression(right)

    # Each frame: (x, y, pending_children, combinator) where combinator is
    # "and" / "or" over the children's results, evaluated lazily with
    # short-circuiting.
    def expand(x, y) -> tuple[str, list[tuple]]:
        if isinstance(x, Attr) and isinstance(y, Attr):
            return ("leaf", [x.name == y.name])
        if isinstance(x, Attr) and isinstance(y, Product):
            return ("and", [(x, y.left), (x, y.right)])
        if isinstance(x, Attr) and isinstance(y, Sum):
            return ("or", [(x, y.left), (x, y.right)])
        if isinstance(x, Sum):
            return ("and", [(x.left, y), (x.right, y)])
        if isinstance(x, Product) and isinstance(y, Attr):
            return ("or", [(x.left, y), (x.right, y)])
        if isinstance(x, Product) and isinstance(y, Product):
            return ("and", [(x, y.left), (x, y.right)])
        if isinstance(x, Product) and isinstance(y, Sum):
            return ("or", [(x.left, y), (x.right, y), (x, y.left), (x, y.right)])
        raise ExpressionError(f"unknown expression nodes {x!r}, {y!r}")

    # Iterative short-circuit evaluation of the and/or recursion tree.
    stack: list[dict] = [{"pair": (p, q), "children": None, "index": 0, "mode": None}]
    answers: list[bool] = []
    while stack:
        frame = stack[-1]
        if frame["children"] is None:
            mode, children = expand(*frame["pair"])
            if mode == "leaf":
                answers.append(bool(children[0]))
                stack.pop()
                continue
            frame["mode"] = mode
            frame["children"] = children
            frame["index"] = 0
            stack.append({"pair": children[0], "children": None, "index": 0, "mode": None})
            continue
        # A child has just been answered.
        child_answer = answers.pop()
        mode = frame["mode"]
        if (mode == "and" and not child_answer) or (mode == "or" and child_answer):
            answers.append(child_answer)
            stack.pop()
            continue
        frame["index"] += 1
        if frame["index"] >= len(frame["children"]):
            # All children evaluated without short-circuit: "and" ⇒ True, "or" ⇒ False.
            answers.append(mode == "and")
            stack.pop()
            continue
        stack.append(
            {"pair": frame["children"][frame["index"]], "children": None, "index": 0, "mode": None}
        )
    assert len(answers) == 1
    return answers[0]


def identically_equal(left: ExpressionLike, right: ExpressionLike) -> bool:
    """``p =_id q``: the PD ``p = q`` holds in every lattice (is a lattice identity).

    Lemma 8.2a of the paper: this is equivalent to ``p ≤_id q`` and
    ``q ≤_id p``.
    """
    p = as_expression(left)
    q = as_expression(right)
    return identically_leq(p, q) and identically_leq(q, p)


def is_pd_identity(dependency) -> bool:
    """True iff a PD is a lattice identity (holds in every partition interpretation)."""
    from repro.dependencies.pd import as_partition_dependency

    pd = as_partition_dependency(dependency)
    return identically_equal(pd.left, pd.right)
