"""Implication engines: PD implication (ALG), PD identities, FD implication, word problems (§5)."""

from repro.implication.alg import (
    ImplicationEngine,
    alg_closure,
    alg_closure_naive,
    pd_equivalent,
    pd_implies,
    pd_implies_all,
    pd_leq,
)
from repro.implication.fd_implication import (
    ArmstrongDerivation,
    DerivationStep,
    closure_sequence,
    derive_fd,
    fd_closure,
    fd_implies,
    fd_implies_all_via_pds,
    fd_implies_via_pds,
    is_superkey,
)
from repro.implication.index import ImplicationIndex, implication_index
from repro.implication.identities import (
    clear_identity_cache,
    identically_equal,
    identically_leq,
    identically_leq_cold,
    identically_leq_iterative,
    identity_cache_info,
    is_pd_identity,
)
from repro.implication.rewrite import (
    default_pool,
    find_rewrite_sequence,
    one_step_rewrites,
    rewrite_reachable,
)
from repro.implication.word_problems import (
    fd_implication_as_semigroup_problem,
    lattice_identity,
    lattice_word_problem,
    lattice_word_problems,
    semigroup_word_problem,
)

__all__ = [
    "ImplicationEngine",
    "ImplicationIndex",
    "implication_index",
    "alg_closure",
    "alg_closure_naive",
    "pd_leq",
    "pd_implies",
    "pd_implies_all",
    "pd_equivalent",
    "identically_leq",
    "identically_leq_cold",
    "identically_leq_iterative",
    "identically_equal",
    "identity_cache_info",
    "clear_identity_cache",
    "is_pd_identity",
    "one_step_rewrites",
    "rewrite_reachable",
    "find_rewrite_sequence",
    "default_pool",
    "fd_closure",
    "fd_implies",
    "fd_implies_via_pds",
    "fd_implies_all_via_pds",
    "derive_fd",
    "ArmstrongDerivation",
    "DerivationStep",
    "closure_sequence",
    "is_superkey",
    "lattice_word_problem",
    "lattice_word_problems",
    "lattice_identity",
    "semigroup_word_problem",
    "fd_implication_as_semigroup_problem",
]
