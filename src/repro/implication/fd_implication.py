"""FD implication: Armstrong derivations, closure, and the PD cross-check (§5.3).

Section 5.3 of the paper observes that FD implication is exactly the uniform
word problem for idempotent commutative semigroups, and that it embeds into
PD implication via the FPD translation (``Σ ⊨_rel σ`` iff ``E_Σ ⊨_rel δ_σ``).
This module provides:

* :func:`fd_implies` / :func:`fd_closure` — the classical attribute-closure
  decision procedure (re-exported from the relational substrate);
* :class:`ArmstrongDerivation` and :func:`derive_fd` — an explicit
  proof-producing inference engine for Armstrong's axioms (reflexivity,
  augmentation, transitivity), so tests can exhibit derivations and not just
  yes/no answers;
* :func:`fd_implies_via_pds` / :func:`fd_implies_all_via_pds` — the
  translation route through the PD implication engine (ALG), used to
  validate the §5.3 correspondence and as a benchmark baseline; the batch
  form amortizes one incremental engine across all targets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dependencies.conversion import fd_to_pd, fds_to_pds
from repro.implication.alg import ImplicationEngine
from repro.relational.attributes import AttributeSet, as_attribute_set
from repro.relational.functional_dependencies import FunctionalDependency, closure, implies

#: Re-exported names so callers can treat this module as the FD implication facade.
fd_closure = closure
fd_implies = implies


@dataclass(frozen=True)
class DerivationStep:
    """One step of an Armstrong derivation.

    ``rule`` is one of ``"given"``, ``"reflexivity"``, ``"augmentation"``,
    ``"transitivity"``; ``premises`` are indexes of earlier steps.
    """

    fd: FunctionalDependency
    rule: str
    premises: tuple[int, ...] = ()


@dataclass
class ArmstrongDerivation:
    """A sequence of derivation steps ending in the target FD."""

    steps: list[DerivationStep] = field(default_factory=list)

    @property
    def conclusion(self) -> Optional[FunctionalDependency]:
        return self.steps[-1].fd if self.steps else None

    def add(self, fd: FunctionalDependency, rule: str, premises: tuple[int, ...] = ()) -> int:
        self.steps.append(DerivationStep(fd, rule, premises))
        return len(self.steps) - 1

    def check(self) -> bool:
        """Verify that every step is a correct application of its rule."""
        for index, step in enumerate(self.steps):
            if any(p >= index for p in step.premises):
                return False
            if step.rule == "given":
                continue
            if step.rule == "reflexivity":
                if not step.fd.rhs <= step.fd.lhs:
                    return False
            elif step.rule == "augmentation":
                if len(step.premises) != 1:
                    return False
                base = self.steps[step.premises[0]].fd
                # Augmentation by some W: lhs = base.lhs ∪ W, rhs = base.rhs ∪ W.
                # Such a W exists iff the four containments below hold (take
                # W = (lhs - base.lhs) ∪ (rhs - base.rhs)).
                if not (
                    base.lhs <= step.fd.lhs
                    and base.rhs <= step.fd.rhs
                    and (step.fd.rhs - base.rhs) <= step.fd.lhs
                    and (step.fd.lhs - base.lhs) <= step.fd.rhs
                ):
                    return False
            elif step.rule == "transitivity":
                if len(step.premises) != 2:
                    return False
                first = self.steps[step.premises[0]].fd
                second = self.steps[step.premises[1]].fd
                if first.rhs != second.lhs:
                    return False
                if step.fd.lhs != first.lhs or step.fd.rhs != second.rhs:
                    return False
            else:
                return False
        return True

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        lines = []
        for index, step in enumerate(self.steps):
            premise_text = f" from {list(step.premises)}" if step.premises else ""
            lines.append(f"{index:3d}. {step.fd}   [{step.rule}{premise_text}]")
        return "\n".join(lines)


def derive_fd(
    fds: Sequence[FunctionalDependency], target: FunctionalDependency
) -> Optional[ArmstrongDerivation]:
    """Produce an explicit Armstrong derivation of ``target`` from ``fds`` (or ``None``).

    The derivation mirrors the attribute-closure computation: it derives
    ``X → X⁺`` by chaining augmentation and transitivity steps, then projects
    down to the target with reflexivity and transitivity.  The result always
    passes :meth:`ArmstrongDerivation.check`.
    """
    fd_list = list(fds)
    if not implies(fd_list, target):
        return None

    derivation = ArmstrongDerivation()
    given_index = {fd: derivation.add(fd, "given") for fd in fd_list}

    x = target.lhs
    # current: index of the FD  X -> current_rhs  derived so far.
    current_rhs = x
    current_index = derivation.add(FunctionalDependency(x, x), "reflexivity")

    changed = True
    while changed and not target.rhs <= current_rhs:
        changed = False
        for fd in fd_list:
            if fd.lhs <= current_rhs and not fd.rhs <= current_rhs:
                # Augment fd by current_rhs:  (lhs ∪ current_rhs) -> (rhs ∪ current_rhs),
                # whose lhs equals current_rhs because fd.lhs ⊆ current_rhs.
                augmented = FunctionalDependency(current_rhs, fd.rhs | current_rhs)
                augmented_index = derivation.add(
                    augmented, "augmentation", (given_index[fd],)
                )
                # Transitivity: X -> current_rhs and current_rhs -> rhs ∪ current_rhs.
                new_rhs = fd.rhs | current_rhs
                current_index = derivation.add(
                    FunctionalDependency(x, new_rhs),
                    "transitivity",
                    (current_index, augmented_index),
                )
                current_rhs = new_rhs
                changed = True
    # Project down to the target right-hand side.
    if current_rhs != target.rhs:
        projection_index = derivation.add(
            FunctionalDependency(current_rhs, target.rhs), "reflexivity"
        )
        derivation.add(target, "transitivity", (current_index, projection_index))
    return derivation


def fd_implies_via_pds(
    fds: Iterable[FunctionalDependency], target: FunctionalDependency
) -> bool:
    """Decide FD implication by translating to FPDs and running ALG (§5.3, Theorem 3).

    Slower than attribute closure; exists to validate the correspondence and
    as a benchmark baseline (EXP-FD).
    """
    return fd_implies_all_via_pds(fds, [target])[0]


def fd_implies_all_via_pds(
    fds: Iterable[FunctionalDependency], targets: Iterable[FunctionalDependency]
) -> list[bool]:
    """Batch variant of :func:`fd_implies_via_pds`: one ALG engine for all targets.

    The FPD translation of ``Σ`` is loaded into a single incremental
    :class:`~repro.implication.alg.ImplicationEngine` and every target PD is
    decided against it, so the closure over ``E_Σ`` is propagated once and
    each target only pays for the delta its own subexpressions introduce —
    instead of one full ALG run per FD (the EXP-FD amortization benchmark
    measures the difference).
    """
    target_pds = [fd_to_pd(target) for target in targets]
    engine = ImplicationEngine(
        fds_to_pds(fds),
        query_expressions=[side for pd in target_pds for side in (pd.left, pd.right)],
    )
    return [engine.implies(pd) for pd in target_pds]


def closure_sequence(
    attributes: Union[str, AttributeSet], fds: Sequence[FunctionalDependency]
) -> list[AttributeSet]:
    """The increasing sequence of attribute sets visited by the closure fixpoint.

    Useful for teaching examples and for the EXPERIMENTS write-up; the last
    element is ``X⁺``.
    """
    current = as_attribute_set(attributes)
    fd_list = list(fds)
    sequence = [current]
    changed = True
    while changed:
        changed = False
        for fd in fd_list:
            if fd.lhs <= current and not fd.rhs <= current:
                current = current | fd.rhs
                sequence.append(current)
                changed = True
    return sequence


def is_superkey(
    attributes: Union[str, AttributeSet],
    universe: Union[str, AttributeSet],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True iff ``attributes`` functionally determines the whole ``universe`` under ``fds``."""
    return as_attribute_set(universe) <= closure(attributes, fds)
