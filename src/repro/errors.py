"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so client
code can catch a single exception type.  Subclasses are split along the
major subsystems of the paper: relational objects, partition interpretations,
partition expressions, and lattices.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relational object was built against an incompatible schema.

    Raised, for example, when a tuple does not cover exactly the attributes
    of its relation scheme, or when a projection mentions attributes that do
    not belong to the scheme.
    """


class DependencyError(ReproError):
    """A dependency (FD, MVD, FPD, PD) is malformed for its context."""


class PartitionError(ReproError):
    """A partition or partition interpretation violates its invariants.

    The invariants are the ones of Definition 1 of the paper: blocks are
    non-empty, pairwise disjoint, and their union is the population; the
    naming function maps distinct symbols to distinct blocks and covers
    every block.
    """


class ExpressionError(ReproError):
    """A partition expression is malformed or cannot be parsed."""


class LatticeError(ReproError):
    """A structure claimed to be a lattice violates the lattice axioms."""


class ConsistencyError(ReproError):
    """A consistency-test input is malformed (not: the test answered 'no')."""


class DeadlineExceeded(ReproError):
    """An active deadline scope has expired (cooperative control flow, not a fault).

    Raised by :func:`repro.deadline.check_deadline` inside the long-running
    kernels; :attr:`scope` is the expired :class:`repro.deadline.DeadlineScope`
    token, which handlers compare by identity so nested budgets (a request's
    ``deadline_ms`` inside a micro-batch window budget) each catch exactly
    their own expiry and re-raise the other's.
    """

    def __init__(self, scope=None, message: str = "deadline exceeded") -> None:
        self.scope = scope
        super().__init__(message)


class ServiceError(ReproError):
    """A query-service payload is malformed (bad wire version, kind or fields)."""


class QueryFailedError(ServiceError):
    """A typed convenience query (``Session.implies`` & co.) got an ``ok=false`` result.

    The wire surface reports decision-procedure failures as structured error
    *results* (a stream must answer every line); the typed surface raises
    instead, carrying the same ``{"type", "message"}`` payload in
    :attr:`details`.
    """

    def __init__(self, kind: str, details: dict) -> None:
        self.kind = kind
        self.details = dict(details or {})
        message = self.details.get("message", "query failed")
        error_type = self.details.get("type", "Error")
        super().__init__(f"{kind!r} query failed: {error_type}: {message}")


class QueryTimeoutError(QueryFailedError):
    """A typed query ran out of its ``deadline_ms`` budget (error type ``Timeout``).

    A subclass so existing ``except QueryFailedError`` handlers still catch
    it, while callers that want to treat overruns specially (retry elsewhere,
    degrade the answer) can target the timeout alone.
    """
