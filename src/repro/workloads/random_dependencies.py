"""Random FD and PD sets for benchmarks and property-based tests."""

from __future__ import annotations

import random
from typing import Union

from repro.dependencies.pd import PartitionDependency
from repro.relational.attributes import AttributeSet
from repro.relational.functional_dependencies import FunctionalDependency
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_relations import attribute_names

RandomLike = Union[int, random.Random]


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_fd(universe: list[str], seed: RandomLike = 0, max_side: int = 3) -> FunctionalDependency:
    """A random FD over ``universe`` with 1..max_side attributes per side."""
    rng = _rng(seed)
    lhs = rng.sample(universe, rng.randint(1, min(max_side, len(universe))))
    rhs = rng.sample(universe, rng.randint(1, min(max_side, len(universe))))
    return FunctionalDependency(AttributeSet(lhs), AttributeSet(rhs))


def random_fd_set(
    attribute_count: int, fd_count: int, seed: RandomLike = 0, max_side: int = 3
) -> list[FunctionalDependency]:
    """A random set of FDs over ``attribute_count`` attributes."""
    rng = _rng(seed)
    universe = attribute_names(attribute_count)
    return [random_fd(universe, rng, max_side) for _ in range(fd_count)]


def random_pd(
    universe: list[str], seed: RandomLike = 0, max_complexity: int = 3
) -> PartitionDependency:
    """A random PD over ``universe``: an equation between two random expressions."""
    rng = _rng(seed)
    left = random_expression(universe, rng, max_complexity)
    right = random_expression(universe, rng, max_complexity)
    return PartitionDependency(left, right)


def random_pd_set(
    attribute_count: int, pd_count: int, seed: RandomLike = 0, max_complexity: int = 3
) -> list[PartitionDependency]:
    """A random set of PDs over ``attribute_count`` attributes."""
    rng = _rng(seed)
    universe = attribute_names(attribute_count)
    return [random_pd(universe, rng, max_complexity) for _ in range(pd_count)]


def random_fpd_set(
    attribute_count: int, count: int, seed: RandomLike = 0, max_side: int = 3
) -> list[PartitionDependency]:
    """A random set of FPDs (as PDs of the shape ``X = X·Y``)."""
    from repro.dependencies.conversion import fd_to_pd

    return [fd_to_pd(fd) for fd in random_fd_set(attribute_count, count, seed, max_side)]
