"""Random mixed query-service streams: the service's workload generator.

The query service is exercised by *mixed* streams — implication, equivalence,
consistency, quotient and counterexample requests interleaved over a handful
of PD theories — which is exactly what neither the per-kind generators nor
the benchmarks produced before.  :func:`random_service_requests` builds such
a stream, seeded and deterministic:

* ``theory_count`` distinct PD sets are drawn up front; each request reasons
  over one of them, so the batch planner sees real grouping work (several
  dependency keys interleaved in one stream, not one);
* implication queries mix derived consequences with random equations (the
  :func:`~repro.workloads.random_implication.implication_query_stream`
  recipe), so both verdicts occur;
* consistency requests draw small multi-relation databases; CAD requests
  (optional) use an FPD-only theory, as Theorem 11 requires;
* everything stays deliberately small — the stream's purpose is breadth of
  dispatch shape, not depth of any single decision procedure.

``embed_dependencies=True`` (the default) attaches each request's theory
explicitly, making streams self-contained for the CLI and the shard
executor; ``False`` produces bare implication/equivalence/weak-instance
requests for sessions that own Γ.  CAD and counterexample requests keep
their dedicated theories even then — CAD is only defined for FPD-only
constraint sets (Theorem 11) and the counterexample construction needs its
deliberately tiny theory, so pointing either at an arbitrary session Γ
would just manufacture error results.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Union

from repro.dependencies.conversion import fd_to_pd
from repro.dependencies.pd import PartitionDependency
from repro.service.wire import QueryRequest
from repro.workloads.random_dependencies import random_fd, random_fd_set, random_pd
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_implication import implication_query_stream
from repro.workloads.random_relations import attribute_names, random_database

RandomLike = Union[int, random.Random]


def poisson_arrival_times(
    count: int, rate: float, seed: RandomLike = 0, start: float = 0.0
) -> list[float]:
    """``count`` Poisson-process arrival offsets (seconds) at ``rate`` arrivals/second.

    The open-loop serving workload: inter-arrival gaps are i.i.d.
    exponential with mean ``1/rate``, so the stream models independent
    clients who do *not* wait for answers before sending — exactly the load
    shape where a micro-batch window either recovers the planner's
    amortization or the per-request baseline falls behind.  Deterministic
    per seed; strictly increasing.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    rng = _rng(seed)
    times: list[float] = []
    now = start
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def open_loop_service_workload(
    count: int, rate: float, seed: RandomLike = 0, **request_kwargs
) -> list[tuple[float, "QueryRequest"]]:
    """A seeded open-loop stream: ``(arrival_seconds, request)`` pairs.

    Requests come from :func:`random_service_requests` (``request_kwargs``
    forwarded), arrivals from :func:`poisson_arrival_times`; both draw from
    one generator so a single seed pins the whole workload.
    """
    rng = _rng(seed)
    requests = random_service_requests(count, seed=rng, **request_kwargs)
    return list(zip(poisson_arrival_times(count, rate, seed=rng), requests))

#: Default mixture; weights need not sum to anything in particular.
DEFAULT_KIND_WEIGHTS = {
    "implies": 5,
    "equivalent": 3,
    "consistent": 3,
    "counterexample": 1,
    "fd_implies": 2,
}


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_service_requests(
    count: int,
    seed: RandomLike = 0,
    attribute_count: int = 5,
    theory_count: int = 2,
    pds_per_theory: int = 3,
    max_complexity: int = 2,
    kind_weights: Optional[dict[str, int]] = None,
    include_cad: bool = False,
    embed_dependencies: bool = True,
    max_pool: int = 400,
) -> list[QueryRequest]:
    """A seeded mixed request stream of ``count`` queries over a few PD theories.

    Returns requests with ids ``q0, q1, ...`` in stream order.  With
    ``include_cad=True`` a slice of the consistency requests runs the
    NP-complete CAD test against a dedicated FPD-only theory (sizes are kept
    tiny so the backtracking search stays cheap).
    """
    rng = _rng(seed)
    weights = dict(DEFAULT_KIND_WEIGHTS if kind_weights is None else kind_weights)
    universe = attribute_names(attribute_count)

    theories: list[list[PartitionDependency]] = []
    for _ in range(max(1, theory_count)):
        theories.append(
            [random_pd(universe, rng, max_complexity) for _ in range(pds_per_theory)]
        )
    # One query stream per theory, so implication requests exercise the
    # derived-consequence path against *their* theory.
    streams = [
        implication_query_stream(theory, universe, seed=rng, max_complexity=max_complexity)
        for theory in theories
    ]
    # CAD needs an FPD-only theory (Theorem 11 constraints are FDs in PD form)
    # over the database universe — CAD rejects FDs mentioning attributes the
    # database cannot fill in.
    cad_universe = min(attribute_count, 4)
    cad_theory = [fd_to_pd(fd) for fd in random_fd_set(cad_universe, 2, seed=rng, max_side=2)]
    # Counterexample construction (Theorem 8's L_H) is exponential in the
    # attribute set and complexity bound, so those queries run against a tiny
    # dedicated theory — the point is exercising the pipeline, not sizing it.
    ce_universe = universe[: min(3, attribute_count)]
    ce_theory = [random_pd(ce_universe, rng, 1)]

    kinds = list(weights)
    kind_weights_list = [weights[k] for k in kinds]
    requests: list[QueryRequest] = []
    for index in range(count):
        kind = rng.choices(kinds, weights=kind_weights_list)[0]
        theory_index = rng.randrange(len(theories))
        theory = theories[theory_index]
        deps = tuple(theory) if embed_dependencies else None
        request_id = f"q{index}"
        if kind == "implies":
            query = next(streams[theory_index])
            requests.append(
                QueryRequest(kind="implies", id=request_id, dependencies=deps, query=query)
            )
        elif kind == "equivalent":
            left = random_expression(universe, rng, max_complexity)
            right = random_expression(universe, rng, max_complexity)
            requests.append(
                QueryRequest(
                    kind="equivalent", id=request_id, dependencies=deps, left=left, right=right
                )
            )
        elif kind == "consistent":
            use_cad = include_cad and rng.random() < 0.25
            database = random_database(
                relation_count=2,
                universe_size=min(attribute_count, 4),
                # CAD rejects FDs over attributes no relation mentions, so CAD
                # databases span the whole (tiny) universe.
                attributes_per_relation=cad_universe if use_cad else 3,
                tuples_per_relation=2 if use_cad else 3,
                domain_size=3,
                seed=rng,
            )
            if use_cad:
                requests.append(
                    QueryRequest(
                        kind="consistent",
                        id=request_id,
                        dependencies=tuple(cad_theory),
                        database=database,
                        method="cad",
                        max_nodes=50_000,
                    )
                )
            else:
                requests.append(
                    QueryRequest(
                        kind="consistent",
                        id=request_id,
                        dependencies=deps,
                        database=database,
                        method="weak_instance",
                    )
                )
        elif kind == "counterexample":
            query = random_pd(ce_universe, rng, 1)
            requests.append(
                QueryRequest(
                    kind="counterexample",
                    id=request_id,
                    dependencies=tuple(ce_theory),
                    query=query,
                    max_pool=max_pool,
                )
            )
        else:  # fd_implies
            fds = tuple(random_fd_set(attribute_count, 3, seed=rng, max_side=2))
            target = random_fd(universe, rng, max_side=2)
            requests.append(
                QueryRequest(kind="fd_implies", id=request_id, fds=fds, target=target)
            )
    return requests


def zipf_tenant_weights(tenants: int, skew: float) -> list[float]:
    """Unnormalized Zipfian popularity weights ``1/rank^skew`` for ``tenants`` ranks.

    Rank 1 is the hottest tenant; ``skew=0`` degenerates to a uniform
    distribution and larger ``skew`` concentrates traffic on the head — the
    regime where a shared result cache pays for itself because the hot
    tenants' working sets fit while the cold tail would thrash per-worker
    islands.
    """
    if tenants < 1:
        raise ValueError(f"tenant count must be positive, got {tenants}")
    if skew < 0:
        raise ValueError(f"Zipf skew must be non-negative, got {skew}")
    return [1.0 / float(rank) ** skew for rank in range(1, tenants + 1)]


def zipf_multitenant_requests(
    count: int,
    seed: RandomLike = 0,
    tenants: int = 50,
    skew: float = 1.0,
    pool_per_tenant: int = 4,
    tenant_prefix: str = "t",
    **request_kwargs,
) -> list[QueryRequest]:
    """A seeded multi-tenant stream: Zipf-distributed tenants over fixed request pools.

    Each of the ``tenants`` tenants owns a pre-built pool of
    ``pool_per_tenant`` mixed requests (built once via
    :func:`random_service_requests` over a shared theory pool, so the batch
    planner still sees cross-tenant grouping structure).  Every draw picks a
    tenant by :func:`zipf_tenant_weights` and then one request uniformly from
    that tenant's pool, re-stamped with a fresh stream id ``q0, q1, ...`` —
    so hot tenants naturally repeat identical cacheable requests while the
    cold tail barely re-asks anything.  That is exactly the EXP-TEN traffic
    shape: a consistently-hashed shared cache should answer the head
    parent-side while per-worker islands keep recomputing it.

    ``request_kwargs`` are forwarded to :func:`random_service_requests`
    (``kind_weights``, ``theory_count``, ``embed_dependencies``, ...).
    Deterministic per seed; tenants are named ``{tenant_prefix}1`` (hottest)
    through ``{tenant_prefix}{tenants}``.
    """
    if count < 0:
        raise ValueError(f"request count must be non-negative, got {count}")
    if pool_per_tenant < 1:
        raise ValueError(f"pool size per tenant must be positive, got {pool_per_tenant}")
    weights = zipf_tenant_weights(tenants, skew)
    rng = _rng(seed)
    base = random_service_requests(tenants * pool_per_tenant, seed=rng, **request_kwargs)
    pools = [
        base[rank * pool_per_tenant : (rank + 1) * pool_per_tenant]
        for rank in range(tenants)
    ]
    ranks = range(tenants)
    requests: list[QueryRequest] = []
    for index in range(count):
        rank = rng.choices(ranks, weights=weights)[0]
        template = pools[rank][rng.randrange(pool_per_tenant)]
        requests.append(
            replace(template, id=f"q{index}", tenant=f"{tenant_prefix}{rank + 1}")
        )
    return requests
