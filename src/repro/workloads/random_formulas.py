"""Random 3CNF formulas for the NP-completeness experiments (EXP-T11, Figure 3)."""

from __future__ import annotations

import random
from typing import Union

from repro.sat.formulas import CnfFormula, Clause, Literal

RandomLike = Union[int, random.Random]


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_3cnf(
    variable_count: int, clause_count: int, seed: RandomLike = 0, proper: bool = True
) -> CnfFormula:
    """A random 3CNF formula over ``x1 ... xn``.

    With ``proper=True`` every clause gets three *distinct* variables (the
    shape NOT-ALL-EQUAL-3SAT assumes); otherwise variables may repeat inside
    a clause, exercising the normalization path of the reduction.
    """
    rng = _rng(seed)
    variables = [f"x{i}" for i in range(1, variable_count + 1)]
    clauses = []
    for _ in range(clause_count):
        if proper and variable_count >= 3:
            chosen = rng.sample(variables, 3)
        else:
            chosen = [rng.choice(variables) for _ in range(3)]
        literals = tuple(Literal(v, rng.random() < 0.5) for v in chosen)
        clauses.append(Clause(literals))
    return CnfFormula(tuple(clauses))


def random_nae_satisfiable_3cnf(
    variable_count: int, clause_count: int, seed: RandomLike = 0
) -> CnfFormula:
    """A random proper 3CNF that is guaranteed NAE-satisfiable (planted assignment).

    A hidden assignment is drawn first; each clause is resampled until it has
    at least one true and one false literal under it.
    """
    rng = _rng(seed)
    variables = [f"x{i}" for i in range(1, variable_count + 1)]
    hidden = {v: rng.random() < 0.5 for v in variables}
    clauses = []
    for _ in range(clause_count):
        while True:
            chosen = rng.sample(variables, min(3, variable_count))
            literals = tuple(Literal(v, rng.random() < 0.5) for v in chosen)
            clause = Clause(literals)
            if clause.nae_evaluate(hidden):
                clauses.append(clause)
                break
    return CnfFormula(tuple(clauses))
