"""Random graph workloads for the connectivity experiments (EXP-T4)."""

from __future__ import annotations

import random
from typing import Union

from repro.graphs.encoding import graph_to_relation
from repro.graphs.families import random_graph
from repro.relational.relations import Relation

RandomLike = Union[int, random.Random]


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_graph_relation(
    vertex_count: int, edge_probability: float, seed: RandomLike = 0, name: str | None = None
) -> Relation:
    """The Example e relation of a random graph, with correct component labels."""
    rng = _rng(seed)
    vertices, edges = random_graph(vertex_count, edge_probability, seed=rng.randint(0, 2**31))
    return graph_to_relation(vertices, edges, name=name or f"random_graph_{vertex_count}")


def random_sparse_forest_relation(
    vertex_count: int, seed: RandomLike = 0, name: str | None = None
) -> Relation:
    """A random forest (each vertex attaches to a random earlier vertex or starts a tree).

    Forests maximize the ratio of components to edges, which is the
    interesting regime for the connectivity PD (lots of distinct C values).
    """
    rng = _rng(seed)
    vertices = list(range(vertex_count))
    edges = []
    for v in range(1, vertex_count):
        if rng.random() < 0.7:
            edges.append(frozenset({v, rng.randrange(0, v)}))
    return graph_to_relation(vertices, edges, name=name or f"forest_{vertex_count}")
