"""Random implication workloads: PD theories with scalable query streams.

The implication service (:class:`repro.implication.index.ImplicationIndex`)
is exercised by *streams* of queries against one PD set — every query drags a
few new subexpressions into the ALG vertex set.  The generators here produce
exactly that shape, seeded and deterministic, for the EXP-ALG benchmarks and
the randomized cross-check tests.

Queries are a controlled mixture of

* **derived consequences** — congruence images ``e·g = e'·g`` / ``e+g = e'+g``
  of a theory equation ``e = e'`` (guaranteed implied, so the positive path
  through the engine is exercised), and
* **random equations** — independent random PDs (usually not implied).

``implied_fraction`` tunes the mixture; the defaults give a roughly even
split so neither branch of ``implies`` dominates the measurements.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import Union

from repro.dependencies.pd import PartitionDependency
from repro.expressions.ast import Product, Sum
from repro.workloads.random_dependencies import random_pd, random_pd_set
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_relations import attribute_names

RandomLike = Union[int, random.Random]


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def _derived_consequence(
    rng: random.Random, theory: list[PartitionDependency], universe: list[str], max_complexity: int
) -> PartitionDependency:
    """A PD implied by ``theory``: a congruence image of one of its equations.

    If ``e = e'`` is in the theory then ``e ⊛ g = e' ⊛ g`` holds in every
    lattice satisfying it, for either operator and any expression ``g``.
    """
    pd = rng.choice(theory)
    g = random_expression(universe, rng, max_complexity)
    operator = Product if rng.random() < 0.5 else Sum
    if rng.random() < 0.5:
        return PartitionDependency(operator(pd.left, g), operator(pd.right, g))
    return PartitionDependency(operator(g, pd.left), operator(g, pd.right))


def implication_query_stream(
    theory: list[PartitionDependency],
    universe: list[str],
    seed: RandomLike = 0,
    max_complexity: int = 3,
    implied_fraction: float = 0.5,
) -> Iterator[PartitionDependency]:
    """An endless, seeded stream of query PDs against a fixed ``theory``.

    Mixes derived consequences (implied by construction) with independent
    random PDs.  Callers slice off as many queries as their experiment needs,
    so one generator scales from smoke tests to large benchmark sweeps.
    """
    rng = _rng(seed)
    while True:
        if theory and rng.random() < implied_fraction:
            yield _derived_consequence(rng, theory, universe, max_complexity)
        else:
            yield random_pd(universe, rng, max_complexity)


def random_implication_workload(
    attribute_count: int,
    pd_count: int,
    query_count: int,
    seed: RandomLike = 0,
    max_complexity: int = 3,
    implied_fraction: float = 0.5,
) -> tuple[list[PartitionDependency], list[PartitionDependency]]:
    """A complete implication workload: ``(theory, queries)``.

    ``theory`` is a random PD set over ``attribute_count`` attributes and
    ``queries`` is a ``query_count``-long prefix of
    :func:`implication_query_stream` against it.
    """
    rng = _rng(seed)
    universe = attribute_names(attribute_count)
    theory = random_pd_set(attribute_count, pd_count, seed=rng, max_complexity=max_complexity)
    stream = implication_query_stream(
        theory,
        universe,
        seed=rng,
        max_complexity=max_complexity,
        implied_fraction=implied_fraction,
    )
    queries = [next(stream) for _ in range(query_count)]
    return theory, queries
