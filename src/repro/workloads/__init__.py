"""Workload generators: random relations, databases, dependency sets, expressions, graphs, formulas.

Everything is seeded and deterministic; these are the inputs of the
benchmark harness and of the randomized cross-check tests.
"""

from repro.workloads.random_dependencies import (
    random_fd,
    random_fd_set,
    random_fpd_set,
    random_pd,
    random_pd_set,
)
from repro.workloads.random_expressions import (
    random_expression,
    random_expression_of_exact_complexity,
)
from repro.workloads.random_formulas import random_3cnf, random_nae_satisfiable_3cnf
from repro.workloads.random_implication import (
    implication_query_stream,
    random_implication_workload,
)
from repro.workloads.random_graphs import random_graph_relation, random_sparse_forest_relation
from repro.workloads.random_service import (
    random_service_requests,
    zipf_multitenant_requests,
    zipf_tenant_weights,
)
from repro.workloads.random_relations import (
    attribute_names,
    chained_consistent_database,
    random_consistent_database,
    random_database,
    random_functional_relation,
    random_relation,
)

__all__ = [
    "attribute_names",
    "random_relation",
    "random_functional_relation",
    "random_database",
    "random_consistent_database",
    "chained_consistent_database",
    "random_fd",
    "random_fd_set",
    "random_pd",
    "random_pd_set",
    "random_fpd_set",
    "random_expression",
    "random_expression_of_exact_complexity",
    "implication_query_stream",
    "random_implication_workload",
    "random_graph_relation",
    "random_sparse_forest_relation",
    "random_3cnf",
    "random_nae_satisfiable_3cnf",
    "random_service_requests",
    "zipf_multitenant_requests",
    "zipf_tenant_weights",
]
