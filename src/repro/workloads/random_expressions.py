"""Random partition expressions (lattice terms) for benchmarks and property tests."""

from __future__ import annotations

import random
from typing import Union

from repro.expressions.ast import Attr, PartitionExpression, Product, Sum

RandomLike = Union[int, random.Random]


def _rng(seed: RandomLike) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_expression(
    universe: list[str],
    seed: RandomLike = 0,
    max_complexity: int = 3,
    product_bias: float = 0.5,
) -> PartitionExpression:
    """A random expression over ``universe`` with at most ``max_complexity`` operators.

    ``product_bias`` is the probability that an internal node is a product
    rather than a sum; 1.0 produces FD-like (product-only) terms, 0.0
    produces pure sums.
    """
    rng = _rng(seed)

    def build(budget: int) -> PartitionExpression:
        if budget <= 0 or rng.random() < 0.3:
            return Attr(rng.choice(universe))
        left_budget = rng.randint(0, budget - 1)
        right_budget = budget - 1 - left_budget
        left = build(left_budget)
        right = build(right_budget)
        if rng.random() < product_bias:
            return Product(left, right)
        return Sum(left, right)

    return build(max_complexity)


def random_expression_of_exact_complexity(
    universe: list[str], complexity: int, seed: RandomLike = 0, product_bias: float = 0.5
) -> PartitionExpression:
    """A random expression with *exactly* ``complexity`` operators (for scaling sweeps)."""
    rng = _rng(seed)

    def build(budget: int) -> PartitionExpression:
        if budget == 0:
            return Attr(rng.choice(universe))
        left_budget = rng.randint(0, budget - 1)
        right_budget = budget - 1 - left_budget
        left = build(left_budget)
        right = build(right_budget)
        if rng.random() < product_bias:
            return Product(left, right)
        return Sum(left, right)

    return build(complexity)
