"""Consistency under CAD + EAP: the NP-complete variant (Theorem 6b, Theorem 11, §6.1).

By Theorem 6b, a database ``d`` with a set ``E`` of FPDs has a satisfying
partition interpretation obeying the complete-atomic-data and
equal-atomic-populations assumptions iff ``d`` has a weak instance ``w``
satisfying ``E_F`` with ``w[A] = d[A]`` for every attribute ``A`` — i.e. a
weak instance that invents *no new symbols*.  Theorem 11 shows deciding this
is NP-complete.

This module implements an exact solver for the problem as a finite-domain
constraint search:

* one row per database tuple, padded out to the full universe (membership in
  NP per the paper: one row per tuple suffices);
* each padded cell ranges over ``d[A]`` (the symbols already present under
  ``A`` anywhere in the database);
* the constraints are the FDs ``E_F``.

The search is backtracking with forward FD-violation checking and a
most-constrained-cell heuristic.  FD checking is **incremental**: instead of
rescanning every row for every FD after each assignment, the solver
maintains, per FD, buckets of rows keyed by their (fully assigned)
left-hand-side values; assigning a cell touches only the FDs that mention
the just-assigned attribute — completing a row's LHS files it into its
bucket and compares its assigned RHS cells against the bucket's other rows,
while an RHS assignment compares one cell within the row's existing bucket.
Undo pops the same updates.  The full rescan survives as
:func:`full_fd_rescan` and, with ``debug_rescan=True``, cross-checks every
incremental verdict.  Exponential in the worst case — that is the point of
Theorem 11 — but fast enough to run the Figure 3 reduction and the EXP-T11
benchmark sweep, and exact (cross-checked against the NAE-3SAT oracle in the
tests).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro import profiling
from repro.consistency.normalization import validate_only_fpds
from repro.deadline import check_deadline
from repro.dependencies.pd import PartitionDependencyLike
from repro.errors import ConsistencyError
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.attributes import Attribute, AttributeSet, Symbol
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


@dataclass(frozen=True)
class CadConsistencyResult:
    """Outcome of the CAD+EAP consistency test.

    ``consistent`` — the verdict;
    ``witness`` — a weak instance ``w`` with ``w[A] ⊆ d[A]`` per column and
    one row per database tuple, satisfying the FDs (when consistent);
    ``interpretation`` — ``I(w)``, which satisfies ``d``, ``E``, CAD and EAP;
    ``search_nodes`` — number of assignments explored (the benchmark's cost measure).
    """

    consistent: bool
    witness: Optional[Relation]
    interpretation: Optional[PartitionInterpretation]
    search_nodes: int


def full_fd_rescan(
    template: Sequence[dict[Attribute, Optional[Symbol]]],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Check the FDs on the currently assigned cells by a full rescan (None = unknown).

    The seed's per-node check, preserved as the oracle for the incremental
    bucket checker: rows whose LHS is fully assigned are grouped by their
    LHS values, and assigned RHS cells within a group must agree.
    """
    for fd in fds:
        seen: dict[tuple[Optional[Symbol], ...], list[dict[Attribute, Optional[Symbol]]]] = {}
        for cells in template:
            lhs_values = tuple(cells[a] for a in fd.lhs)
            if any(value is None for value in lhs_values):
                continue
            bucket = seen.setdefault(lhs_values, [])
            for other in bucket:
                for b in fd.rhs:
                    left, right = cells[b], other[b]
                    if left is not None and right is not None and left != right:
                        return False
            bucket.append(cells)
    return True


class _IncrementalFdChecker:
    """Per-assignment FD consistency through maintained LHS-value buckets.

    For each FD the checker tracks, per row, how many LHS cells are still
    unassigned; rows with a complete LHS live in a bucket keyed by their LHS
    value tuple.  :meth:`assign` updates only the FDs mentioning the
    assigned attribute and reports whether the new cell creates a violation;
    :meth:`undo` reverts the bookkeeping of the matching ``assign``.  The
    verdict is identical to :func:`full_fd_rescan` run from scratch, because
    a single new cell can only create violations in pairs that involve it:
    either its row just entered a bucket (all assigned RHS cells are
    compared) or its row already sat in one (the new RHS cell is compared).
    """

    def __init__(
        self,
        template: list[dict[Attribute, Optional[Symbol]]],
        fds: Sequence[FunctionalDependency],
    ) -> None:
        self._template = template
        self._fds = list(fds)
        self._lhs: list[tuple[Attribute, ...]] = [tuple(fd.lhs) for fd in self._fds]
        self._rhs: list[tuple[Attribute, ...]] = [tuple(fd.rhs) for fd in self._fds]
        self._by_lhs_attr: dict[Attribute, list[int]] = {}
        self._by_rhs_attr: dict[Attribute, list[int]] = {}
        for k, fd in enumerate(self._fds):
            for a in self._lhs[k]:
                self._by_lhs_attr.setdefault(a, []).append(k)
            for a in self._rhs[k]:
                self._by_rhs_attr.setdefault(a, []).append(k)
        # buckets[k]: LHS value tuple -> row indices with that (complete) LHS.
        self._buckets: list[dict[tuple[Symbol, ...], list[int]]] = [{} for _ in self._fds]
        # missing[k][r]: number of still-unassigned LHS cells of row r for FD k.
        self._missing: list[list[int]] = [[0] * len(template) for _ in self._fds]
        self._key_of: list[dict[int, tuple[Symbol, ...]]] = [{} for _ in self._fds]
        for k in range(len(self._fds)):
            lhs = self._lhs[k]
            missing_k = self._missing[k]
            for r, cells in enumerate(template):
                missing_k[r] = sum(1 for a in lhs if cells[a] is None)
                if missing_k[r] == 0:
                    key = tuple(cells[a] for a in lhs)
                    self._buckets[k].setdefault(key, []).append(r)
                    self._key_of[k][r] = key
        self._undo_log: list[list[tuple[str, int, int, tuple[Symbol, ...]]]] = []

    def _bucket_conflict(self, k: int, row: int, key: tuple[Symbol, ...], attributes) -> bool:
        """Any assigned-RHS disagreement between ``row`` and its bucket mates."""
        template = self._template
        cells = template[row]
        for other in self._buckets[k].get(key, ()):
            if other == row:
                continue
            other_cells = template[other]
            for b in attributes:
                left, right = cells[b], other_cells[b]
                if left is not None and right is not None and left != right:
                    return True
        return False

    def assign(self, row: int, attribute: Attribute, symbol: Symbol) -> bool:
        """Set one cell; returns False iff the FDs are now violated (state kept either way).

        Call :meth:`undo` to revert — including after a ``False`` verdict.
        """
        template = self._template
        template[row][attribute] = symbol
        frame: list[tuple[str, int, int, tuple[Symbol, ...]]] = []
        self._undo_log.append(frame)
        ok = True
        cells = template[row]
        completed: set[int] = set()
        for k in self._by_lhs_attr.get(attribute, ()):
            missing_k = self._missing[k]
            missing_k[row] -= 1
            frame.append(("miss", k, row, ()))
            if missing_k[row] == 0:
                key = tuple(cells[a] for a in self._lhs[k])
                if ok and self._bucket_conflict(k, row, key, self._rhs[k]):
                    ok = False
                self._buckets[k].setdefault(key, []).append(row)
                self._key_of[k][row] = key
                frame.append(("bucket", k, row, key))
                completed.add(k)
        if ok:
            for k in self._by_rhs_attr.get(attribute, ()):
                if k in completed:
                    continue  # the completion check above compared every RHS cell
                key = self._key_of[k].get(row)
                if key is not None and self._bucket_conflict(k, row, key, (attribute,)):
                    ok = False
                    break
        return ok

    def undo(self, row: int, attribute: Attribute) -> None:
        """Revert the latest :meth:`assign` (which must have set this very cell)."""
        frame = self._undo_log.pop()
        for kind, k, r, key in reversed(frame):
            if kind == "miss":
                self._missing[k][r] += 1
            else:
                bucket = self._buckets[k][key]
                bucket.remove(r)
                if not bucket:
                    del self._buckets[k][key]
                del self._key_of[k][r]
        self._template[row][attribute] = None


def cad_consistency(
    database: Database,
    fds: Sequence[FunctionalDependency],
    max_nodes: Optional[int] = None,
    debug_rescan: bool = False,
) -> CadConsistencyResult:
    """Exact CAD+EAP consistency test for a database and FDs ``E_F`` (Theorem 6b / 11).

    ``max_nodes`` optionally bounds the number of explored search nodes; when
    the bound is hit a :class:`ConsistencyError` is raised (so benchmark
    sweeps can cap their cost without silently mis-reporting).
    ``debug_rescan=True`` cross-checks every incremental FD verdict against
    :func:`full_fd_rescan` (slow; used by the tests).
    """
    universe = database.universe
    for fd in fds:
        missing = AttributeSet(fd.attributes) - universe
        if missing:
            raise ConsistencyError(
                f"FD {fd} mentions attributes {sorted(missing)} outside the database universe"
            )

    # Build the padded rows: a list of dicts attribute -> symbol or None (unknown).
    template: list[dict[Attribute, Optional[Symbol]]] = []
    for relation in database.relations:
        for row in relation.sorted_rows():
            cells: dict[Attribute, Optional[Symbol]] = {a: None for a in universe}
            for attribute in relation.attributes:
                cells[attribute] = row[attribute]
            template.append(cells)
    if not template:
        raise ConsistencyError("the database has no tuples; CAD consistency is undefined")

    domains: dict[Attribute, list[Symbol]] = {
        attribute: sorted(database.symbols_under(attribute)) for attribute in universe
    }

    unknowns: list[tuple[int, Attribute]] = [
        (row_index, attribute)
        for row_index, cells in enumerate(template)
        for attribute in universe
        if cells[attribute] is None
    ]
    # Most-constrained first: smallest domain.
    unknowns.sort(key=lambda cell: (len(domains[cell[1]]), cell[0], cell[1]))

    for _, attribute in unknowns:
        if not domains[attribute]:
            # No symbol ever appears under this attribute, so no CAD-respecting
            # weak instance can fill the column.
            return CadConsistencyResult(False, None, None, 0)

    fd_list = list(fds)
    nodes = 0
    checker = _IncrementalFdChecker(template, fd_list)
    prof = profiling.active()

    def backtrack(index: int) -> bool:
        nonlocal nodes
        if index == len(unknowns):
            return True
        row_index, attribute = unknowns[index]
        for symbol in domains[attribute]:
            nodes += 1
            if prof is not None:
                prof.backtrack_nodes += 1
                prof.deadline_checks += 1
            check_deadline()  # NP-complete search: one budget check per node
            if max_nodes is not None and nodes > max_nodes:
                raise ConsistencyError(f"CAD search exceeded {max_nodes} nodes")
            consistent = checker.assign(row_index, attribute, symbol)
            if debug_rescan and consistent != full_fd_rescan(template, fd_list):
                raise ConsistencyError(
                    "incremental FD checker diverged from the full rescan at "
                    f"row {row_index}, attribute {attribute!r}, symbol {symbol!r}"
                )
            if consistent and backtrack(index + 1):
                return True
            checker.undo(row_index, attribute)
        return False

    if not full_fd_rescan(template, fd_list):
        return CadConsistencyResult(False, None, None, 0)
    if not backtrack(0):
        return CadConsistencyResult(False, None, None, nodes)

    rows = [Row({a: cells[a] for a in universe}) for cells in template]  # type: ignore[arg-type]
    witness = Relation(RelationScheme("cad_weak_instance", universe), rows)
    interpretation = canonical_interpretation(witness)
    return CadConsistencyResult(True, witness, interpretation, nodes)


def cad_consistency_for_fpds(
    database: Database,
    dependencies: Sequence[PartitionDependencyLike],
    max_nodes: Optional[int] = None,
    debug_rescan: bool = False,
) -> CadConsistencyResult:
    """The same test with the constraints given as FPDs (the paper's statement of Theorem 11)."""
    return cad_consistency(
        database, validate_only_fpds(dependencies), max_nodes=max_nodes, debug_rescan=debug_rescan
    )


def verify_cad_witness(
    database: Database, fds: Sequence[FunctionalDependency], witness: Relation
) -> bool:
    """Independent check of a claimed witness: weak instance, FDs, and ``w[A] = d[A]``.

    Used by tests to validate the solver's output without trusting the search.
    """
    from repro.relational.weak_instance import is_weak_instance

    if not is_weak_instance(witness, database):
        return False
    if not all(fd.is_satisfied_by(witness) for fd in fds):
        return False
    for attribute in database.universe:
        if witness.column(attribute) != database.symbols_under(attribute):
            return False
    return True
