"""Consistency under CAD + EAP: the NP-complete variant (Theorem 6b, Theorem 11, §6.1).

By Theorem 6b, a database ``d`` with a set ``E`` of FPDs has a satisfying
partition interpretation obeying the complete-atomic-data and
equal-atomic-populations assumptions iff ``d`` has a weak instance ``w``
satisfying ``E_F`` with ``w[A] = d[A]`` for every attribute ``A`` — i.e. a
weak instance that invents *no new symbols*.  Theorem 11 shows deciding this
is NP-complete.

This module implements an exact solver for the problem as a finite-domain
constraint search:

* one row per database tuple, padded out to the full universe (membership in
  NP per the paper: one row per tuple suffices);
* each padded cell ranges over ``d[A]`` (the symbols already present under
  ``A`` anywhere in the database);
* the constraints are the FDs ``E_F``.

The search is backtracking with forward FD-violation checking and a
most-constrained-cell heuristic.  Exponential in the worst case — that is the
point of Theorem 11 — but fast enough to run the Figure 3 reduction and the
EXP-T11 benchmark sweep, and exact (cross-checked against the NAE-3SAT
oracle in the tests).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.consistency.normalization import validate_only_fpds
from repro.dependencies.pd import PartitionDependencyLike
from repro.errors import ConsistencyError
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.attributes import Attribute, AttributeSet, Symbol
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


@dataclass(frozen=True)
class CadConsistencyResult:
    """Outcome of the CAD+EAP consistency test.

    ``consistent`` — the verdict;
    ``witness`` — a weak instance ``w`` with ``w[A] ⊆ d[A]`` per column and
    one row per database tuple, satisfying the FDs (when consistent);
    ``interpretation`` — ``I(w)``, which satisfies ``d``, ``E``, CAD and EAP;
    ``search_nodes`` — number of assignments explored (the benchmark's cost measure).
    """

    consistent: bool
    witness: Optional[Relation]
    interpretation: Optional[PartitionInterpretation]
    search_nodes: int


def cad_consistency(
    database: Database,
    fds: Sequence[FunctionalDependency],
    max_nodes: Optional[int] = None,
) -> CadConsistencyResult:
    """Exact CAD+EAP consistency test for a database and FDs ``E_F`` (Theorem 6b / 11).

    ``max_nodes`` optionally bounds the number of explored search nodes; when
    the bound is hit a :class:`ConsistencyError` is raised (so benchmark
    sweeps can cap their cost without silently mis-reporting).
    """
    universe = database.universe
    for fd in fds:
        missing = AttributeSet(fd.attributes) - universe
        if missing:
            raise ConsistencyError(
                f"FD {fd} mentions attributes {sorted(missing)} outside the database universe"
            )

    # Build the padded rows: a list of dicts attribute -> symbol or None (unknown).
    template: list[dict[Attribute, Optional[Symbol]]] = []
    for relation in database.relations:
        for row in relation.sorted_rows():
            cells: dict[Attribute, Optional[Symbol]] = {a: None for a in universe}
            for attribute in relation.attributes:
                cells[attribute] = row[attribute]
            template.append(cells)
    if not template:
        raise ConsistencyError("the database has no tuples; CAD consistency is undefined")

    domains: dict[Attribute, list[Symbol]] = {
        attribute: sorted(database.symbols_under(attribute)) for attribute in universe
    }

    unknowns: list[tuple[int, Attribute]] = [
        (row_index, attribute)
        for row_index, cells in enumerate(template)
        for attribute in universe
        if cells[attribute] is None
    ]
    # Most-constrained first: smallest domain.
    unknowns.sort(key=lambda cell: (len(domains[cell[1]]), cell[0], cell[1]))

    for _, attribute in unknowns:
        if not domains[attribute]:
            # No symbol ever appears under this attribute, so no CAD-respecting
            # weak instance can fill the column.
            return CadConsistencyResult(False, None, None, 0)

    fd_list = list(fds)
    nodes = 0

    def fd_consistent_so_far() -> bool:
        """Check the FDs on the currently assigned cells (None = still unknown)."""
        for fd in fd_list:
            seen: dict[tuple[Symbol, ...], list[dict[Attribute, Optional[Symbol]]]] = {}
            for cells in template:
                lhs_values = tuple(cells[a] for a in fd.lhs)
                if any(value is None for value in lhs_values):
                    continue
                bucket = seen.setdefault(lhs_values, [])
                for other in bucket:
                    for b in fd.rhs:
                        left, right = cells[b], other[b]
                        if left is not None and right is not None and left != right:
                            return False
                bucket.append(cells)
        return True

    def backtrack(index: int) -> bool:
        nonlocal nodes
        if index == len(unknowns):
            return True
        row_index, attribute = unknowns[index]
        for symbol in domains[attribute]:
            nodes += 1
            if max_nodes is not None and nodes > max_nodes:
                raise ConsistencyError(f"CAD search exceeded {max_nodes} nodes")
            template[row_index][attribute] = symbol
            if fd_consistent_so_far() and backtrack(index + 1):
                return True
            template[row_index][attribute] = None
        return False

    if not fd_consistent_so_far():
        return CadConsistencyResult(False, None, None, 0)
    if not backtrack(0):
        return CadConsistencyResult(False, None, None, nodes)

    rows = [Row({a: cells[a] for a in universe}) for cells in template]  # type: ignore[arg-type]
    witness = Relation(RelationScheme("cad_weak_instance", universe), rows)
    interpretation = canonical_interpretation(witness)
    return CadConsistencyResult(True, witness, interpretation, nodes)


def cad_consistency_for_fpds(
    database: Database,
    dependencies: Sequence[PartitionDependencyLike],
    max_nodes: Optional[int] = None,
) -> CadConsistencyResult:
    """The same test with the constraints given as FPDs (the paper's statement of Theorem 11)."""
    return cad_consistency(database, validate_only_fpds(dependencies), max_nodes=max_nodes)


def verify_cad_witness(
    database: Database, fds: Sequence[FunctionalDependency], witness: Relation
) -> bool:
    """Independent check of a claimed witness: weak instance, FDs, and ``w[A] = d[A]``.

    Used by tests to validate the solver's output without trusting the search.
    """
    from repro.relational.weak_instance import is_weak_instance

    if not is_weak_instance(witness, database):
        return False
    if not all(fd.is_satisfied_by(witness) for fd in fds):
        return False
    for attribute in database.universe:
        if witness.column(attribute) != database.symbols_under(attribute):
            return False
    return True
