"""Normalization of a PD set for the Theorem 12 consistency test (§6.2).

The polynomial consistency test first massages the PD set ``E`` into an
equivalent (for weak-instance existence) set over a possibly larger attribute
universe:

1. **Binarization** (``E → E'``): repeatedly replace ``X = Y·Z`` / ``X = Y+Z``
   with ``X = C``, ``Y = A``, ``Z = B`` and ``C = A·B`` / ``C = A+B`` where
   ``A, B, C`` are fresh attribute names, until every PD relates single
   attributes.
2. **Re-expression**: ``C = A·B`` becomes the FPDs ``C ≤ A·B`` and
   ``A·B ≤ C``; ``C = A+B`` becomes ``A ≤ C``, ``B ≤ C`` and the *sum PD*
   ``C ≤ A+B`` (the only non-functional survivor).
3. **Closure** (``E⁺``): add every consequence of the form ``A ≤ B`` between
   attributes of the extended universe (computed with ALG), and drop any sum
   PD ``C ≤ A+B`` for which ``A ≤ B`` or ``B ≤ A`` is already a consequence
   (it is then subsumed by ``C ≤ B`` resp. ``C ≤ A``).

The result is an :class:`NormalizedDependencies` value carrying the FPD part
``F`` (as FDs, ready for the chase) and the surviving sum PDs.  Lemma 12.1
then says a weak instance satisfying ``F`` can be repaired into one
satisfying everything, so the chase on ``F`` alone decides consistency.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.dependencies.pd import PartitionDependency, PartitionDependencyLike, as_partition_dependency
from repro.errors import ConsistencyError
from repro.expressions.ast import Attr, PartitionExpression, Product, Sum
from repro.implication.alg import ImplicationEngine
from repro.relational.attributes import Attribute, AttributeSet
from repro.relational.functional_dependencies import FunctionalDependency


@dataclass(frozen=True)
class SumConstraint:
    """A surviving non-functional constraint ``C ≤ A + B``."""

    c: Attribute
    a: Attribute
    b: Attribute

    def as_pd(self) -> PartitionDependency:
        """Render as the PD ``C = C·(A+B)``."""
        c = Attr(self.c)
        return PartitionDependency(c, Product(c, Sum(Attr(self.a), Attr(self.b))))

    def __str__(self) -> str:
        return f"{self.c} <= {self.a} + {self.b}"


@dataclass
class NormalizedDependencies:
    """The output of the Theorem 12 normalization pipeline.

    ``fds`` is the FPD part ``F`` of ``E⁺`` rendered as FDs over the extended
    universe; ``sum_constraints`` are the surviving ``C ≤ A+B`` constraints;
    ``fresh_attributes`` are the attribute names invented by binarization;
    ``attribute_closure_pairs`` are all the ``A ≤ B`` consequences added by
    the closure step (kept for inspection and for the EXPERIMENTS write-up).
    """

    original: list[PartitionDependency]
    fds: list[FunctionalDependency] = field(default_factory=list)
    sum_constraints: list[SumConstraint] = field(default_factory=list)
    fresh_attributes: list[Attribute] = field(default_factory=list)
    attribute_closure_pairs: list[tuple[Attribute, Attribute]] = field(default_factory=list)

    @classmethod
    def from_artifacts(
        cls,
        original: Sequence[PartitionDependencyLike],
        fds: Sequence[FunctionalDependency],
        sum_constraints: Sequence[SumConstraint],
        fresh_attributes: Sequence[Attribute],
        attribute_closure_pairs: Sequence[tuple[Attribute, Attribute]],
    ) -> "NormalizedDependencies":
        """Rebuild a pipeline output from stored artifacts (the snapshot restore path).

        No normalization runs: the caller asserts the artifacts came from
        :func:`normalize_dependencies` over ``original``.  Shapes are still
        checked — a restored artifact that is not an FD/constraint at all
        raises :class:`ValueError` before it can poison a chase.
        """
        for fd in fds:
            if not isinstance(fd, FunctionalDependency):
                raise ValueError(f"normalized FD artifact {fd!r} is not a FunctionalDependency")
        for constraint in sum_constraints:
            if not isinstance(constraint, SumConstraint):
                raise ValueError(f"sum-constraint artifact {constraint!r} is not a SumConstraint")
        return cls(
            original=[as_partition_dependency(pd) for pd in original],
            fds=list(fds),
            sum_constraints=list(sum_constraints),
            fresh_attributes=list(fresh_attributes),
            attribute_closure_pairs=[(a, b) for a, b in attribute_closure_pairs],
        )

    @property
    def universe(self) -> AttributeSet:
        """All attributes mentioned after normalization (original + fresh)."""
        attrs: set[Attribute] = set(self.fresh_attributes)
        for pd in self.original:
            attrs |= set(pd.attributes)
        for fd in self.fds:
            attrs |= set(fd.attributes)
        for constraint in self.sum_constraints:
            attrs |= {constraint.a, constraint.b, constraint.c}
        return AttributeSet(attrs)


class _FreshAttributeFactory:
    """Generates fresh attribute names not colliding with a reserved set."""

    def __init__(self, reserved: Iterable[Attribute], prefix: str = "Z") -> None:
        self._reserved = set(reserved)
        self._prefix = prefix
        self._counter = itertools.count(1)

    def new(self) -> Attribute:
        while True:
            candidate = f"{self._prefix}{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate


def _binarize_expression(
    expression: PartitionExpression,
    factory: _FreshAttributeFactory,
    equations: list[tuple[str, str, str, str]],
    aliases: list[tuple[Attribute, Attribute]],
) -> Attribute:
    """Reduce an expression to a single attribute, recording binary equations.

    ``equations`` collects tuples ``(op, C, A, B)`` meaning ``C = A op B``;
    ``aliases`` collects attribute equalities introduced when a PD's side is
    already a single attribute.
    """
    if isinstance(expression, Attr):
        return expression.name
    left = _binarize_expression(expression.left, factory, equations, aliases)  # type: ignore[attr-defined]
    right = _binarize_expression(expression.right, factory, equations, aliases)  # type: ignore[attr-defined]
    fresh = factory.new()
    op = "*" if isinstance(expression, Product) else "+"
    equations.append((op, fresh, left, right))
    return fresh


def binarize(
    dependencies: Sequence[PartitionDependencyLike],
) -> tuple[list[tuple[str, str, str, str]], list[tuple[Attribute, Attribute]], list[Attribute]]:
    """Step 1: replace ``E`` by binary equations over an extended attribute universe.

    Returns ``(equations, aliases, fresh_attributes)`` where ``equations`` are
    ``(op, C, A, B)`` tuples (``C = A op B``) and ``aliases`` are pairs of
    attributes constrained to be equal (arising from PDs whose two sides both
    collapse to single attributes).
    """
    pds = [as_partition_dependency(pd) for pd in dependencies]
    reserved: set[Attribute] = set()
    for pd in pds:
        reserved |= set(pd.attributes)
    factory = _FreshAttributeFactory(reserved)
    equations: list[tuple[str, str, str, str]] = []
    aliases: list[tuple[Attribute, Attribute]] = []
    for pd in pds:
        left = _binarize_expression(pd.left, factory, equations, aliases)
        right = _binarize_expression(pd.right, factory, equations, aliases)
        if left != right:
            aliases.append((left, right))
    fresh = sorted(factory._reserved - reserved)
    return equations, aliases, fresh


def normalize_dependencies(
    dependencies: Sequence[PartitionDependencyLike],
) -> NormalizedDependencies:
    """Run the full §6.2 normalization pipeline on a PD set."""
    pds = [as_partition_dependency(pd) for pd in dependencies]
    equations, aliases, fresh = binarize(pds)

    # Step 2: re-express everything as FPDs (i.e. FDs) plus sum constraints.
    fds: list[FunctionalDependency] = []
    sum_constraints: list[SumConstraint] = []
    binary_pds: list[PartitionDependency] = []

    for left, right in aliases:
        fds.append(FunctionalDependency([left], [right]))
        fds.append(FunctionalDependency([right], [left]))
        binary_pds.append(PartitionDependency(Attr(left), Attr(right)))
    for op, c, a, b in equations:
        if op == "*":
            # C = A·B  ⇔  C ≤ A·B  and  A·B ≤ C.
            fds.append(FunctionalDependency([c], [a, b]))
            fds.append(FunctionalDependency([a, b], [c]))
            binary_pds.append(PartitionDependency(Attr(c), Product(Attr(a), Attr(b))))
        else:
            # C = A+B  ⇔  A ≤ C, B ≤ C and C ≤ A+B.
            fds.append(FunctionalDependency([a], [c]))
            fds.append(FunctionalDependency([b], [c]))
            sum_constraints.append(SumConstraint(c, a, b))
            binary_pds.append(PartitionDependency(Attr(c), Sum(Attr(a), Attr(b))))

    # Step 3: close under A ≤ B consequences (computed against the *original*
    # PDs plus the binary equations, which are equivalent over the extended
    # universe) and prune subsumed sum constraints.  The engine is the
    # incremental ALG service: one closure over E ∪ E' answers all |U'|²
    # attribute-order queries.
    universe: set[Attribute] = set(fresh)
    for pd in pds:
        universe |= set(pd.attributes)
    engine = ImplicationEngine(list(pds) + binary_pds)
    closure_pairs = engine.attribute_order_consequences(universe)
    for a, b in closure_pairs:
        fds.append(FunctionalDependency([a], [b]))

    order = set(closure_pairs)
    surviving: list[SumConstraint] = []
    for constraint in sum_constraints:
        if (constraint.a, constraint.b) in order:
            # A ≤ B, so C ≤ A+B is subsumed by C ≤ B (already an FD via closure? add it).
            fds.append(FunctionalDependency([constraint.c], [constraint.b]))
            continue
        if (constraint.b, constraint.a) in order:
            fds.append(FunctionalDependency([constraint.c], [constraint.a]))
            continue
        surviving.append(constraint)

    # Deduplicate FDs while preserving order.
    unique_fds = list(dict.fromkeys(fds))
    # Drop trivial FDs (X -> X).
    unique_fds = [fd for fd in unique_fds if not fd.is_trivial()]

    return NormalizedDependencies(
        original=pds,
        fds=unique_fds,
        sum_constraints=surviving,
        fresh_attributes=list(fresh),
        attribute_closure_pairs=sorted(closure_pairs),
    )


def functional_part(dependencies: Sequence[PartitionDependencyLike]) -> list[FunctionalDependency]:
    """Convenience: just the FD set ``F`` produced by the normalization."""
    return normalize_dependencies(dependencies).fds


def validate_only_fpds(dependencies: Sequence[PartitionDependencyLike]) -> list[FunctionalDependency]:
    """Translate a PD set that is claimed to consist of FPDs only; raise otherwise.

    Used by the Theorem 6 / Theorem 11 code paths, which are specified for
    FPD sets.
    """
    from repro.dependencies.fpd import FunctionalPartitionDependency

    fds: list[FunctionalDependency] = []
    for raw in dependencies:
        pd = as_partition_dependency(raw)
        fpd = FunctionalPartitionDependency.try_from_pd(pd)
        if fpd is None:
            raise ConsistencyError(f"{pd} is not a functional partition dependency")
        if not fpd.is_trivial():
            fds.append(fpd.to_fd())
    return fds
