"""Consistency tests: weak-instance (Theorem 6/7), polynomial PD test (Theorem 12), CAD (Theorem 11)."""

from repro.consistency.cad import (
    CadConsistencyResult,
    cad_consistency,
    cad_consistency_for_fpds,
    verify_cad_witness,
)
from repro.consistency.normalization import (
    NormalizedDependencies,
    SumConstraint,
    binarize,
    functional_part,
    normalize_dependencies,
    validate_only_fpds,
)
from repro.consistency.pd_consistency import (
    PdConsistencyResult,
    consistency_with_explicit_weak_instance,
    is_pd_consistent,
    pd_chase_engine,
    pd_consistency,
    pd_consistency_many,
    repair_sum_constraints_once,
    sum_constraint_violations,
)
from repro.consistency.reduction import (
    ReductionInstance,
    decode_assignment,
    ensure_missing_variable_clause,
    reduce_nae3sat_to_cad_consistency,
    solve_nae3sat_via_reduction,
)
from repro.consistency.weak_instance_fd import (
    FpdConsistencyResult,
    fd_consistency,
    fpd_consistency,
    is_fpd_consistent,
)

__all__ = [
    "NormalizedDependencies",
    "SumConstraint",
    "binarize",
    "normalize_dependencies",
    "functional_part",
    "validate_only_fpds",
    "PdConsistencyResult",
    "pd_consistency",
    "pd_consistency_many",
    "pd_chase_engine",
    "is_pd_consistent",
    "sum_constraint_violations",
    "repair_sum_constraints_once",
    "consistency_with_explicit_weak_instance",
    "FpdConsistencyResult",
    "fpd_consistency",
    "fd_consistency",
    "is_fpd_consistent",
    "CadConsistencyResult",
    "cad_consistency",
    "cad_consistency_for_fpds",
    "verify_cad_witness",
    "ReductionInstance",
    "reduce_nae3sat_to_cad_consistency",
    "ensure_missing_variable_clause",
    "decode_assignment",
    "solve_nae3sat_via_reduction",
]
