"""The NOT-ALL-EQUAL-3SAT reduction of Theorem 11 (§6.1, Figure 3).

Given a 3CNF formula φ over variables ``x1 ... xn`` with clauses
``c1 ... cm``, the reduction builds a database ``d`` and a set ``E`` of FPDs
such that φ is NAE-satisfiable iff ``(d, E)`` is consistent under CAD + EAP
(equivalently, iff the relation over the full universe can be completed with
existing symbols only while satisfying ``E_F``).

Construction (following Figure 3):

* attributes: ``A``, ``A1 ... An`` and ``B1 ... Bn``;
* relation ``R0[A A1 ... An]`` with the two tuples
  ``a u1 ... un`` and ``a v1 ... vn``;
* for each clause ``cj`` over variables ``{i1, i2, i3}``, a relation
  ``Rj`` over ``A``, the ``Ai`` for variables *not* in the clause, and all
  the ``Bi``, holding a single tuple with
  ``A = b_j`` (a symbol unique to the clause),
  ``Ai = y^j_i`` (fresh) for the absent variables,
  ``Bi = pos_i`` if ``xi`` occurs positively in ``cj``,
  ``Bi = neg_i`` if it occurs negatively, and
  ``Bi = z^j_i`` (fresh) for variables not in the clause;
* FPDs ``Bi ≤ Ai`` (i.e. FDs ``Bi → Ai``) for every variable, and for each
  clause the FPD ``B_{i1} B_{i2} B_{i3} ≤ A`` (FD ``B_{i1}B_{i2}B_{i3} → A``).

Before the reduction proper the formula is normalized (NAE-equisatisfiably):
it is brought into *proper* 3CNF — three distinct variables per clause, the
shape NOT-ALL-EQUAL-3SAT assumes — and every variable is made to occur with
both polarities (:func:`repro.sat.nae3sat.ensure_both_polarities`).  The
latter plays the role of the paper's preprocessing clause
``x_{n+1} ∨ ¬x_{n+1}``: it guarantees the key property of the proof,
``{t1[Bi], t2[Bi]} = {pos_i, neg_i}``, by making both truth-value symbols of
every ``Bi`` column occur in the database.  (The paper's own clause, having
one variable with both polarities, does not translate into a well-formed
clause gadget; the polarity normalization achieves the same effect.)

The decoding direction (witness → assignment) follows the proof verbatim:
``xi`` is true iff the completed first ``R0`` tuple has ``t1[Bi] = pos_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consistency.cad import CadConsistencyResult, cad_consistency
from repro.dependencies.fpd import FunctionalPartitionDependency
from repro.errors import ConsistencyError
from repro.relational.attributes import Attribute, Symbol
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.tuples import Row
from repro.sat.formulas import Clause, CnfFormula, Literal
from repro.sat.nae3sat import ensure_both_polarities, to_proper_nae3cnf


@dataclass(frozen=True)
class ReductionInstance:
    """The output of the Theorem 11 reduction.

    ``database`` and ``fds`` (= ``E_F``) form the consistency instance;
    ``fpds`` is the same constraint set as FPDs (the paper's ``E``);
    ``formula`` is the (preprocessed) NAE-3SAT formula the instance encodes;
    ``variable_order`` fixes the meaning of the ``Ai``/``Bi`` indexes.
    """

    formula: CnfFormula
    database: Database
    fds: tuple[FunctionalDependency, ...]
    fpds: tuple[FunctionalPartitionDependency, ...]
    variable_order: tuple[str, ...]

    def attribute_for_variable(self, variable: str) -> tuple[Attribute, Attribute]:
        """The ``(Ai, Bi)`` attribute pair encoding a propositional variable."""
        index = self.variable_order.index(variable) + 1
        return (f"A{index}", f"B{index}")

    def positive_symbol(self, variable: str) -> Symbol:
        """The ``Bi`` symbol whose choice encodes "variable is true"."""
        index = self.variable_order.index(variable) + 1
        return f"pos{index}"

    def negative_symbol(self, variable: str) -> Symbol:
        """The ``Bi`` symbol whose choice encodes "variable is false"."""
        index = self.variable_order.index(variable) + 1
        return f"neg{index}"


def ensure_missing_variable_clause(
    formula: CnfFormula, fresh_variables: tuple[str, str] = ("x_aux1", "x_aux2")
) -> CnfFormula:
    """Add a clause on fresh variables so every original variable misses some clause.

    The paper adds ``x_{n+1} ∨ ¬x_{n+1}``; under not-all-equal semantics that
    clause is always satisfied but (having a single variable occurring with
    both polarities) it does not translate into a well-defined clause gadget.
    We instead add ``x_aux1 ∨ x_aux2`` on *two* fresh variables: the clause
    merely constrains the two auxiliary variables to differ, which is always
    achievable independently of the original variables, so NAE-satisfiability
    is preserved — and afterwards every original variable is missing from at
    least one clause, which is all the proof of Theorem 11 needs.
    """
    for fresh_variable in fresh_variables:
        if fresh_variable in formula.variables:
            raise ConsistencyError(
                f"fresh variable name {fresh_variable!r} already occurs in the formula"
            )
    extra = Clause((Literal(fresh_variables[0], True), Literal(fresh_variables[1], True)))
    return CnfFormula(formula.clauses + (extra,))


def reduce_nae3sat_to_cad_consistency(
    formula: CnfFormula, preprocess: bool = True
) -> ReductionInstance:
    """Build the (d, E) instance of Theorem 11 from a 3CNF formula."""
    if not formula.is_3cnf():
        raise ConsistencyError("the reduction expects a 3CNF formula (at most three literals per clause)")
    if preprocess:
        # Bring the formula into the shape the §6.1 construction assumes:
        # proper 3CNF (three distinct variables per clause, up to NAE
        # equisatisfiability) in which every variable occurs with both
        # polarities (so both truth-value symbols of every B_i column occur
        # in the database — the property the proof's key step
        # "{t1[Bi], t2[Bi]} = {a_i, b_i}" relies on).
        working = ensure_both_polarities(to_proper_nae3cnf(formula))
    else:
        working = formula
    variables = working.variables
    n = len(variables)
    index_of = {variable: i + 1 for i, variable in enumerate(variables)}

    a_attrs = [f"A{i}" for i in range(1, n + 1)]
    b_attrs = [f"B{i}" for i in range(1, n + 1)]

    # R0[A A1 ... An] with tuples a u1...un and a v1...vn.
    r0_rows = [
        Row({"A": "a", **{f"A{i}": f"u{i}" for i in range(1, n + 1)}}),
        Row({"A": "a", **{f"A{i}": f"v{i}" for i in range(1, n + 1)}}),
    ]
    relations = [Relation.from_rows("R0", ["A", *a_attrs], r0_rows)]

    fds: list[FunctionalDependency] = [
        FunctionalDependency([f"B{i}"], [f"A{i}"]) for i in range(1, n + 1)
    ]

    seen_clause_keys: set[frozenset[tuple[int, bool]]] = set()
    clause_number = 0
    for clause in working.clauses:
        polarity: dict[int, bool] = {}
        tautological = False
        for literal in clause:
            index = index_of[literal.variable]
            if index in polarity and polarity[index] != literal.positive:
                # A variable occurring with both polarities makes the clause
                # NAE-satisfied by every assignment; it contributes no gadget.
                tautological = True
                break
            polarity[index] = literal.positive
        if tautological:
            continue
        clause_key = frozenset(polarity.items())
        if clause_key in seen_clause_keys:
            # Duplicate clauses would make the A-column FDs clash between the
            # duplicates' gadget tuples; one gadget per distinct clause suffices.
            continue
        seen_clause_keys.add(clause_key)
        clause_number += 1
        clause_variable_indexes = sorted(polarity)
        absent_indexes = [i for i in range(1, n + 1) if i not in clause_variable_indexes]

        attributes = ["A"] + [f"A{i}" for i in absent_indexes] + b_attrs
        cells: dict[str, str] = {"A": f"b{clause_number}"}
        for i in absent_indexes:
            cells[f"A{i}"] = f"y{clause_number}_{i}"
        for i in range(1, n + 1):
            if i in polarity:
                cells[f"B{i}"] = f"pos{i}" if polarity[i] else f"neg{i}"
            else:
                cells[f"B{i}"] = f"z{clause_number}_{i}"
        relations.append(Relation.from_rows(f"R{clause_number}", attributes, [Row(cells)]))

        fds.append(
            FunctionalDependency([f"B{i}" for i in clause_variable_indexes], ["A"])
        )

    fpds = tuple(FunctionalPartitionDependency(fd.lhs, fd.rhs) for fd in fds)
    return ReductionInstance(
        formula=working,
        database=Database(relations),
        fds=tuple(fds),
        fpds=fpds,
        variable_order=tuple(variables),
    )


def decode_assignment(instance: ReductionInstance, result: CadConsistencyResult) -> Optional[dict[str, bool]]:
    """Extract a NAE-satisfying assignment from a successful CAD-consistency witness.

    Follows the proof of Theorem 11: variable ``xi`` is true iff the
    completed first ``R0`` tuple carries ``pos_i`` in column ``Bi``.  Returns
    ``None`` when the result is negative.
    """
    if not result.consistent or result.witness is None:
        return None
    # Identify the completed row corresponding to R0's first tuple (A = 'a', A1 = 'u1').
    first_row = None
    for row in result.witness.sorted_rows():
        if row["A"] == "a" and row["A1"] == "u1":
            first_row = row
            break
    if first_row is None:
        raise ConsistencyError("the witness does not contain the completed first R0 tuple")
    assignment: dict[str, bool] = {}
    for variable in instance.variable_order:
        _, b_attr = instance.attribute_for_variable(variable)
        value = first_row[b_attr]
        if value == instance.positive_symbol(variable):
            assignment[variable] = True
        elif value == instance.negative_symbol(variable):
            assignment[variable] = False
        else:
            raise ConsistencyError(
                f"witness column {b_attr} holds unexpected symbol {value!r}; "
                "the key property of the reduction is violated"
            )
    return assignment


def solve_nae3sat_via_reduction(
    formula: CnfFormula, max_nodes: Optional[int] = None
) -> Optional[dict[str, bool]]:
    """Decide NAE-3SAT by reducing to CAD consistency and decoding the witness.

    This is the "round trip" used to validate the reduction against the
    direct solvers in :mod:`repro.sat.nae3sat`; the returned assignment (when
    not ``None``) NAE-satisfies the *original* formula.
    """
    instance = reduce_nae3sat_to_cad_consistency(formula)
    result = cad_consistency(instance.database, list(instance.fds), max_nodes=max_nodes)
    assignment = decode_assignment(instance, result)
    if assignment is None:
        return None
    # Restrict to the original variables (drop the preprocessing/padding
    # variables).  Variables of the original formula that survive only inside
    # tautological clauses may be absent from the instance; they are free, so
    # default them to True.
    return {
        variable: assignment.get(variable, True) for variable in formula.variables
    }
