"""The polynomial-time consistency test for a database and a set of PDs (Theorem 12, §6.2).

Given a database ``d`` over attributes ``U`` and an arbitrary finite set
``E`` of PDs, decide whether some partition interpretation satisfies both —
equivalently (Theorem 7) whether ``d`` has a weak instance satisfying ``E``.

The pipeline, following §6.2:

1. normalize ``E`` (binarize, re-express, close, prune) into an FD set ``F``
   over an extended universe plus surviving sum constraints ``C ≤ A+B``
   (:mod:`repro.consistency.normalization`);
2. by Lemma 12.1, ``d`` has a weak instance satisfying ``E⁺`` iff it has one
   satisfying ``F`` alone, so run Honeyman's chase on ``(d, F)``;
3. report the verdict; on success also construct a witness interpretation
   ``I(w)`` from the chased weak instance (per Theorem 7's proof).

The witness of step 3 satisfies ``F`` but not necessarily the pruned sum
constraints (Lemma 12.1 repairs those with an infinite sequence of tuple
insertions — the limit object cannot be materialized).  The result therefore
carries both the verdict and the finite witness, and
:func:`repair_sum_constraints_once` exposes one round of the Lemma 12.1
repair so callers (and tests) can watch the construction converge on the
violations present in the finite witness.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.consistency.normalization import NormalizedDependencies, SumConstraint, normalize_dependencies
from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.attributes import AttributeSet
from repro.relational.chase_engine import ChaseEngine
from repro.relational.database import Database
from repro.relational.functional_dependencies import closure
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row
from repro.relational.weak_instance import WeakInstanceResult, weak_instance_consistency


@dataclass(frozen=True)
class PdConsistencyResult:
    """Outcome of the Theorem 12 test.

    ``consistent`` — the verdict (polynomial-time, exact);
    ``normalized`` — the normalization artifacts (FD set ``F``, sum constraints, closure pairs);
    ``weak_instance`` — a weak instance for ``d`` satisfying ``F`` (when consistent);
    ``interpretation`` — ``I(w)`` for that weak instance (satisfies ``d`` and ``F``).
    """

    consistent: bool
    normalized: NormalizedDependencies
    weak_instance: Optional[Relation]
    interpretation: Optional[PartitionInterpretation]
    chase: WeakInstanceResult


def pd_consistency(
    database: Database,
    dependencies: Sequence[PartitionDependencyLike],
    engine: Optional[ChaseEngine] = None,
    normalized: Optional[NormalizedDependencies] = None,
) -> PdConsistencyResult:
    """Theorem 12: polynomial-time consistency of ``(d, E)`` for an arbitrary PD set ``E``.

    The chase of step 2 runs on the indexed
    :class:`~repro.relational.chase_engine.ChaseEngine`.  Callers holding the
    step-1 artifacts already (from :func:`normalize_dependencies`) can pass
    ``normalized`` to skip re-normalizing — the ALG implication work of the
    closure step is then paid once for any number of calls; a prebuilt
    ``engine`` (from :func:`pd_chase_engine`) additionally skips the chase
    engine's own FD preprocessing.  :func:`pd_consistency_many` wires both up
    for a batch of databases.
    """
    if normalized is None:
        normalized = normalize_dependencies([as_partition_dependency(pd) for pd in dependencies])
    if engine is None:
        engine = ChaseEngine(normalized.fds)
    chase_result = weak_instance_consistency(database, normalized.fds, engine=engine)
    return _result_from_chase(normalized, chase_result)


def _result_from_chase(
    normalized: NormalizedDependencies, chase_result: WeakInstanceResult
) -> PdConsistencyResult:
    """Assemble the Theorem 12 result (witness + interpretation) from a chase outcome."""
    if not chase_result.consistent:
        return PdConsistencyResult(False, normalized, None, None, chase_result)
    witness = chase_result.witness
    assert witness is not None
    interpretation = canonical_interpretation(witness) if len(witness) else None
    return PdConsistencyResult(True, normalized, witness, interpretation, chase_result)


def pd_consistency_many(
    databases: Iterable[Database],
    dependencies: Sequence[PartitionDependencyLike],
    normalized: Optional[NormalizedDependencies] = None,
) -> list[PdConsistencyResult]:
    """Theorem 12 over a batch of databases sharing one PD set.

    Normalization (step 1 — binarize, re-express, run one incremental ALG
    engine for the closure, prune) and the chase-engine preprocessing both
    depend only on ``E``, so the batch pays them once instead of once per
    database; only the chase itself (step 2) runs per database.  Results
    match per-database :func:`pd_consistency` exactly.
    """
    if normalized is None:
        normalized = normalize_dependencies([as_partition_dependency(pd) for pd in dependencies])
    engine = ChaseEngine(normalized.fds)
    return [
        pd_consistency(database, dependencies, engine=engine, normalized=normalized)
        for database in databases
    ]


def is_pd_consistent(database: Database, dependencies: Sequence[PartitionDependencyLike]) -> bool:
    """Boolean convenience wrapper around :func:`pd_consistency`."""
    return pd_consistency(database, dependencies).consistent


def pd_chase_engine(
    dependencies: Sequence[PartitionDependencyLike],
    normalized: Optional[NormalizedDependencies] = None,
) -> ChaseEngine:
    """A reusable chase engine over the FD translation of a PD set.

    Useful for driving the chase directly (e.g. via
    :func:`repro.relational.weak_instance.weak_instance_consistency` with the
    normalized FD set) against many databases.  Pass the ``normalized``
    artifacts along to :func:`pd_consistency` to skip step 1 there too, or
    use :func:`pd_consistency_many`, which amortizes both for a batch.
    """
    if normalized is None:
        normalized = normalize_dependencies([as_partition_dependency(pd) for pd in dependencies])
    return ChaseEngine(normalized.fds)


# -- the Lemma 12.1 repair step -------------------------------------------------------------


def sum_constraint_violations(
    relation: Relation, constraint: SumConstraint
) -> list[tuple[Row, Row]]:
    """Pairs of tuples violating ``C ≤ A+B`` in a relation over the extended universe.

    A violation is a pair agreeing on ``C`` but *not* connected by a chain of
    tuples consecutively sharing their ``A`` or ``B`` value.
    """
    rows = relation.sorted_rows()
    if not rows:
        return []
    # Union-find over row indexes for the chain (A or B shared) relation.
    parent = list(range(len(rows)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    for attribute in (constraint.a, constraint.b):
        by_value: dict[str, int] = {}
        for i, row in enumerate(rows):
            value = row[attribute]
            if value in by_value:
                union(i, by_value[value])
            else:
                by_value[value] = i

    violations = []
    for i, j in itertools.combinations(range(len(rows)), 2):
        if rows[i][constraint.c] == rows[j][constraint.c] and find(i) != find(j):
            violations.append((rows[i], rows[j]))
    return violations


def repair_sum_constraints_once(
    witness: Relation,
    normalized: NormalizedDependencies,
    fresh_prefix: str = "w",
) -> tuple[Relation, int]:
    """One round of the Lemma 12.1 repair: fix every current ``C ≤ A+B`` violation.

    For each violating pair ``t1, t2`` a new tuple ``t`` is added with
    ``t[A] = t1[A]``, ``t[B] = t2[B]``, ``t[A⁺] = t1[A⁺]``, ``t[B⁺] = t2[B⁺]``
    (attribute closures under ``F``) and fresh symbols elsewhere — exactly
    the construction in the lemma's proof.  Returns the repaired relation and
    the number of tuples added.  Repeating the call converges for many finite
    witnesses but need not terminate in general (the lemma builds the weak
    instance as a limit); callers should bound the number of rounds.
    """
    fds = normalized.fds
    rows = set(witness.rows)
    counter = itertools.count(1)
    added = 0
    universe = witness.attributes
    for constraint in normalized.sum_constraints:
        if constraint.a not in universe or constraint.b not in universe or constraint.c not in universe:
            continue
        for t1, t2 in sum_constraint_violations(Relation(witness.scheme, rows), constraint):
            a_plus = closure([constraint.a], fds) & universe
            b_plus = closure([constraint.b], fds) & universe
            cells: dict[str, str] = {}
            for attribute in universe:
                if attribute in a_plus:
                    cells[attribute] = t1[attribute]
                elif attribute in b_plus:
                    cells[attribute] = t2[attribute]
                else:
                    cells[attribute] = f"{fresh_prefix}{next(counter)}_{attribute}"
            rows.add(Row(cells))
            added += 1
    scheme = RelationScheme(witness.name, universe)
    return Relation(scheme, rows), added


def extend_database_to_universe(database: Database, universe: AttributeSet) -> Database:
    """Unchanged database; provided for symmetry with callers that track the extended universe.

    The chase machinery pads tuples with fresh nulls for the attributes the
    relation schemes do not mention, so the database itself never needs to be
    rewritten; this helper simply validates that the requested universe
    contains the database's own attributes.
    """
    if not database.universe <= universe:
        raise ValueError("the extended universe must contain every database attribute")
    return database


def consistency_with_explicit_weak_instance(
    database: Database,
    dependencies: Sequence[PartitionDependencyLike],
    candidate: Relation,
) -> bool:
    """Check directly that ``candidate`` is a weak instance for ``d`` satisfying ``E``.

    This is the right-hand side of Theorem 7 stated verbatim — useful for
    validating the Theorem 12 pipeline on small examples where a weak
    instance can be guessed or constructed by hand.
    """
    from repro.dependencies.satisfaction import relation_satisfies_all_pds
    from repro.relational.weak_instance import is_weak_instance

    pds = [as_partition_dependency(pd) for pd in dependencies]
    return is_weak_instance(candidate, database) and relation_satisfies_all_pds(candidate, pds)
