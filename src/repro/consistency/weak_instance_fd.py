"""Consistency of a database with FPDs / FDs under the weak-instance assumption (Theorem 6a, §4.3).

Theorem 6a: a database ``d`` and a set ``E`` of FPDs admit a satisfying
partition interpretation iff ``d`` has a weak instance satisfying ``E_F``
(the FDs corresponding to ``E``).  The latter is Honeyman's weak-satisfaction
problem, decided by the chase (see :mod:`repro.relational.weak_instance`).

This module packages the FPD-facing entry points and, when the test
succeeds, *constructs* the witnessing partition interpretation ``I(w)``
exactly as the proof of Theorem 6a does.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.consistency.normalization import validate_only_fpds
from repro.dependencies.pd import PartitionDependencyLike
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.chase_engine import ChaseEngine
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.weak_instance import WeakInstanceResult, weak_instance_consistency


@dataclass(frozen=True)
class FpdConsistencyResult:
    """Outcome of the Theorem 6a consistency test.

    ``consistent`` — whether some partition interpretation satisfies ``(d, E)``;
    ``weak_instance`` — a weak instance for ``d`` satisfying ``E_F`` (when consistent);
    ``interpretation`` — the canonical interpretation ``I(w)`` of that weak
    instance, which satisfies ``d`` and ``E`` and EAP (the proof's witness);
    ``fds`` — the FD translation ``E_F`` actually chased.
    """

    consistent: bool
    fds: list[FunctionalDependency]
    weak_instance: Optional[Relation]
    interpretation: Optional[PartitionInterpretation]
    chase: WeakInstanceResult


def fpd_consistency(
    database: Database, dependencies: Sequence[PartitionDependencyLike]
) -> FpdConsistencyResult:
    """Theorem 6a: is there a partition interpretation satisfying ``(d, E)`` for FPDs ``E``?

    ``dependencies`` must consist of FPDs (PDs of the shape ``X = X·Y``,
    ``Y = Y+X`` or ``X ≤ Y``); use
    :func:`repro.consistency.pd_consistency.pd_consistency` for arbitrary PDs.
    """
    fds = validate_only_fpds(dependencies)
    return fd_consistency(database, fds)


def fd_consistency(
    database: Database,
    fds: Sequence[FunctionalDependency],
    engine: Optional[ChaseEngine] = None,
) -> FpdConsistencyResult:
    """The same test with the dependencies already given as FDs (``E_F``).

    Pass a prebuilt :class:`~repro.relational.chase_engine.ChaseEngine` to
    amortize FD preprocessing across many databases tested against one set.
    """
    chase_result = weak_instance_consistency(database, list(fds), engine=engine)
    if not chase_result.consistent:
        return FpdConsistencyResult(False, list(fds), None, None, chase_result)
    witness = chase_result.witness
    assert witness is not None
    interpretation = canonical_interpretation(witness) if len(witness) else None
    return FpdConsistencyResult(True, list(fds), witness, interpretation, chase_result)


def is_fpd_consistent(database: Database, dependencies: Sequence[PartitionDependencyLike]) -> bool:
    """Boolean convenience wrapper around :func:`fpd_consistency`."""
    return fpd_consistency(database, dependencies).consistent
