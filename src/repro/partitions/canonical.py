"""Canonical interpretations and canonical relations (Definitions 5–6, §4.1).

The bridge between relations and partition interpretations:

* ``I(r)`` — the *canonical interpretation* of a relation ``r``: the
  population of every attribute is the set of tuple identifiers of ``r``,
  and ``f_A(x)`` is the set of (identifiers of) tuples with ``t[A] = x``.
  ``I(r)`` always satisfies EAP, and ``I(r) ⊨ r``.
* ``R(I)`` — the *canonical relation* of an interpretation ``I``: one tuple
  per element of the union of the populations, whose ``A``-value is the name
  of the block containing that element (or a fresh symbol when the element is
  outside ``p_A``).

The round-trip identities the paper uses — ``R(I(r)) = r`` and, under EAP,
``L(I(R(I))) = L(I)`` — are verified by the test suite
(``tests/test_canonical.py``) and exercised by Theorems 3, 6, 7.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PartitionError
from repro.partitions.interpretation import PartitionInterpretation
from repro.partitions.partition import Element
from repro.relational.attributes import AttributeSet, Symbol
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


def canonical_interpretation(
    relation: Relation,
    identifier: Optional[Callable[[Row], Element]] = None,
) -> PartitionInterpretation:
    """``I(r)``: the canonical partition interpretation of a relation (Definition 5).

    ``identifier`` maps each tuple to a unique population element; by default
    tuples are numbered 1..n in the deterministic sorted order of the
    relation.  Raises :class:`PartitionError` for the empty relation (the
    populations of Definition 1 must be non-empty).
    """
    rows = relation.sorted_rows()
    if not rows:
        raise PartitionError("the canonical interpretation of an empty relation is undefined")
    if identifier is None:
        ids = {row: index + 1 for index, row in enumerate(rows)}
        identify: Callable[[Row], Element] = lambda row: ids[row]
    else:
        identify = identifier
        seen = [identify(row) for row in rows]
        if len(set(seen)) != len(seen):
            raise PartitionError("tuple identifiers must be unique")

    spec: dict[str, dict[Symbol, set[Element]]] = {}
    for attribute in relation.attributes:
        blocks: dict[Symbol, set[Element]] = {}
        for row in rows:
            blocks.setdefault(row[attribute], set()).add(identify(row))
        spec[attribute] = blocks
    return PartitionInterpretation.from_named_blocks(spec)


def canonical_relation(
    interpretation: PartitionInterpretation,
    name: str = "R_of_I",
    padding_symbol: Optional[Callable[[Element, str], Symbol]] = None,
) -> Relation:
    """``R(I)``: the canonical relation of an interpretation (Definition 6).

    For each element ``i`` of the union ``p`` of all populations there is a
    tuple ``t_i`` with ``t_i[A] = x`` when ``i ∈ f_A(x)`` and ``t_i[A]`` a
    symbol unique to ``(i, A)`` when ``i ∉ p_A``.  The default padding symbol
    is ``"<i>@<A>"``; pass ``padding_symbol`` to control it (it must be
    injective on pairs and avoid the named symbols).
    """
    population = interpretation.total_population()
    if not population:
        raise PartitionError("the interpretation has an empty total population")
    if padding_symbol is None:

        def padding_symbol(element, attribute):
            return f"{element}@{attribute}"

    attributes = interpretation.attributes
    scheme = RelationScheme(name, attributes)
    # One flat element -> symbol map per attribute (built once, cached on the
    # AttributeInterpretation) instead of a block_of + symbol_of frozenset
    # lookup per (element, attribute) pair.
    attribute_interps = [(attribute, interpretation.attribute(attribute)) for attribute in attributes]
    rows = []
    for element in sorted(population, key=repr):
        cells: dict[str, Symbol] = {}
        for attribute, attr_interp in attribute_interps:
            if element in attr_interp.population:
                cells[attribute] = attr_interp.symbol_of_element(element)
            else:
                cells[attribute] = padding_symbol(element, attribute)
        rows.append(Row(cells))
    return Relation(scheme, rows)


def canonical_roundtrip(relation: Relation, name: Optional[str] = None) -> Relation:
    """``R(I(r))`` — by Theorem 3's remark this always equals ``r`` (up to the relation name)."""
    back = canonical_relation(canonical_interpretation(relation), name=name or relation.name)
    return back


def eap_extension(interpretation: PartitionInterpretation) -> PartitionInterpretation:
    """Extend every attribute's population to the total population with singleton blocks.

    This is the construction used inside the proof of Theorem 7: the
    interpretation ``J`` with ``π'_A = π_A ∪ {{x} | x ∈ p - p_A}``.  Every
    new singleton block needs a fresh name; we use ``"<element>@<attribute>"``
    (guaranteed not to collide with existing names because existing names are
    database symbols).  The correspondence ``π'_A ↔ π_A`` is a lattice
    homomorphism from ``L(I)`` onto ``L(J)``.

    The result satisfies EAP.
    """
    total = interpretation.total_population()
    spec: dict[str, dict[Symbol, set[Element]]] = {}
    for attribute in interpretation.attributes:
        attr_interp = interpretation.attribute(attribute)
        blocks: dict[Symbol, set[Element]] = {
            symbol: set(block) for symbol, block in attr_interp.naming.items()
        }
        for element in total - attr_interp.population:
            blocks[f"{element}@{attribute}"] = {element}
        spec[attribute] = blocks
    return PartitionInterpretation.from_named_blocks(spec)


def restrict_to_attributes(
    interpretation: PartitionInterpretation, attributes: AttributeSet
) -> PartitionInterpretation:
    """The interpretation restricted to a sub-universe of attributes."""
    missing = attributes - interpretation.attributes
    if missing:
        raise PartitionError(f"interpretation lacks attributes {sorted(missing)}")
    return PartitionInterpretation(
        {attribute: interpretation.attribute(attribute) for attribute in attributes}
    )
