"""The CAD and EAP assumptions on partition interpretations (Definition 4, §3.2).

Given an interpretation ``I`` satisfying a database ``d``:

* **CAD** (complete atomic data): for every attribute ``A`` and symbol ``x``,
  ``x ∈ d[A]  ⇔  f_A(x) ≠ ∅``.  This is the partition-semantics analogue of a
  domain-closure axiom — the only named blocks are the symbols actually
  occurring in the database.
* **EAP** (equal atomic populations): all attributes share one population.

The paper shows CAD makes consistency NP-complete (Theorem 11) while EAP is
harmless (remark after Theorem 6).
"""

from __future__ import annotations

from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.database import Database


def satisfies_eap(interpretation: PartitionInterpretation) -> bool:
    """True iff all attribute populations are equal (Definition 4.2).

    Checked with an early exit against the first attribute's population;
    interpretations built through ``from_named_blocks`` anchor equal
    populations on one shared universe object, making the common (EAP) case
    an identity-then-size comparison before any set equality.
    """
    first: frozenset | None = None
    for attribute in interpretation.attributes:
        population = interpretation.population(attribute)
        if first is None:
            first = population
        elif population is not first and population != first:
            return False
    return True


def satisfies_cad(interpretation: PartitionInterpretation, database: Database) -> bool:
    """True iff the named symbols of every attribute are exactly ``d[A]`` (Definition 4.1).

    The definition in the paper is the biconditional "``x ∈ d[A]`` iff
    ``f_A(x) ≠ ∅``"; attributes of the interpretation that the database never
    mentions must therefore have *no* named symbols drawn from the database
    and the condition degenerates to ``f_A(x) = ∅`` for the database symbols
    — which, since every block must be named by some symbol, can only hold
    when the attribute's named symbols are disjoint from ``d``'s symbols.
    For attributes appearing in the database the condition is the equality of
    the two symbol sets.
    """
    return all(
        interpretation.attribute(attribute).named_symbols() == database.symbols_under(attribute)
        for attribute in interpretation.attributes
    )


def cad_violations(
    interpretation: PartitionInterpretation, database: Database
) -> dict[str, tuple[frozenset, frozenset]]:
    """Diagnostic: attributes violating CAD, with (extra named, missing) symbol sets."""
    violations: dict[str, tuple[frozenset, frozenset]] = {}
    for attribute in interpretation.attributes:
        named = interpretation.attribute(attribute).named_symbols()
        in_database = database.symbols_under(attribute)
        if named != in_database:
            violations[attribute] = (named - in_database, in_database - named)
    return violations
