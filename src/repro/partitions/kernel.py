"""Dense integer-coded partition kernel (the fast path under §3.1 semantics).

The semantic objects of the paper — partitions with product (Definition of
``π * π'``: coarsest common refinement on ``p ∩ p'``) and sum (``π + π'``:
connected components of the block-overlap graph on ``p ∪ p'``) — are, in the
seed implementation, frozensets of frozensets with a per-element ``dict``.
Every product then allocates a ``(frozenset, frozenset)`` tuple key per
element and every sum rebuilds a hash-keyed union-find from scratch.

This module replaces that representation with a *label-array* encoding:

* a :class:`Universe` interns a population once into contiguous ids
  ``0 .. n-1`` (``elements`` tuple for id → element, ``index`` dict for
  element → id);
* a partition of (a subset of) the universe is a **canonical
  first-occurrence label array**: position ``i`` holds the block label of
  element ``i``, labels are assigned ``0, 1, 2, ...`` in order of first
  appearance.  Two partitions over the *same* universe are equal iff their
  label tuples are equal — an O(n) flat int compare with no hashing of sets.

On label arrays the §3.1 operations become single passes over machine ints:

* **product** groups positions by the pair ``(label, label')`` through one
  dict of int pairs (radix-style; no frozenset keys);
* **sum** is an array union-find with union-by-size and path compression,
  seeded with one anchor per label per operand;
* **refines** / **restrict** / ``together`` are single scans.

The block-of-frozensets view is materialized lazily by the
:class:`~repro.partitions.partition.Partition` facade; the block-based
implementations survive in :mod:`repro.partitions.oracle` as the cross-check
oracle for the randomized equivalence suite and the EXP-PART benchmarks.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

Label = int
Labels = tuple[int, ...]

_MASK = (1 << 64) - 1


class Universe:
    """An interned population: contiguous ids for a fixed tuple of elements.

    ``elements[i]`` is the element with id ``i``; ``index[element] == i``.
    Construction deduplicates while preserving first-occurrence order, so a
    universe built from any iterable is deterministic in that iterable's
    order.  Identity of the :class:`Universe` *object* is what unlocks the
    fast paths: partitions built over the same universe instance compare and
    combine without any per-element hashing.
    """

    __slots__ = ("elements", "index", "_population")

    def __init__(self, population: Iterable[Hashable] = ()) -> None:
        elements: list[Hashable] = []
        index: dict[Hashable, int] = {}
        for element in population:
            if element not in index:
                index[element] = len(elements)
                elements.append(element)
        self.elements: tuple[Hashable, ...] = tuple(elements)
        self.index = index
        self._population: frozenset | None = None

    @classmethod
    def _trusted(cls, elements: tuple[Hashable, ...], index: dict[Hashable, int]) -> "Universe":
        """Internal constructor skipping deduplication (inputs already consistent)."""
        self = object.__new__(cls)
        self.elements = elements
        self.index = index
        self._population = None
        return self

    def population(self) -> frozenset:
        """The elements as a frozenset — one shared object per universe.

        Partitions over a shared universe therefore return the *same*
        population object, so population comparisons between them start with
        an identity hit.
        """
        if self._population is None:
            self._population = frozenset(self.elements)
        return self._population

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, element: object) -> bool:
        return element in self.index

    def __repr__(self) -> str:
        return f"Universe({len(self.elements)} elements)"


def canonical_labels(raw: Iterable[Hashable]) -> tuple[Labels, int]:
    """Relabel a raw key sequence by first occurrence: ``(labels, block_count)``.

    ``raw`` may hold any hashable keys (ints from a kernel operation, symbols
    from a column, tuples of labels from an n-ary product); the result is the
    canonical dense form.
    """
    relabel: dict[Hashable, int] = {}
    setdefault = relabel.setdefault
    labels = tuple(setdefault(key, len(relabel)) for key in raw)
    return labels, len(relabel)


def product_labels(labels_a: Labels, labels_b: Labels) -> tuple[Labels, int]:
    """Product of two partitions over one universe: group positions by label pair."""
    pair_label: dict[tuple[int, int], int] = {}
    setdefault = pair_label.setdefault
    labels = tuple(
        setdefault((la, lb), len(pair_label)) for la, lb in zip(labels_a, labels_b)
    )
    return labels, len(pair_label)


def product_labels_many(label_arrays: Sequence[Labels]) -> tuple[Labels, int]:
    """N-ary product over one universe: one pass grouping by the k-tuple of labels."""
    if len(label_arrays) == 1:
        return label_arrays[0], (max(label_arrays[0]) + 1 if label_arrays[0] else 0)
    key_label: dict[tuple[int, ...], int] = {}
    setdefault = key_label.setdefault
    labels = tuple(setdefault(key, len(key_label)) for key in zip(*label_arrays))
    return labels, len(key_label)


class UnionFind:
    """Array union-find with union-by-size and path compression (ids ``0..n-1``)."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]


def _merge_labelling(uf: UnionFind, labels: Labels, ids: Sequence[int]) -> None:
    """Union every position of each block: one anchor per label, then anchor–member unions.

    ``ids[i]`` is the union-find id of the element carrying ``labels[i]``.
    """
    anchor: dict[int, int] = {}
    setdefault = anchor.setdefault
    union = uf.union
    for label, element_id in zip(labels, ids):
        first = setdefault(label, element_id)
        if first != element_id:
            union(first, element_id)


def sum_labels(labelled: Sequence[tuple[Labels, int]]) -> tuple[Labels, int]:
    """Sum of several partitions over one universe: a *label-graph* union-find.

    ``labelled`` holds ``(labels, block_count)`` per operand.  Instead of
    unioning element ids (n union-find operations per operand), the blocks
    themselves are the union-find nodes: position ``i`` connects the first
    operand's block ``labels_0[i]`` with every other operand's block at ``i``,
    and each distinct label *pair* is unioned only once (deduplicated through
    a flat int set).  The overlap-graph components of §3.1 then come out of a
    flattened root table, so the final labelling pass is one list indexing
    per element.
    """
    base_labels, base_count = labelled[0]
    total = sum(count for _, count in labelled)
    uf = UnionFind(total)
    union = uf.union
    offset = base_count
    for labels, count in labelled[1:]:
        seen: set[int] = set()
        add = seen.add
        for base_label, label in zip(base_labels, labels):
            key = base_label * count + label
            if key not in seen:
                add(key)
                union(base_label, offset + label)
        offset += count
    find = uf.find
    # Canonicalize on the label table instead of per element: base labels are
    # themselves first-occurrence canonical, so walking them in increasing
    # order visits components in exactly the order positions first meet them.
    relabel: dict[int, int] = {}
    setdefault = relabel.setdefault
    table = [setdefault(find(label), len(relabel)) for label in range(base_count)]
    return tuple(map(table.__getitem__, base_labels)), len(relabel)


def refines_labels(labels_fine: Labels, labels_coarse: Labels) -> bool:
    """Same-universe refinement: every fine block maps into one coarse label."""
    representative: dict[int, int] = {}
    setdefault = representative.setdefault
    for fine, coarse in zip(labels_fine, labels_coarse):
        if setdefault(fine, coarse) != coarse:
            return False
    return True


def _mix(value: int) -> int:
    """64-bit finalizer (splitmix64-style) for order-independent hashing."""
    value &= _MASK
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK
    value ^= value >> 33
    return value

def kernel_hash(elements: Sequence[Hashable], labels: Labels, block_count: int) -> int:
    """A hash of the partition *as a set of sets*, computed from the label array.

    Commutative at both levels (xor of mixed element hashes within a block,
    sum of mixed block hashes across blocks), so equal partitions hash equal
    regardless of the element order of their universes — the property the
    frozenset-of-frozensets hash provided, without materializing any set.
    """
    accumulators = [0] * block_count
    sizes = [0] * block_count
    for element, label in zip(elements, labels):
        accumulators[label] ^= _mix(hash(element))
        sizes[label] += 1
    total = 0
    for accumulator, size in zip(accumulators, sizes):
        total = (total + _mix(accumulator ^ (size * 0x9E3779B97F4A7C15))) & _MASK
    return _mix(total ^ (block_count * 0x2545F4914F6CDD1D)) & (_MASK >> 1)


def union_universe(first: Universe, second: Universe) -> Universe:
    """The universe over ``p ∪ p'``: ``first``'s elements, then ``second``'s new ones."""
    if first is second:
        return first
    elements = list(first.elements)
    index = dict(first.index)
    for element in second.elements:
        if element not in index:
            index[element] = len(elements)
            elements.append(element)
    return Universe._trusted(tuple(elements), index)
