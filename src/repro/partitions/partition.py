"""Set-theoretic partitions: the semantic objects of the paper (§3.1).

A partition of a population ``p`` is a family of non-empty, pairwise-disjoint
sets (*blocks*) whose union is ``p``.  The two natural operations are

* the **product** ``π * π'``: all non-empty intersections of a block of ``π``
  with a block of ``π'`` — a partition of ``p ∩ p'`` (the coarsest common
  refinement when the populations coincide);
* the **sum** ``π + π'``: the connected components of the "overlap" graph on
  the blocks of ``π ∪ π'`` — a partition of ``p ∪ p'`` (the finest common
  generalization when the populations coincide).

Both operations are associative, commutative and idempotent, and together
they satisfy the absorption laws, so partitions of subsets of a fixed
universe form a lattice (the paper's Theorem 1 builds on exactly this).

Populations can contain any hashable elements; the canonical interpretation
of a relation uses integer tuple identifiers, the worked examples use small
integers, and the property-based tests mix types freely.

Representation: :class:`Partition` is a thin facade over the integer-coded
kernel of :mod:`repro.partitions.kernel` — a :class:`~repro.partitions.kernel.Universe`
(elements interned to contiguous ids) plus a canonical first-occurrence label
array.  Product, sum, refinement, restriction and equality are single passes
over machine ints; the frozenset-of-frozensets view of the blocks is
materialized lazily, only when the block-based API is actually used.  The
original block-based operations survive in :mod:`repro.partitions.oracle` as
a cross-check oracle.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Callable, TypeVar

from repro.errors import PartitionError
from repro.partitions.kernel import (
    Labels,
    UnionFind,
    Universe,
    _merge_labelling,
    canonical_labels,
    kernel_hash,
    product_labels,
    product_labels_many,
    refines_labels,
    sum_labels,
    union_universe,
)

#: Elements of populations can be any hashable value.
Element = Hashable

T = TypeVar("T")


class Partition:
    """An immutable partition: a frozenset of non-empty, disjoint, covering blocks.

    The population is implicit (the union of the blocks) but exposed through
    :attr:`population`.  Two partitions are equal iff they have exactly the
    same blocks — which forces equal populations.  The *empty* partition (no
    blocks, empty population) is allowed: it arises naturally as the product
    of partitions with disjoint populations and is the bottom of the
    population-aware lattice.
    """

    __slots__ = (
        "_universe",
        "_labels",
        "_block_count",
        "_blocks",
        "_block_list",
        "_hash",
    )

    def __init__(self, blocks: Iterable[Iterable[Element]] = ()) -> None:
        elements: list[Element] = []
        index: dict[Element, int] = {}
        raw: list[int] = []
        block_sizes: list[int] = []
        for block in blocks:
            block_elements: list[Element] = []
            local_seen: set[Element] = set()
            for element in block:
                if element not in local_seen:
                    local_seen.add(element)
                    block_elements.append(element)
            if not block_elements:
                raise PartitionError("partition blocks must be non-empty")
            positions = [index.get(element) for element in block_elements]
            if all(position is None for position in positions):
                block_id = len(block_sizes)
                for element in block_elements:
                    index[element] = len(elements)
                    elements.append(element)
                    raw.append(block_id)
                block_sizes.append(len(block_elements))
            else:
                # Every element already placed, all in one block of the same
                # size: the input repeats a block (frozensets would collapse
                # it); anything else is a genuine overlap.
                seen_labels = {raw[position] for position in positions if position is not None}
                if (
                    any(position is None for position in positions)
                    or len(seen_labels) != 1
                    or block_sizes[next(iter(seen_labels))] != len(block_elements)
                ):
                    offender = next(
                        element
                        for element, position in zip(block_elements, positions)
                        if position is not None
                    )
                    raise PartitionError(
                        f"element {offender!r} appears in two blocks; blocks must be disjoint"
                    )
        self._universe = Universe._trusted(tuple(elements), index)
        self._labels: Labels = tuple(raw)
        self._block_count = len(block_sizes)
        self._blocks = None
        self._block_list = None
        self._hash = None

    @classmethod
    def _from_kernel(cls, universe: Universe, labels: Labels, block_count: int) -> "Partition":
        """Trusted constructor: ``labels`` must be canonical over ``universe``."""
        self = object.__new__(cls)
        self._universe = universe
        self._labels = labels
        self._block_count = block_count
        self._blocks = None
        self._block_list = None
        self._hash = None
        return self

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_labels(cls, universe: Universe, labels: Iterable[Hashable]) -> "Partition":
        """The partition grouping universe positions by label (any hashable labels).

        ``labels`` must have one entry per universe element, in universe
        order; they are canonicalized to dense first-occurrence ints.  This is
        the bulk entry point used by the canonical interpretation, the column
        partitions of §4.1 and the Bell-lattice enumeration — no per-block
        set building, no revalidation.
        """
        canonical, block_count = canonical_labels(labels)
        if len(canonical) != len(universe):
            raise PartitionError(
                f"expected {len(universe)} labels (one per universe element), got {len(canonical)}"
            )
        return cls._from_kernel(universe, canonical, block_count)

    @classmethod
    def discrete(cls, population: Iterable[Element]) -> "Partition":
        """The finest partition of ``population``: every element is its own block."""
        universe = Universe(population)
        n = len(universe)
        return cls._from_kernel(universe, tuple(range(n)), n)

    @classmethod
    def indiscrete(cls, population: Iterable[Element]) -> "Partition":
        """The coarsest partition of ``population``: a single block (if non-empty)."""
        universe = Universe(population)
        n = len(universe)
        return cls._from_kernel(universe, (0,) * n, 1 if n else 0)

    @classmethod
    def from_function(
        cls, population: Iterable[Element], key: Callable[[Element], Hashable]
    ) -> "Partition":
        """Group ``population`` by the value of ``key`` (the kernel of the function)."""
        universe = Universe(population)
        return cls.from_labels(universe, (key(element) for element in universe.elements))

    @classmethod
    def from_equivalence_pairs(
        cls, population: Iterable[Element], pairs: Iterable[tuple[Element, Element]]
    ) -> "Partition":
        """The finest partition in which each given pair is in a common block.

        Computes the partition induced by the reflexive-symmetric-transitive
        closure of ``pairs`` on ``population``: an array union-find with
        union-by-size and path compression.  Pair elements are validated
        against the population as each pair is read, before any union.
        """
        universe = Universe(population)
        index = universe.index
        uf = UnionFind(len(universe))
        for a, b in pairs:
            id_a = index.get(a)
            if id_a is None:
                raise PartitionError(f"pair element {a!r} is not in the population")
            id_b = index.get(b)
            if id_b is None:
                raise PartitionError(f"pair element {b!r} is not in the population")
            uf.union(id_a, id_b)
        find = uf.find
        labels, count = canonical_labels(find(i) for i in range(len(universe)))
        return cls._from_kernel(universe, labels, count)

    # -- accessors --------------------------------------------------------------
    def _block_tuple(self) -> tuple[frozenset, ...]:
        """The blocks indexed by label (materialized lazily, cached)."""
        if self._block_list is None:
            groups: list[list[Element]] = [[] for _ in range(self._block_count)]
            for element, label in zip(self._universe.elements, self._labels):
                groups[label].append(element)
            self._block_list = tuple(frozenset(group) for group in groups)
        return self._block_list

    @property
    def blocks(self) -> frozenset[frozenset]:
        """The blocks of the partition."""
        if self._blocks is None:
            self._blocks = frozenset(self._block_tuple())
        return self._blocks

    @property
    def population(self) -> frozenset:
        """The underlying population (union of the blocks).

        The frozenset is cached on the universe, so partitions sharing a
        universe share one population object (identity-fast comparisons).
        """
        return self._universe.population()

    @property
    def universe(self) -> Universe:
        """The interned universe carrying this partition's label array."""
        return self._universe

    @property
    def labels(self) -> Labels:
        """The canonical first-occurrence label array (position ``i`` → block label)."""
        return self._labels

    def block_of(self, element: Element) -> frozenset:
        """The block containing ``element``; raises if the element is not in the population."""
        position = self._universe.index.get(element)
        if position is None:
            raise PartitionError(f"{element!r} is not in the population")
        return self._block_tuple()[self._labels[position]]

    def block_count(self) -> int:
        """Number of blocks."""
        return self._block_count

    def together(self, first: Element, second: Element) -> bool:
        """True iff the two elements are in the same block."""
        index = self._universe.index
        position_first = index.get(first)
        if position_first is None:
            raise PartitionError(f"{first!r} is not in the population")
        position_second = index.get(second)
        if position_second is None:
            raise PartitionError(f"{second!r} is not in the population")
        return self._labels[position_first] == self._labels[position_second]

    def is_empty(self) -> bool:
        """True iff the partition has no blocks (empty population)."""
        return self._block_count == 0

    def sorted_blocks(self) -> list[list[Element]]:
        """Blocks as sorted lists, sorted among themselves — a deterministic rendering.

        Sort keys (element ``repr``) are computed once per element
        (decorate-sort-undecorate) and reused for the block-level sort, so
        rendering stays linear in ``repr`` calls even on large populations.
        """
        rendered: list[list[Element]] = []
        keys: list[list[str]] = []
        for block in self._block_tuple():
            decorated = sorted([(repr(element), element) for element in block], key=lambda d: d[0])
            keys.append([key for key, _ in decorated])
            rendered.append([element for _, element in decorated])
        order = sorted(range(len(rendered)), key=keys.__getitem__)
        return [rendered[i] for i in order]

    # -- order and operations -----------------------------------------------------
    def refines(self, other: "Partition") -> bool:
        """Refinement *with population containment* (the order of Theorem 2).

        ``self.refines(other)`` iff every block of ``self`` is contained in
        some block of ``other`` **and** the population of ``self`` is
        contained in the population of ``other``.  On a common population
        this is the usual "finer-than" order of the partition lattice; across
        populations it is exactly the condition Theorem 2 gives for the FPD
        ``X = X·Y``.
        """
        if self._universe is other._universe:
            return refines_labels(self._labels, other._labels)
        other_index = other._universe.index
        other_labels = other._labels
        representative: dict[int, int] = {}
        setdefault = representative.setdefault
        for element, fine in zip(self._universe.elements, self._labels):
            position = other_index.get(element)
            if position is None:
                return False
            coarse = other_labels[position]
            if setdefault(fine, coarse) != coarse:
                return False
        return True

    def product(self, other: "Partition") -> "Partition":
        """The partition product ``π * π'`` (a partition of ``p ∩ p'``)."""
        if self._universe is other._universe:
            labels, count = product_labels(self._labels, other._labels)
            return Partition._from_kernel(self._universe, labels, count)
        # Cross-universe: one pass over self's elements that other also carries.
        other_index = other._universe.index
        other_labels = other._labels
        elements: list[Element] = []
        index: dict[Element, int] = {}
        pair_label: dict[tuple[int, int], int] = {}
        setdefault = pair_label.setdefault
        raw: list[int] = []
        for element, label in zip(self._universe.elements, self._labels):
            position = other_index.get(element)
            if position is None:
                continue
            index[element] = len(elements)
            elements.append(element)
            raw.append(setdefault((label, other_labels[position]), len(pair_label)))
        universe = Universe._trusted(tuple(elements), index)
        return Partition._from_kernel(universe, tuple(raw), len(pair_label))

    def sum(self, other: "Partition") -> "Partition":
        """The partition sum ``π + π'`` (a partition of ``p ∪ p'``).

        Two elements of ``p ∪ p'`` are in the same block of the sum iff they
        are linked by a chain of overlapping blocks from ``π ∪ π'``.
        Implemented as an array union-find (union-by-size, path compression)
        over the combined universe, seeded with one anchor per block.
        """
        if self._universe is other._universe:
            labels, count = sum_labels(
                [(self._labels, self._block_count), (other._labels, other._block_count)]
            )
            return Partition._from_kernel(self._universe, labels, count)
        # Cross-universe: union-find over the blocks (not the elements) —
        # blocks of the two operands are connected through shared elements,
        # elements in only one population keep that operand's block.
        universe = union_universe(self._universe, other._universe)
        own_count = self._block_count
        uf = UnionFind(own_count + other._block_count)
        union = uf.union
        other_index = other._universe.index
        other_labels = other._labels
        seen: set[int] = set()
        add = seen.add
        stride = other._block_count
        for element, label in zip(self._universe.elements, self._labels):
            position = other_index.get(element)
            if position is None:
                continue
            other_label = other_labels[position]
            key = label * stride + other_label
            if key not in seen:
                add(key)
                union(label, own_count + other_label)
        find = uf.find
        root = [find(x) for x in range(own_count + other._block_count)]
        own_index = self._universe.index
        own_labels = self._labels
        raw = []
        for element in universe.elements:
            position = own_index.get(element)
            if position is not None:
                raw.append(root[own_labels[position]])
            else:
                raw.append(root[own_count + other_labels[other_index[element]]])
        labels, count = canonical_labels(raw)
        return Partition._from_kernel(universe, labels, count)

    # operator sugar mirroring the paper's notation
    def __mul__(self, other: "Partition") -> "Partition":
        return self.product(other)

    def __add__(self, other: "Partition") -> "Partition":
        return self.sum(other)

    def __le__(self, other: "Partition") -> bool:
        """``π ≤ π'`` in the natural order: ``π = π * π'`` (equivalently ``π' = π' + π``)."""
        return self.refines(other)

    def __ge__(self, other: "Partition") -> bool:
        return other.refines(self)

    def restrict(self, subpopulation: Iterable[Element]) -> "Partition":
        """The restriction of the partition to a subset of its population."""
        target = set(subpopulation)
        index = self._universe.index
        for element in target:
            if element not in index:
                raise PartitionError(
                    "cannot restrict a partition to elements outside its population"
                )
        if len(target) == len(self._universe):
            return self
        elements: list[Element] = []
        kept_index: dict[Element, int] = {}
        raw: list[int] = []
        for element, label in zip(self._universe.elements, self._labels):
            if element in target:
                kept_index[element] = len(elements)
                elements.append(element)
                raw.append(label)
        labels, count = canonical_labels(raw)
        return Partition._from_kernel(Universe._trusted(tuple(elements), kept_index), labels, count)

    def realign(self, universe: Universe) -> "Partition":
        """The same partition re-anchored onto ``universe`` (same population, any order).

        Used to make partitions of a shared population (e.g. the atomic
        partitions of an EAP interpretation) carry one universe *object*, so
        that every later product/sum/equality takes the same-universe fast
        path.  Raises when the populations differ.
        """
        if universe is self._universe:
            return self
        own_index = self._universe.index
        if len(universe) != len(own_index):
            raise PartitionError("cannot realign a partition onto a universe of different population")
        labels = self._labels
        try:
            raw = [labels[own_index[element]] for element in universe.elements]
        except KeyError as exc:
            raise PartitionError(
                "cannot realign a partition onto a universe of different population"
            ) from exc
        canonical, count = canonical_labels(raw)
        return Partition._from_kernel(universe, canonical, count)

    # -- dunder plumbing ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Partition):
            return NotImplemented
        if self._universe is other._universe:
            return self._labels == other._labels
        if (
            self._block_count != other._block_count
            or len(self._universe) != len(other._universe)
        ):
            return False
        # Remap other's labels into self's element order and canonicalize on
        # the fly; equal partitions yield exactly self's canonical labels.
        other_index = other._universe.index
        other_labels = other._labels
        relabel: dict[int, int] = {}
        setdefault = relabel.setdefault
        for element, label in zip(self._universe.elements, self._labels):
            position = other_index.get(element)
            if position is None:
                return False
            if setdefault(other_labels[position], len(relabel)) != label:
                return False
        return True

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = kernel_hash(self._universe.elements, self._labels, self._block_count)
        return self._hash

    def __len__(self) -> int:
        return self._block_count

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._block_tuple())

    def __contains__(self, element: object) -> bool:
        return element in self._universe.index

    def __reduce__(self):
        return (Partition, ([tuple(block) for block in self._block_tuple()],))

    def __repr__(self) -> str:
        return f"Partition({self.sorted_blocks()!r})"

    def __str__(self) -> str:
        blocks = ["{" + ", ".join(str(x) for x in block) + "}" for block in self.sorted_blocks()]
        return "{" + ", ".join(blocks) + "}"

    # -- n-ary kernels (used by repro.partitions.operations) -----------------------
    @staticmethod
    def product_many(partitions: list["Partition"]) -> "Partition":
        """Single-pass n-ary product: group the common population by k-tuples of labels."""
        first = partitions[0]
        if len(partitions) == 1:
            return first
        if all(p._universe is first._universe for p in partitions):
            labels, count = product_labels_many([p._labels for p in partitions])
            return Partition._from_kernel(first._universe, labels, count)
        rest = partitions[1:]
        rest_indexes = [p._universe.index for p in rest]
        rest_labels = [p._labels for p in rest]
        elements: list[Element] = []
        index: dict[Element, int] = {}
        key_label2: dict[tuple[int, ...], int] = {}
        setdefault2 = key_label2.setdefault
        raw_list: list[int] = []
        for element, label in zip(first._universe.elements, first._labels):
            key = [label]
            for other_index, other_labels in zip(rest_indexes, rest_labels):
                position = other_index.get(element)
                if position is None:
                    key = None
                    break
                key.append(other_labels[position])
            if key is None:
                continue
            index[element] = len(elements)
            elements.append(element)
            raw_list.append(setdefault2(tuple(key), len(key_label2)))
        universe = Universe._trusted(tuple(elements), index)
        return Partition._from_kernel(universe, tuple(raw_list), len(key_label2))

    @staticmethod
    def sum_many(partitions: list["Partition"]) -> "Partition":
        """Single-pass n-ary sum: one shared union-find over the combined universe."""
        first = partitions[0]
        if len(partitions) == 1:
            return first
        if all(p._universe is first._universe for p in partitions):
            labels, count = sum_labels([(p._labels, p._block_count) for p in partitions])
            return Partition._from_kernel(first._universe, labels, count)
        universe = first._universe
        for p in partitions[1:]:
            universe = union_universe(universe, p._universe)
        uf = UnionFind(len(universe))
        combined_index = universe.index
        for p in partitions:
            ids = [combined_index[element] for element in p._universe.elements]
            _merge_labelling(uf, p._labels, ids)
        find = uf.find
        labels, count = canonical_labels(find(i) for i in range(len(universe)))
        return Partition._from_kernel(universe, labels, count)


def partition_from_mapping(assignment: Mapping[Element, Hashable]) -> Partition:
    """Build the kernel partition of a mapping (elements grouped by their value)."""
    return Partition.from_function(assignment.keys(), lambda element: assignment[element])
