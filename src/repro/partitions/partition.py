"""Set-theoretic partitions: the semantic objects of the paper (§3.1).

A partition of a population ``p`` is a family of non-empty, pairwise-disjoint
sets (*blocks*) whose union is ``p``.  The two natural operations are

* the **product** ``π * π'``: all non-empty intersections of a block of ``π``
  with a block of ``π'`` — a partition of ``p ∩ p'`` (the coarsest common
  refinement when the populations coincide);
* the **sum** ``π + π'``: the connected components of the "overlap" graph on
  the blocks of ``π ∪ π'`` — a partition of ``p ∪ p'`` (the finest common
  generalization when the populations coincide).

Both operations are associative, commutative and idempotent, and together
they satisfy the absorption laws, so partitions of subsets of a fixed
universe form a lattice (the paper's Theorem 1 builds on exactly this).

Populations can contain any hashable elements; the canonical interpretation
of a relation uses integer tuple identifiers, the worked examples use small
integers, and the property-based tests mix types freely.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Callable, TypeVar

from repro.errors import PartitionError

#: Elements of populations can be any hashable value.
Element = Hashable

T = TypeVar("T")


class Partition:
    """An immutable partition: a frozenset of non-empty, disjoint, covering blocks.

    The population is implicit (the union of the blocks) but exposed through
    :attr:`population`.  Two partitions are equal iff they have exactly the
    same blocks — which forces equal populations.  The *empty* partition (no
    blocks, empty population) is allowed: it arises naturally as the product
    of partitions with disjoint populations and is the bottom of the
    population-aware lattice.
    """

    __slots__ = ("_blocks", "_population", "_block_of", "_hash")

    def __init__(self, blocks: Iterable[Iterable[Element]] = ()) -> None:
        frozen_blocks = frozenset(frozenset(block) for block in blocks)
        if any(not block for block in frozen_blocks):
            raise PartitionError("partition blocks must be non-empty")
        block_of: dict[Element, frozenset] = {}
        for block in frozen_blocks:
            for element in block:
                if element in block_of:
                    raise PartitionError(
                        f"element {element!r} appears in two blocks; blocks must be disjoint"
                    )
                block_of[element] = block
        self._blocks = frozen_blocks
        self._population = frozenset(block_of)
        self._block_of = block_of
        self._hash = hash(frozen_blocks)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def discrete(cls, population: Iterable[Element]) -> "Partition":
        """The finest partition of ``population``: every element is its own block."""
        return cls([{element} for element in set(population)])

    @classmethod
    def indiscrete(cls, population: Iterable[Element]) -> "Partition":
        """The coarsest partition of ``population``: a single block (if non-empty)."""
        elements = set(population)
        return cls([elements] if elements else [])

    @classmethod
    def from_function(
        cls, population: Iterable[Element], key: Callable[[Element], Hashable]
    ) -> "Partition":
        """Group ``population`` by the value of ``key`` (the kernel of the function)."""
        groups: dict[Hashable, set[Element]] = {}
        for element in population:
            groups.setdefault(key(element), set()).add(element)
        return cls(groups.values())

    @classmethod
    def from_equivalence_pairs(
        cls, population: Iterable[Element], pairs: Iterable[tuple[Element, Element]]
    ) -> "Partition":
        """The finest partition in which each given pair is in a common block.

        Computes the partition induced by the reflexive-symmetric-transitive
        closure of ``pairs`` on ``population`` (a small union-find).
        """
        parent: dict[Element, Element] = {element: element for element in population}

        def find(x: Element) -> Element:
            if x not in parent:
                raise PartitionError(f"pair element {x!r} is not in the population")
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in pairs:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b
        groups: dict[Element, set[Element]] = {}
        for element in parent:
            groups.setdefault(find(element), set()).add(element)
        return cls(groups.values())

    # -- accessors --------------------------------------------------------------
    @property
    def blocks(self) -> frozenset[frozenset]:
        """The blocks of the partition."""
        return self._blocks

    @property
    def population(self) -> frozenset:
        """The underlying population (union of the blocks)."""
        return self._population

    def block_of(self, element: Element) -> frozenset:
        """The block containing ``element``; raises if the element is not in the population."""
        try:
            return self._block_of[element]
        except KeyError as exc:
            raise PartitionError(f"{element!r} is not in the population") from exc

    def block_count(self) -> int:
        """Number of blocks."""
        return len(self._blocks)

    def together(self, first: Element, second: Element) -> bool:
        """True iff the two elements are in the same block."""
        return self.block_of(first) == self.block_of(second)

    def is_empty(self) -> bool:
        """True iff the partition has no blocks (empty population)."""
        return not self._blocks

    def sorted_blocks(self) -> list[list[Element]]:
        """Blocks as sorted lists, sorted among themselves — a deterministic rendering."""
        rendered = [sorted(block, key=repr) for block in self._blocks]
        return sorted(rendered, key=lambda block: [repr(x) for x in block])

    # -- order and operations -----------------------------------------------------
    def refines(self, other: "Partition") -> bool:
        """Refinement *with population containment* (the order of Theorem 2).

        ``self.refines(other)`` iff every block of ``self`` is contained in
        some block of ``other`` **and** the population of ``self`` is
        contained in the population of ``other``.  On a common population
        this is the usual "finer-than" order of the partition lattice; across
        populations it is exactly the condition Theorem 2 gives for the FPD
        ``X = X·Y``.
        """
        if not self._population <= other._population:
            return False
        return all(
            block <= other.block_of(next(iter(block))) for block in self._blocks
        )

    def product(self, other: "Partition") -> "Partition":
        """The partition product ``π * π'`` (a partition of ``p ∩ p'``)."""
        common = self._population & other._population
        if not common:
            return Partition()
        # Group the common elements by the pair (block in self, block in other).
        groups: dict[tuple[frozenset, frozenset], set[Element]] = {}
        for element in common:
            key = (self._block_of[element], other._block_of[element])
            groups.setdefault(key, set()).add(element)
        return Partition(groups.values())

    def sum(self, other: "Partition") -> "Partition":
        """The partition sum ``π + π'`` (a partition of ``p ∪ p'``).

        Two elements of ``p ∪ p'`` are in the same block of the sum iff they
        are linked by a chain of overlapping blocks from ``π ∪ π'``.
        Implemented with a union-find over the combined population: each
        block of either partition merges all its elements.
        """
        population = self._population | other._population
        parent: dict[Element, Element] = {element: element for element in population}

        def find(x: Element) -> Element:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: Element, b: Element) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for block in list(self._blocks) + list(other._blocks):
            first = next(iter(block))
            for element in block:
                union(first, element)
        groups: dict[Element, set[Element]] = {}
        for element in population:
            groups.setdefault(find(element), set()).add(element)
        return Partition(groups.values())

    # operator sugar mirroring the paper's notation
    def __mul__(self, other: "Partition") -> "Partition":
        return self.product(other)

    def __add__(self, other: "Partition") -> "Partition":
        return self.sum(other)

    def __le__(self, other: "Partition") -> bool:
        """``π ≤ π'`` in the natural order: ``π = π * π'`` (equivalently ``π' = π' + π``)."""
        return self.refines(other)

    def __ge__(self, other: "Partition") -> bool:
        return other.refines(self)

    def restrict(self, subpopulation: Iterable[Element]) -> "Partition":
        """The restriction of the partition to a subset of its population."""
        target = frozenset(subpopulation)
        if not target <= self._population:
            raise PartitionError("cannot restrict a partition to elements outside its population")
        blocks = []
        for block in self._blocks:
            restricted = block & target
            if restricted:
                blocks.append(restricted)
        return Partition(blocks)

    # -- dunder plumbing ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._blocks)

    def __contains__(self, element: object) -> bool:
        return element in self._population

    def __repr__(self) -> str:
        return f"Partition({self.sorted_blocks()!r})"

    def __str__(self) -> str:
        blocks = ["{" + ", ".join(str(x) for x in block) + "}" for block in self.sorted_blocks()]
        return "{" + ", ".join(blocks) + "}"


def partition_from_mapping(assignment: Mapping[Element, Hashable]) -> Partition:
    """Build the kernel partition of a mapping (elements grouped by their value)."""
    return Partition.from_function(assignment.keys(), lambda element: assignment[element])
