"""Free functions over partitions: n-ary products and sums, lattice checks.

The n-ary operations are *single-pass*: the k-ary product groups the common
population by the k-tuple of block labels in one sweep, and the k-ary sum
runs one shared union-find over the combined universe — instead of
left-folding ``k - 1`` binary calls, each of which would materialize an
intermediate partition.  The meaning of a relation scheme ``R[A1...Ak]``
(the k-ary product of atomic partitions) and the lattice-axiom checks of the
tests and benchmarks all route through here.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import PartitionError
from repro.partitions.partition import Partition


def product(partitions: Iterable[Partition]) -> Partition:
    """The product of one or more partitions (coarsest common refinement)."""
    items = list(partitions)
    if not items:
        raise PartitionError("product of zero partitions is undefined")
    return Partition.product_many(items)


def sum_(partitions: Iterable[Partition]) -> Partition:
    """The sum of one or more partitions (finest common generalization)."""
    items = list(partitions)
    if not items:
        raise PartitionError("sum of zero partitions is undefined")
    return Partition.sum_many(items)


# Lattice-flavoured aliases: on a fixed population the product is the meet
# (greatest lower bound) and the sum is the join (least upper bound) of the
# refinement order.
meet = product
join = sum_


def coarsest_common_refinement(partitions: Iterable[Partition]) -> Partition:
    """Alias of :func:`product` using the paper's §3.1 terminology."""
    return product(partitions)


def finest_common_generalization(partitions: Iterable[Partition]) -> Partition:
    """Alias of :func:`sum_` using the paper's §3.1 terminology."""
    return sum_(partitions)


def is_refinement_chain(partitions: Iterable[Partition]) -> bool:
    """True iff the given partitions form a chain ``π1 ≤ π2 ≤ ...`` in the natural order."""
    items = list(partitions)
    return all(a.refines(b) for a, b in zip(items, items[1:]))


def check_lattice_axioms(x: Partition, y: Partition, z: Partition) -> dict[str, bool]:
    """Evaluate the eight lattice axioms (LA of §2.2) on three concrete partitions.

    Returns a dictionary mapping axiom names to booleans.  Used by the
    property-based tests (every entry must always be ``True``) and by the
    quickstart example to *show* that partitions form a lattice.
    """
    return {
        "product_associativity": (x * y) * z == x * (y * z),
        "sum_associativity": (x + y) + z == x + (y + z),
        "product_commutativity": x * y == y * x,
        "sum_commutativity": x + y == y + x,
        "product_idempotence": x * x == x,
        "sum_idempotence": x + x == x,
        "absorption_sum_over_product": x + (x * y) == x,
        "absorption_product_over_sum": x * (x + y) == x,
    }


def satisfies_lattice_axioms(x: Partition, y: Partition, z: Partition) -> bool:
    """True iff all eight lattice axioms hold for the given triple.

    Note: the absorption laws require the partitions to share a population to
    hold in general; on *different* populations ``x + (x·y)`` has population
    ``p_x`` but ``x · (x + y)`` has population ``p_x`` as well, and both
    absorption laws in fact still hold — the populations work out because
    ``p_x ∩ (p_x ∪ p_y) = p_x = p_x ∪ (p_x ∩ p_y)``.  The associativity,
    commutativity and idempotence laws hold unconditionally (paper §3.1).
    """
    return all(check_lattice_axioms(x, y, z).values())
