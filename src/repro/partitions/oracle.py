"""Block-based partition operations: the seed implementation kept as an oracle.

The integer-coded kernel (:mod:`repro.partitions.kernel`) replaced the
original frozenset-of-frozensets algorithms on the hot paths.  Following the
pattern of PR 1 (naive chase vs :class:`ChaseEngine`) and PR 2 (from-scratch
closures vs :class:`ImplicationIndex`), the original algorithms survive here
verbatim-in-spirit, operating purely on the materialized ``blocks`` /
``population`` views:

* the randomized equivalence suite (``tests/test_partition_kernel.py``)
  cross-checks every kernel operation against these on shared, overlapping
  and disjoint populations;
* the EXP-PART benchmarks (``benchmarks/bench_partitions.py``) measure the
  kernel's speedup against them.

They are deliberately *not* micro-optimized — they are the specification.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.partitions.partition import Element, Partition


def block_product(first: Partition, second: Partition) -> Partition:
    """The product via frozenset-pair grouping (the seed's ``Partition.product``)."""
    common = first.population & second.population
    if not common:
        return Partition()
    first_block_of = {element: block for block in first.blocks for element in block}
    second_block_of = {element: block for block in second.blocks for element in block}
    groups: dict[tuple[frozenset, frozenset], set[Element]] = {}
    for element in common:
        key = (first_block_of[element], second_block_of[element])
        groups.setdefault(key, set()).add(element)
    return Partition(groups.values())


def block_sum(first: Partition, second: Partition) -> Partition:
    """The sum via a hash-keyed union-find (the seed's ``Partition.sum``)."""
    population = first.population | second.population
    parent: dict[Element, Element] = {element: element for element in population}

    def find(x: Element) -> Element:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: Element, b: Element) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for block in list(first.blocks) + list(second.blocks):
        anchor = next(iter(block))
        for element in block:
            union(anchor, element)
    groups: dict[Element, set[Element]] = {}
    for element in population:
        groups.setdefault(find(element), set()).add(element)
    return Partition(groups.values())


def block_refines(first: Partition, second: Partition) -> bool:
    """Refinement with population containment, on materialized blocks."""
    if not first.population <= second.population:
        return False
    second_block_of = {element: block for block in second.blocks for element in block}
    return all(block <= second_block_of[next(iter(block))] for block in first.blocks)


def block_restrict(partition: Partition, subpopulation: Iterable[Element]) -> Partition:
    """Restriction by intersecting every block (the seed's ``Partition.restrict``)."""
    from repro.errors import PartitionError

    target = frozenset(subpopulation)
    if not target <= partition.population:
        raise PartitionError("cannot restrict a partition to elements outside its population")
    blocks = []
    for block in partition.blocks:
        restricted = block & target
        if restricted:
            blocks.append(restricted)
    return Partition(blocks)


def block_product_many(partitions: Iterable[Partition]) -> Partition:
    """Left-folded binary products (the seed's n-ary ``operations.product``)."""
    result: Partition | None = None
    for partition in partitions:
        result = partition if result is None else block_product(result, partition)
    if result is None:
        raise ValueError("product of zero partitions is undefined")
    return result


def block_sum_many(partitions: Iterable[Partition]) -> Partition:
    """Left-folded binary sums (the seed's n-ary ``operations.sum_``)."""
    result: Partition | None = None
    for partition in partitions:
        result = partition if result is None else block_sum(result, partition)
    if result is None:
        raise ValueError("sum of zero partitions is undefined")
    return result
