"""Partition interpretations (Definitions 1–3 of the paper).

A partition interpretation ``I`` over an attribute universe assigns to every
attribute ``A``:

1. a non-empty *population* ``p_A``,
2. an *atomic partition* ``π_A`` of ``p_A``,
3. a *naming function* ``f_A`` from symbols to blocks of ``π_A`` (or ∅) such
   that distinct symbols name disjoint blocks and every block is named by
   exactly one symbol.

From an interpretation we derive, by structural induction, the meaning of
every partition expression (a partition together with its population), of
every relation scheme (the product of its attributes' atomic partitions), of
every symbol occurrence, and of every tuple (the intersection of the blocks
named by its symbols).  ``I`` *satisfies* a database iff every tuple has a
non-empty meaning (Definition 2) and satisfies a PD ``e = e'`` iff the two
expressions have equal meaning — equal partitions *and* equal populations
(Definition 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional, Union

from repro.errors import PartitionError
from repro.expressions.ast import (
    Attr,
    ExpressionLike,
    PartitionExpression,
    Product,
    Sum,
    as_expression,
)
from repro.partitions.kernel import Universe
from repro.partitions.partition import Element, Partition
from repro.relational.attributes import Attribute, AttributeSet, Symbol, as_attribute_set
from repro.relational.database import Database
from repro.relational.relations import Relation
from repro.relational.tuples import Row


class AttributeInterpretation:
    """The triple ``(p_A, π_A, f_A)`` interpreting one attribute.

    The naming function is given as a mapping from symbols to blocks; symbols
    not present in the mapping are sent to ∅ (the paper's ``f_A(x) = ∅``).
    The constructor validates the conditions of Definition 1: the named
    blocks are exactly the blocks of ``π_A`` and distinct symbols name
    disjoint (hence distinct) blocks.
    """

    __slots__ = ("_partition", "_naming", "_symbol_of_block", "_symbol_of_element")

    def __init__(
        self,
        partition: Partition,
        naming: Mapping[Symbol, Iterable[Element]],
    ) -> None:
        if partition.is_empty():
            raise PartitionError("the population of an attribute must be non-empty")
        normalized: dict[Symbol, frozenset] = {}
        for symbol, block in naming.items():
            normalized[symbol] = frozenset(block)
        named_blocks = list(normalized.values())
        if len(set(named_blocks)) != len(named_blocks):
            raise PartitionError("distinct symbols must name distinct blocks (f_A is injective)")
        if set(named_blocks) != set(partition.blocks):
            raise PartitionError(
                "the named blocks must be exactly the blocks of the atomic partition"
            )
        self._partition = partition
        self._naming = normalized
        self._symbol_of_block = {block: symbol for symbol, block in normalized.items()}
        self._symbol_of_element: Optional[dict[Element, Symbol]] = None

    @classmethod
    def from_block_names(cls, blocks: Mapping[Symbol, Iterable[Element]]) -> "AttributeInterpretation":
        """Build population, partition and naming at once from ``symbol -> block``."""
        partition = Partition(blocks.values())
        return cls(partition, blocks)

    @property
    def population(self) -> frozenset:
        """The population ``p_A``."""
        return self._partition.population

    @property
    def partition(self) -> Partition:
        """The atomic partition ``π_A``."""
        return self._partition

    @property
    def naming(self) -> dict[Symbol, frozenset]:
        """The naming function restricted to the symbols with non-empty image."""
        return dict(self._naming)

    def block_named(self, symbol: Symbol) -> Optional[frozenset]:
        """``f_A(x)``: the block named by ``symbol``, or ``None`` for ∅."""
        return self._naming.get(symbol)

    def symbol_of(self, block: frozenset) -> Symbol:
        """The unique symbol naming ``block`` (inverse of the naming function)."""
        try:
            return self._symbol_of_block[frozenset(block)]
        except KeyError as exc:
            raise PartitionError(f"{set(block)!r} is not a named block") from exc

    def named_symbols(self) -> frozenset[Symbol]:
        """The symbols with a non-empty image under ``f_A``."""
        return frozenset(self._naming)

    def symbol_of_element(self, element: Element) -> Symbol:
        """The symbol naming the block that contains ``element`` (cached element map).

        Equivalent to ``symbol_of(partition.block_of(element))`` but backed by
        a flat element → symbol dict built once, so bulk consumers (the
        canonical relation ``R(I)`` walks every (element, attribute) pair) do
        no per-lookup frozenset hashing.
        """
        if self._symbol_of_element is None:
            self._symbol_of_element = {
                element: symbol for symbol, block in self._naming.items() for element in block
            }
        try:
            return self._symbol_of_element[element]
        except KeyError as exc:
            raise PartitionError(f"{element!r} is not in the population") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeInterpretation):
            return NotImplemented
        return self._partition == other._partition and self._naming == other._naming

    def __hash__(self) -> int:
        return hash((self._partition, tuple(sorted(self._naming.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        return f"AttributeInterpretation({self._partition!r}, {len(self._naming)} named blocks)"


class PartitionInterpretation:
    """A partition interpretation: one :class:`AttributeInterpretation` per attribute.

    Besides the attribute map the instance owns two evaluation caches keyed on
    the hash-consed expression DAG: ``meaning`` / :meth:`meaning_many` walk
    every interned node at most once per interpretation, and
    :meth:`meaning_of_scheme` memoizes per attribute set.  The caches are
    invisible to equality/hashing (they are derived data).
    """

    __slots__ = (
        "_attributes",
        "_meaning_cache",
        "_scheme_cache",
        "_total_population",
        "_meaning_hits",
        "_meaning_misses",
    )

    def __init__(self, attributes: Mapping[Attribute, AttributeInterpretation]) -> None:
        if not attributes:
            raise PartitionError("a partition interpretation needs at least one attribute")
        for name, interp in attributes.items():
            if not isinstance(interp, AttributeInterpretation):
                raise PartitionError(
                    f"attribute {name!r} must map to an AttributeInterpretation, got {interp!r}"
                )
        self._attributes = dict(sorted(attributes.items()))
        self._meaning_cache: dict[PartitionExpression, Partition] = {}
        self._scheme_cache: dict[tuple[Attribute, ...], Partition] = {}
        self._total_population: Optional[frozenset] = None
        self._meaning_hits = 0
        self._meaning_misses = 0

    @classmethod
    def from_named_blocks(
        cls, spec: Mapping[Attribute, Mapping[Symbol, Iterable[Element]]]
    ) -> "PartitionInterpretation":
        """Build an interpretation from ``{attribute: {symbol: block}}``.

        This is the most convenient constructor for worked examples — Figure 1
        of the paper is literally a table of this shape.

        Atomic partitions of attributes that share a population are
        re-anchored onto one shared :class:`~repro.partitions.kernel.Universe`
        object, so products/sums/comparisons between them take the kernel's
        same-universe fast path (canonical interpretations, being EAP, share
        a single universe across *all* attributes).
        """
        partitions = {
            attribute: Partition(blocks.values()) for attribute, blocks in spec.items()
        }
        shared: dict[frozenset, Universe] = {}
        attributes = {}
        for attribute, blocks in spec.items():
            partition = partitions[attribute]
            population = partition.population
            target = shared.get(population)
            if target is None:
                target = partition.universe
                shared[population] = target
            attributes[attribute] = AttributeInterpretation(partition.realign(target), blocks)
        return cls(attributes)

    # -- accessors ------------------------------------------------------------
    @property
    def attributes(self) -> AttributeSet:
        """The attribute universe of the interpretation."""
        return AttributeSet(self._attributes)

    def attribute(self, name: Attribute) -> AttributeInterpretation:
        """The interpretation of a single attribute."""
        try:
            return self._attributes[name]
        except KeyError as exc:
            raise PartitionError(f"interpretation has no attribute {name!r}") from exc

    def population(self, name: Attribute) -> frozenset:
        """The population ``p_A`` of an attribute."""
        return self.attribute(name).population

    def atomic_partition(self, name: Attribute) -> Partition:
        """The atomic partition ``π_A`` of an attribute."""
        return self.attribute(name).partition

    def total_population(self) -> frozenset:
        """The union of all attribute populations (the ``p`` of Definition 6, cached)."""
        if self._total_population is None:
            result: frozenset = frozenset()
            for interp in self._attributes.values():
                result |= interp.population
            self._total_population = result
        return self._total_population

    # -- meanings (structural induction of §3.1) ---------------------------------
    def meaning(self, expression: ExpressionLike) -> Partition:
        """The meaning of a partition expression: a partition of its population.

        Memoized on the hash-consed expression DAG (PR 2 interned every node,
        so structural equality is identity): each distinct subexpression is
        evaluated at most once over the lifetime of this interpretation, no
        matter how often it is shared between queries.  The walk is iterative
        so deep expressions cannot overflow the Python stack.
        """
        node = as_expression(expression)
        cache = self._meaning_cache
        cached = cache.get(node)
        if cached is not None:
            self._meaning_hits += 1
            return cached
        computed_now: set[PartitionExpression] = set()
        stack = [node]
        while stack:
            top = stack[-1]
            if top in cache:
                stack.pop()
                continue
            if isinstance(top, Attr):
                cache[top] = self.atomic_partition(top.name)
                computed_now.add(top)
                self._meaning_misses += 1
                stack.pop()
                continue
            if not isinstance(top, (Product, Sum)):
                raise PartitionError(f"unknown expression node {top!r}")
            left, right = top.left, top.right
            left_value = cache.get(left)
            right_value = cache.get(right)
            if left_value is None or right_value is None:
                if left_value is None:
                    stack.append(left)
                if right_value is None:
                    stack.append(right)
                continue
            # A child resolved from an earlier walk's cache is a hit; one we
            # just computed ourselves is already accounted as a miss.
            if left not in computed_now:
                self._meaning_hits += 1
            if right not in computed_now:
                self._meaning_hits += 1
            if isinstance(top, Product):
                cache[top] = left_value.product(right_value)
            else:
                cache[top] = left_value.sum(right_value)
            computed_now.add(top)
            self._meaning_misses += 1
            stack.pop()
        return cache[node]

    def meaning_many(self, expressions: Iterable[ExpressionLike]) -> list[Partition]:
        """Bulk evaluation: the shared-subexpression DAG is walked once per node.

        The per-interpretation cache persists across calls, so a batch of PDs
        evaluated against one (e.g. canonical) interpretation pays for each
        distinct subexpression exactly once.
        """
        return [self.meaning(expression) for expression in expressions]

    def meaning_cache_info(self) -> dict[str, int]:
        """Cache diagnostics: ``hits`` / ``misses`` (node evaluations) / ``size``."""
        return {
            "hits": self._meaning_hits,
            "misses": self._meaning_misses,
            "size": len(self._meaning_cache),
        }

    def meaning_of_scheme(self, attributes: Union[str, AttributeSet]) -> Partition:
        """The meaning of a relation scheme ``R[U]``: the n-ary product of its attributes.

        Computed by the single-pass k-ary kernel product (grouping the common
        population by k-tuples of labels) and memoized per attribute set.
        """
        attrs = as_attribute_set(attributes)
        if not attrs:
            raise PartitionError("a relation scheme needs at least one attribute")
        key = tuple(attrs.sorted())
        cached = self._scheme_cache.get(key)
        if cached is None:
            cached = Partition.product_many([self.atomic_partition(name) for name in key])
            self._scheme_cache[key] = cached
        return cached

    def meaning_of_symbol(self, attribute: Attribute, symbol: Symbol) -> frozenset:
        """The meaning of a symbol in a column: ``f_A(x)`` (∅ rendered as the empty frozenset)."""
        block = self.attribute(attribute).block_named(symbol)
        return block if block is not None else frozenset()

    def meaning_of_tuple(self, row: Row) -> frozenset:
        """The meaning of a tuple: the intersection of the blocks named by its symbols."""
        result: Optional[frozenset] = None
        for attribute in row.attributes:
            block = self.meaning_of_symbol(attribute, row[attribute])
            result = block if result is None else result & block
            if not result:
                return frozenset()
        return result if result is not None else frozenset()

    # -- satisfaction --------------------------------------------------------------
    def satisfies_database(self, database: Database) -> bool:
        """Definition 2: every tuple of every relation has a non-empty meaning."""
        return all(
            bool(self.meaning_of_tuple(row))
            for relation in database.relations
            for row in relation.rows
        )

    def satisfies_relation(self, relation: Relation) -> bool:
        """Definition 2 restricted to a single relation."""
        return self.satisfies_database(Database.single(relation))

    def satisfies_pd(self, dependency: "PartitionDependencyLike") -> bool:
        """Definition 3: the two sides have the same partition *and* the same population."""
        from repro.dependencies.pd import as_partition_dependency

        pd = as_partition_dependency(dependency)
        left = self.meaning(pd.left)
        right = self.meaning(pd.right)
        return left == right and left.population == right.population

    def satisfies_all_pds(self, dependencies: Iterable["PartitionDependencyLike"]) -> bool:
        """Satisfaction of a whole set of PDs.

        Short-circuits on the first violated PD (the seed contract); the
        per-interpretation meaning cache still gives the batch its
        shared-subexpression reuse.  Use :meth:`pd_verdicts` to evaluate
        every PD unconditionally.
        """
        return all(self.satisfies_pd(pd) for pd in dependencies)

    def pd_verdicts(self, dependencies: Iterable["PartitionDependencyLike"]) -> list[bool]:
        """Per-PD satisfaction verdicts, evaluating the whole batch over one DAG walk."""
        from repro.dependencies.pd import as_partition_dependency

        pds = [as_partition_dependency(d) for d in dependencies]
        sides: list[ExpressionLike] = []
        for pd in pds:
            sides.append(pd.left)
            sides.append(pd.right)
        meanings = self.meaning_many(sides)
        return [
            left == right and left.population == right.population
            for left, right in zip(meanings[0::2], meanings[1::2])
        ]

    def satisfies_cad(self, database: Database) -> bool:
        """The complete-atomic-data assumption (Definition 4.1); see :mod:`repro.partitions.assumptions`."""
        from repro.partitions.assumptions import satisfies_cad

        return satisfies_cad(self, database)

    def satisfies_eap(self) -> bool:
        """The equal-atomic-populations assumption (Definition 4.2)."""
        from repro.partitions.assumptions import satisfies_eap

        return satisfies_eap(self)

    # -- derived structures ----------------------------------------------------------
    def lattice(self) -> "InterpretationLattice":
        """``L(I)``: the lattice generated by the atomic partitions (Theorem 1)."""
        from repro.lattice.interpretation_lattice import InterpretationLattice

        return InterpretationLattice.from_interpretation(self)

    def canonical_relation(self, name: str = "R_of_I") -> Relation:
        """``R(I)``: the canonical relation of Definition 6."""
        from repro.partitions.canonical import canonical_relation

        return canonical_relation(self, name=name)

    # -- plumbing ----------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionInterpretation):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(self._attributes.items()))

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attributes

    def __repr__(self) -> str:
        return f"PartitionInterpretation(attributes={sorted(self._attributes)})"

    def __str__(self) -> str:
        lines = []
        for name, interp in self._attributes.items():
            naming = ", ".join(
                f"{symbol} -> {{{', '.join(str(e) for e in sorted(block, key=repr))}}}"
                for symbol, block in sorted(interp.naming.items())
            )
            lines.append(f"{name}: population={set(interp.population)!r}, naming: {naming}")
        return "\n".join(lines)


# Imported lazily in methods to avoid import cycles; re-declared here for typing only.
PartitionDependencyLike = Union["object", str, tuple]
