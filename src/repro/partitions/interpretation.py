"""Partition interpretations (Definitions 1–3 of the paper).

A partition interpretation ``I`` over an attribute universe assigns to every
attribute ``A``:

1. a non-empty *population* ``p_A``,
2. an *atomic partition* ``π_A`` of ``p_A``,
3. a *naming function* ``f_A`` from symbols to blocks of ``π_A`` (or ∅) such
   that distinct symbols name disjoint blocks and every block is named by
   exactly one symbol.

From an interpretation we derive, by structural induction, the meaning of
every partition expression (a partition together with its population), of
every relation scheme (the product of its attributes' atomic partitions), of
every symbol occurrence, and of every tuple (the intersection of the blocks
named by its symbols).  ``I`` *satisfies* a database iff every tuple has a
non-empty meaning (Definition 2) and satisfies a PD ``e = e'`` iff the two
expressions have equal meaning — equal partitions *and* equal populations
(Definition 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional, Union

from repro.errors import PartitionError
from repro.expressions.ast import (
    Attr,
    ExpressionLike,
    Product,
    Sum,
    as_expression,
)
from repro.partitions.partition import Element, Partition
from repro.relational.attributes import Attribute, AttributeSet, Symbol, as_attribute_set
from repro.relational.database import Database
from repro.relational.relations import Relation
from repro.relational.tuples import Row


class AttributeInterpretation:
    """The triple ``(p_A, π_A, f_A)`` interpreting one attribute.

    The naming function is given as a mapping from symbols to blocks; symbols
    not present in the mapping are sent to ∅ (the paper's ``f_A(x) = ∅``).
    The constructor validates the conditions of Definition 1: the named
    blocks are exactly the blocks of ``π_A`` and distinct symbols name
    disjoint (hence distinct) blocks.
    """

    __slots__ = ("_partition", "_naming", "_symbol_of_block")

    def __init__(
        self,
        partition: Partition,
        naming: Mapping[Symbol, Iterable[Element]],
    ) -> None:
        if partition.is_empty():
            raise PartitionError("the population of an attribute must be non-empty")
        normalized: dict[Symbol, frozenset] = {}
        for symbol, block in naming.items():
            normalized[symbol] = frozenset(block)
        named_blocks = list(normalized.values())
        if len(set(named_blocks)) != len(named_blocks):
            raise PartitionError("distinct symbols must name distinct blocks (f_A is injective)")
        if set(named_blocks) != set(partition.blocks):
            raise PartitionError(
                "the named blocks must be exactly the blocks of the atomic partition"
            )
        self._partition = partition
        self._naming = normalized
        self._symbol_of_block = {block: symbol for symbol, block in normalized.items()}

    @classmethod
    def from_block_names(cls, blocks: Mapping[Symbol, Iterable[Element]]) -> "AttributeInterpretation":
        """Build population, partition and naming at once from ``symbol -> block``."""
        partition = Partition(blocks.values())
        return cls(partition, blocks)

    @property
    def population(self) -> frozenset:
        """The population ``p_A``."""
        return self._partition.population

    @property
    def partition(self) -> Partition:
        """The atomic partition ``π_A``."""
        return self._partition

    @property
    def naming(self) -> dict[Symbol, frozenset]:
        """The naming function restricted to the symbols with non-empty image."""
        return dict(self._naming)

    def block_named(self, symbol: Symbol) -> Optional[frozenset]:
        """``f_A(x)``: the block named by ``symbol``, or ``None`` for ∅."""
        return self._naming.get(symbol)

    def symbol_of(self, block: frozenset) -> Symbol:
        """The unique symbol naming ``block`` (inverse of the naming function)."""
        try:
            return self._symbol_of_block[frozenset(block)]
        except KeyError as exc:
            raise PartitionError(f"{set(block)!r} is not a named block") from exc

    def named_symbols(self) -> frozenset[Symbol]:
        """The symbols with a non-empty image under ``f_A``."""
        return frozenset(self._naming)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeInterpretation):
            return NotImplemented
        return self._partition == other._partition and self._naming == other._naming

    def __hash__(self) -> int:
        return hash((self._partition, tuple(sorted(self._naming.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        return f"AttributeInterpretation({self._partition!r}, {len(self._naming)} named blocks)"


class PartitionInterpretation:
    """A partition interpretation: one :class:`AttributeInterpretation` per attribute."""

    __slots__ = ("_attributes",)

    def __init__(self, attributes: Mapping[Attribute, AttributeInterpretation]) -> None:
        if not attributes:
            raise PartitionError("a partition interpretation needs at least one attribute")
        for name, interp in attributes.items():
            if not isinstance(interp, AttributeInterpretation):
                raise PartitionError(
                    f"attribute {name!r} must map to an AttributeInterpretation, got {interp!r}"
                )
        self._attributes = dict(sorted(attributes.items()))

    @classmethod
    def from_named_blocks(
        cls, spec: Mapping[Attribute, Mapping[Symbol, Iterable[Element]]]
    ) -> "PartitionInterpretation":
        """Build an interpretation from ``{attribute: {symbol: block}}``.

        This is the most convenient constructor for worked examples — Figure 1
        of the paper is literally a table of this shape.
        """
        return cls(
            {
                attribute: AttributeInterpretation.from_block_names(blocks)
                for attribute, blocks in spec.items()
            }
        )

    # -- accessors ------------------------------------------------------------
    @property
    def attributes(self) -> AttributeSet:
        """The attribute universe of the interpretation."""
        return AttributeSet(self._attributes)

    def attribute(self, name: Attribute) -> AttributeInterpretation:
        """The interpretation of a single attribute."""
        try:
            return self._attributes[name]
        except KeyError as exc:
            raise PartitionError(f"interpretation has no attribute {name!r}") from exc

    def population(self, name: Attribute) -> frozenset:
        """The population ``p_A`` of an attribute."""
        return self.attribute(name).population

    def atomic_partition(self, name: Attribute) -> Partition:
        """The atomic partition ``π_A`` of an attribute."""
        return self.attribute(name).partition

    def total_population(self) -> frozenset:
        """The union of all attribute populations (the ``p`` of Definition 6)."""
        result: frozenset = frozenset()
        for interp in self._attributes.values():
            result |= interp.population
        return result

    # -- meanings (structural induction of §3.1) ---------------------------------
    def meaning(self, expression: ExpressionLike) -> Partition:
        """The meaning of a partition expression: a partition of its population."""
        node = as_expression(expression)
        if isinstance(node, Attr):
            return self.atomic_partition(node.name)
        if isinstance(node, Product):
            return self.meaning(node.left).product(self.meaning(node.right))
        if isinstance(node, Sum):
            return self.meaning(node.left).sum(self.meaning(node.right))
        raise PartitionError(f"unknown expression node {node!r}")

    def meaning_of_scheme(self, attributes: Union[str, AttributeSet]) -> Partition:
        """The meaning of a relation scheme ``R[U]``: the product of its attributes."""
        attrs = as_attribute_set(attributes)
        if not attrs:
            raise PartitionError("a relation scheme needs at least one attribute")
        result: Optional[Partition] = None
        for name in attrs:
            part = self.atomic_partition(name)
            result = part if result is None else result.product(part)
        assert result is not None
        return result

    def meaning_of_symbol(self, attribute: Attribute, symbol: Symbol) -> frozenset:
        """The meaning of a symbol in a column: ``f_A(x)`` (∅ rendered as the empty frozenset)."""
        block = self.attribute(attribute).block_named(symbol)
        return block if block is not None else frozenset()

    def meaning_of_tuple(self, row: Row) -> frozenset:
        """The meaning of a tuple: the intersection of the blocks named by its symbols."""
        result: Optional[frozenset] = None
        for attribute in row.attributes:
            block = self.meaning_of_symbol(attribute, row[attribute])
            result = block if result is None else result & block
            if not result:
                return frozenset()
        return result if result is not None else frozenset()

    # -- satisfaction --------------------------------------------------------------
    def satisfies_database(self, database: Database) -> bool:
        """Definition 2: every tuple of every relation has a non-empty meaning."""
        return all(
            bool(self.meaning_of_tuple(row))
            for relation in database.relations
            for row in relation.rows
        )

    def satisfies_relation(self, relation: Relation) -> bool:
        """Definition 2 restricted to a single relation."""
        return self.satisfies_database(Database.single(relation))

    def satisfies_pd(self, dependency: "PartitionDependencyLike") -> bool:
        """Definition 3: the two sides have the same partition *and* the same population."""
        from repro.dependencies.pd import as_partition_dependency

        pd = as_partition_dependency(dependency)
        left = self.meaning(pd.left)
        right = self.meaning(pd.right)
        return left == right and left.population == right.population

    def satisfies_all_pds(self, dependencies: Iterable["PartitionDependencyLike"]) -> bool:
        """Satisfaction of a whole set of PDs."""
        return all(self.satisfies_pd(pd) for pd in dependencies)

    def satisfies_cad(self, database: Database) -> bool:
        """The complete-atomic-data assumption (Definition 4.1); see :mod:`repro.partitions.assumptions`."""
        from repro.partitions.assumptions import satisfies_cad

        return satisfies_cad(self, database)

    def satisfies_eap(self) -> bool:
        """The equal-atomic-populations assumption (Definition 4.2)."""
        from repro.partitions.assumptions import satisfies_eap

        return satisfies_eap(self)

    # -- derived structures ----------------------------------------------------------
    def lattice(self) -> "InterpretationLattice":
        """``L(I)``: the lattice generated by the atomic partitions (Theorem 1)."""
        from repro.lattice.interpretation_lattice import InterpretationLattice

        return InterpretationLattice.from_interpretation(self)

    def canonical_relation(self, name: str = "R_of_I") -> Relation:
        """``R(I)``: the canonical relation of Definition 6."""
        from repro.partitions.canonical import canonical_relation

        return canonical_relation(self, name=name)

    # -- plumbing ----------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionInterpretation):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(self._attributes.items()))

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attributes

    def __repr__(self) -> str:
        return f"PartitionInterpretation(attributes={sorted(self._attributes)})"

    def __str__(self) -> str:
        lines = []
        for name, interp in self._attributes.items():
            naming = ", ".join(
                f"{symbol} -> {{{', '.join(str(e) for e in sorted(block, key=repr))}}}"
                for symbol, block in sorted(interp.naming.items())
            )
            lines.append(f"{name}: population={set(interp.population)!r}, naming: {naming}")
        return "\n".join(lines)


# Imported lazily in methods to avoid import cycles; re-declared here for typing only.
PartitionDependencyLike = Union["object", str, tuple]
