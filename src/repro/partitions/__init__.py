"""Partition substrate: partitions, their product/sum, and partition interpretations (§3).

Implements Definitions 1–6 of the paper: the :class:`Partition` value type
with the ``*`` and ``+`` operations, partition interpretations with their
satisfaction relations, the CAD/EAP assumptions, and the canonical
constructions ``I(r)`` and ``R(I)`` bridging relations and interpretations.
"""

from repro.partitions.assumptions import cad_violations, satisfies_cad, satisfies_eap
from repro.partitions.canonical import (
    canonical_interpretation,
    canonical_relation,
    canonical_roundtrip,
    eap_extension,
    restrict_to_attributes,
)
from repro.partitions.interpretation import AttributeInterpretation, PartitionInterpretation
from repro.partitions.kernel import Universe
from repro.partitions.operations import (
    check_lattice_axioms,
    coarsest_common_refinement,
    finest_common_generalization,
    is_refinement_chain,
    join,
    meet,
    product,
    satisfies_lattice_axioms,
    sum_,
)
from repro.partitions.partition import Element, Partition, partition_from_mapping

__all__ = [
    "Partition",
    "Element",
    "Universe",
    "partition_from_mapping",
    "product",
    "sum_",
    "meet",
    "join",
    "coarsest_common_refinement",
    "finest_common_generalization",
    "is_refinement_chain",
    "check_lattice_axioms",
    "satisfies_lattice_axioms",
    "AttributeInterpretation",
    "PartitionInterpretation",
    "satisfies_cad",
    "satisfies_eap",
    "cad_violations",
    "canonical_interpretation",
    "canonical_relation",
    "canonical_roundtrip",
    "eap_extension",
    "restrict_to_attributes",
]
