"""repro — Partition Semantics for Relations.

A library-scale reproduction of

    S. S. Cosmadakis, P. C. Kanellakis, N. Spyratos,
    "Partition Semantics for Relations", PODS 1985
    (JCSS 33:203–233, 1986).

The package assigns set-theoretic partition semantics to relation schemes,
relations and dependencies, implements **partition dependencies (PDs)** — the
lattice-equation generalization of functional dependencies — and provides:

* the polynomial-time PD implication engine **ALG** (the uniform word
  problem for lattices, Theorem 9);
* the free-lattice identity checker ``≤_id`` (Theorem 10);
* the weak-instance connection (Theorems 6–7) and the polynomial consistency
  test for databases with PDs (Theorem 12);
* the NP-complete CAD+EAP consistency variant with its NOT-ALL-EQUAL-3SAT
  reduction (Theorem 11, Figure 3);
* the expressiveness artifacts: graph connectivity via ``C = A + B``
  (Example e / Theorem 4) and the MVD inexpressibility construction
  (Theorem 5 / Figure 2);
* full relational, partition, lattice and SAT substrates, workload
  generators, the paper's figures as executable constructions, examples and
  a benchmark harness.

Quickstart::

    from repro import Relation, PartitionDependency, pd_implies, relation_satisfies_pd

    r = Relation.from_strings("r", "ABC", ["a.b.c", "a.b.c2"])
    relation_satisfies_pd(r, "A = A*B")        # FD-style constraint
    pd_implies(["A = A*B", "B = B*C"], "A = A*C")   # implication via ALG

See ``examples/`` for complete programs and ``DESIGN.md`` / ``EXPERIMENTS.md``
for the reproduction map.
"""

from repro.consistency import (
    cad_consistency,
    cad_consistency_for_fpds,
    fpd_consistency,
    is_fpd_consistent,
    is_pd_consistent,
    normalize_dependencies,
    pd_chase_engine,
    pd_consistency,
    pd_consistency_many,
    reduce_nae3sat_to_cad_consistency,
    solve_nae3sat_via_reduction,
)
from repro.dependencies import (
    FunctionalPartitionDependency,
    PartitionDependency,
    as_partition_dependency,
    fd_to_pd,
    fds_to_pds,
    fpds_to_fds,
    relation_satisfies_all_pds,
    relation_satisfies_pd,
)
from repro.errors import (
    ConsistencyError,
    DependencyError,
    ExpressionError,
    LatticeError,
    PartitionError,
    ReproError,
    SchemaError,
)
from repro.expressions import (
    Attr,
    PartitionExpression,
    Product,
    Sum,
    attr,
    attrs,
    parse_expression,
    to_infix,
)
from repro.figures import figure1, figure2, figure3
from repro.graphs import (
    connectivity_pd,
    graph_to_relation,
    satisfies_connectivity_pd,
    theorem4_path_relation,
)
from repro.implication import (
    ImplicationEngine,
    ImplicationIndex,
    fd_implies,
    fd_implies_all_via_pds,
    fd_implies_via_pds,
    identically_equal,
    identically_leq,
    is_pd_identity,
    lattice_identity,
    lattice_word_problem,
    lattice_word_problems,
    pd_implies,
    pd_leq,
    semigroup_word_problem,
)
from repro.lattice import FiniteLattice, InterpretationLattice, finite_counterexample, partition_lattice
from repro.partitions import (
    Partition,
    PartitionInterpretation,
    canonical_interpretation,
    canonical_relation,
    satisfies_cad,
    satisfies_eap,
)
from repro.relational import (
    ChaseEngine,
    Database,
    FunctionalDependency,
    MultivaluedDependency,
    Relation,
    RelationScheme,
    Row,
    chase_many,
    weak_instance_consistency,
)
from repro.sat import CnfFormula, nae_backtracking, nae_brute_force
from repro.service import (
    QueryRequest,
    QueryResult,
    Session,
    ShardExecutor,
    execute_plan,
    naive_dispatch,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "DependencyError",
    "PartitionError",
    "ExpressionError",
    "LatticeError",
    "ConsistencyError",
    # relational substrate
    "Row",
    "RelationScheme",
    "Relation",
    "Database",
    "FunctionalDependency",
    "MultivaluedDependency",
    "weak_instance_consistency",
    "ChaseEngine",
    "chase_many",
    # partitions
    "Partition",
    "PartitionInterpretation",
    "canonical_interpretation",
    "canonical_relation",
    "satisfies_cad",
    "satisfies_eap",
    # expressions
    "PartitionExpression",
    "Attr",
    "Product",
    "Sum",
    "attr",
    "attrs",
    "parse_expression",
    "to_infix",
    # dependencies
    "PartitionDependency",
    "FunctionalPartitionDependency",
    "as_partition_dependency",
    "fd_to_pd",
    "fds_to_pds",
    "fpds_to_fds",
    "relation_satisfies_pd",
    "relation_satisfies_all_pds",
    # implication
    "ImplicationEngine",
    "ImplicationIndex",
    "pd_implies",
    "pd_leq",
    "identically_leq",
    "identically_equal",
    "is_pd_identity",
    "fd_implies",
    "fd_implies_via_pds",
    "fd_implies_all_via_pds",
    "lattice_word_problem",
    "lattice_word_problems",
    "lattice_identity",
    "semigroup_word_problem",
    # lattices
    "FiniteLattice",
    "InterpretationLattice",
    "partition_lattice",
    "finite_counterexample",
    # consistency
    "pd_consistency",
    "pd_consistency_many",
    "pd_chase_engine",
    "is_pd_consistent",
    "fpd_consistency",
    "is_fpd_consistent",
    "normalize_dependencies",
    "cad_consistency",
    "cad_consistency_for_fpds",
    "reduce_nae3sat_to_cad_consistency",
    "solve_nae3sat_via_reduction",
    # graphs
    "graph_to_relation",
    "connectivity_pd",
    "satisfies_connectivity_pd",
    "theorem4_path_relation",
    # SAT
    "CnfFormula",
    "nae_brute_force",
    "nae_backtracking",
    # figures
    "figure1",
    "figure2",
    "figure3",
    # query service
    "QueryRequest",
    "QueryResult",
    "Session",
    "ShardExecutor",
    "execute_plan",
    "naive_dispatch",
]
