"""Cooperative query deadlines: a thread-local stack of wall-clock budgets.

The decision procedures behind the service are super-polynomial in the worst
case (`counterexample` product closures, CAD backtracking), so a production
deployment needs a way to bound one query without killing the process that
hosts it.  This module is the cooperative half of that story:

* :func:`deadline_scope` pushes an absolute expiry (monotonic clock) onto a
  thread-local stack for the duration of a ``with`` block and yields the
  :class:`DeadlineScope` as a token;
* :func:`check_deadline` is the check-function hook the long-running kernels
  call once per unit of search work (one product-closure step, one backtrack
  node, one chase merge event).  When any active scope has expired it raises
  :class:`~repro.errors.DeadlineExceeded` carrying the *earliest-expired*
  scope, so nested budgets compose: a per-request ``deadline_ms`` and an
  enclosing micro-batch window budget each catch exactly their own token and
  re-raise the other's.

The no-deadline fast path is one thread-local attribute read and a truthiness
check — cheap enough to sit inside every search loop.  Scopes are strictly
lexically nested per thread (the ``with`` protocol enforces it), and the
stack is thread-local, so concurrent sessions on different threads never see
each other's budgets.  The *hard* half of deadline enforcement — killing a
worker stuck in non-instrumented code — lives in
:mod:`repro.service.supervisor`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro import profiling
from repro.errors import DeadlineExceeded


class DeadlineScope:
    """One active budget: an absolute expiry on the monotonic clock.

    The scope object doubles as the *token* identifying which budget expired:
    handlers compare ``exc.scope is my_scope`` and re-raise foreign tokens so
    an enclosing budget is never mistaken for the request's own.
    """

    __slots__ = ("budget_ms", "expires_at")

    def __init__(self, budget_ms: float) -> None:
        self.budget_ms = budget_ms
        self.expires_at = time.monotonic() + budget_ms / 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds until expiry (negative once expired)."""
        return (self.expires_at - time.monotonic()) * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "scopes", None)
    if stack is None:
        stack = []
        _LOCAL.scopes = stack
    return stack


def active_deadlines() -> tuple[DeadlineScope, ...]:
    """The scopes currently active on this thread, outermost first."""
    return tuple(getattr(_LOCAL, "scopes", None) or ())


@contextmanager
def deadline_scope(budget_ms: Optional[float]) -> Iterator[Optional[DeadlineScope]]:
    """Run a block under a wall-clock budget; ``None`` means no deadline.

    Yields the :class:`DeadlineScope` token (or ``None``), which the caller
    compares against :attr:`DeadlineExceeded.scope` to tell its own expiry
    apart from an enclosing one.
    """
    if budget_ms is None:
        yield None
        return
    scope = DeadlineScope(budget_ms)
    stack = _stack()
    stack.append(scope)
    try:
        yield scope
    finally:
        stack.remove(scope)


def check_deadline() -> None:
    """Raise :class:`~repro.errors.DeadlineExceeded` if any active scope expired.

    The exception carries the earliest-expired scope, so when both a request
    deadline and an enclosing window budget have run out, the innermost
    matching handler (the request's) wins — the window only degrades when a
    request *without* its own deadline overruns.
    """
    stack = getattr(_LOCAL, "scopes", None)
    if not stack:
        return
    now = time.monotonic()
    expired: Optional[DeadlineScope] = None
    for scope in stack:
        if now >= scope.expires_at and (expired is None or scope.expires_at < expired.expires_at):
            expired = scope
    if expired is not None:
        prof = profiling.active()
        if prof is not None:
            prof.deadline_exceeded += 1
        raise DeadlineExceeded(
            expired,
            f"deadline of {expired.budget_ms:g} ms exceeded "
            f"({-expired.remaining_ms():.1f} ms over budget)",
        )
