"""Finite lattices: explicit algebraic structures with two operations (§2.2).

A lattice is a set with two binary operations ``*`` (meet) and ``+`` (join)
satisfying associativity, commutativity, idempotence and the two absorption
laws; the natural partial order is ``x ≤ y  iff  x = x·y  iff  y = y + x``.

:class:`FiniteLattice` stores the elements together with meet/join tables and
can be built either from explicit operation functions or from a partial
order (meets and joins are then computed as greatest lower / least upper
bounds and their existence is checked).  A *lattice with constants over U*
additionally names some elements with attribute names (the ``g`` of §2.2);
expressions and PDs are then evaluated directly inside the lattice.

The class targets the small lattices that appear in the paper's
constructions (Figures 1–2, the finite counterexamples of Theorem 8); all
algorithms are straightforward O(n²)–O(n³) table computations.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable, Optional

from repro.errors import LatticeError
from repro.expressions.ast import Attr, ExpressionLike, Product, Sum, as_expression

#: Lattice elements can be any hashable value.
LatticeElement = Hashable


class FiniteLattice:
    """An explicit finite lattice, optionally with named constants.

    ``constants`` maps attribute names to elements; several names may point
    at the same element, matching the paper's remark that an element can
    have more than one name.
    """

    def __init__(
        self,
        elements: Iterable[LatticeElement],
        meet: Callable[[LatticeElement, LatticeElement], LatticeElement],
        join: Callable[[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> None:
        self._elements = list(dict.fromkeys(elements))
        if not self._elements:
            raise LatticeError("a lattice must be non-empty")
        element_set = set(self._elements)
        self._meet_table: dict[tuple[LatticeElement, LatticeElement], LatticeElement] = {}
        self._join_table: dict[tuple[LatticeElement, LatticeElement], LatticeElement] = {}
        for x in self._elements:
            for y in self._elements:
                m = meet(x, y)
                j = join(x, y)
                if m not in element_set or j not in element_set:
                    raise LatticeError(
                        f"meet/join of {x!r}, {y!r} escapes the element set"
                    )
                self._meet_table[(x, y)] = m
                self._join_table[(x, y)] = j
        self._constants = dict(constants or {})
        for name, element in self._constants.items():
            if element not in element_set:
                raise LatticeError(f"constant {name!r} names unknown element {element!r}")
        if validate:
            problems = self.axiom_violations()
            if problems:
                raise LatticeError(f"lattice axioms violated: {problems[:3]} ...")

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_tables(
        cls,
        elements: Iterable[LatticeElement],
        meet_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        join_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> "FiniteLattice":
        """Build from explicit operation tables (missing symmetric entries are filled in)."""

        def meet(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in meet_table:
                return meet_table[(x, y)]
            return meet_table[(y, x)]

        def join(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in join_table:
                return join_table[(x, y)]
            return join_table[(y, x)]

        return cls(elements, meet, join, constants, validate)

    @classmethod
    def from_partial_order(
        cls,
        elements: Iterable[LatticeElement],
        leq: Callable[[LatticeElement, LatticeElement], bool],
        constants: Optional[Mapping[str, LatticeElement]] = None,
    ) -> "FiniteLattice":
        """Build a lattice from a partial order, checking that meets and joins exist.

        Raises :class:`LatticeError` when some pair has no greatest lower
        bound or least upper bound (i.e. the order is not a lattice order).
        """
        items = list(dict.fromkeys(elements))

        def glb(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            lower = [z for z in items if leq(z, x) and leq(z, y)]
            greatest = [z for z in lower if all(leq(w, z) for w in lower)]
            if len(greatest) != 1:
                raise LatticeError(f"elements {x!r}, {y!r} have no unique greatest lower bound")
            return greatest[0]

        def lub(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            upper = [z for z in items if leq(x, z) and leq(y, z)]
            least = [z for z in upper if all(leq(z, w) for w in upper)]
            if len(least) != 1:
                raise LatticeError(f"elements {x!r}, {y!r} have no unique least upper bound")
            return least[0]

        return cls(items, glb, lub, constants)

    @classmethod
    def chain(cls, length: int) -> "FiniteLattice":
        """The chain lattice 0 < 1 < ... < length-1 (handy in tests)."""
        if length <= 0:
            raise LatticeError("a chain needs at least one element")
        return cls(range(length), min, max)

    @classmethod
    def boolean(cls, generators: Iterable[str]) -> "FiniteLattice":
        """The Boolean (powerset) lattice over a finite generator set, constants = atoms."""
        names = sorted(set(generators))
        elements = [
            frozenset(combo)
            for size in range(len(names) + 1)
            for combo in itertools.combinations(names, size)
        ]
        constants = {name: frozenset([name]) for name in names}
        return cls(
            elements,
            lambda x, y: x & y,
            lambda x, y: x | y,
            constants,
        )

    # -- basic structure ---------------------------------------------------------------
    @property
    def elements(self) -> list[LatticeElement]:
        """The elements (in construction order)."""
        return list(self._elements)

    @property
    def constants(self) -> dict[str, LatticeElement]:
        """The named constants (attribute name → element)."""
        return dict(self._constants)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in set(self._elements)

    def meet(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x * y``."""
        try:
            return self._meet_table[(x, y)]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def join(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x + y``."""
        try:
            return self._join_table[(x, y)]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def leq(self, x: LatticeElement, y: LatticeElement) -> bool:
        """The natural partial order: ``x ≤ y`` iff ``x = x * y``."""
        return self.meet(x, y) == x

    def top(self) -> LatticeElement:
        """The greatest element (join of everything)."""
        result = self._elements[0]
        for element in self._elements[1:]:
            result = self.join(result, element)
        return result

    def bottom(self) -> LatticeElement:
        """The least element (meet of everything)."""
        result = self._elements[0]
        for element in self._elements[1:]:
            result = self.meet(result, element)
        return result

    def covers(self) -> list[tuple[LatticeElement, LatticeElement]]:
        """The covering pairs (Hasse-diagram edges) ``x ⋖ y``."""
        result = []
        for x in self._elements:
            for y in self._elements:
                if x == y or not self.leq(x, y):
                    continue
                if any(
                    z not in (x, y) and self.leq(x, z) and self.leq(z, y)
                    for z in self._elements
                ):
                    continue
                result.append((x, y))
        return result

    # -- axioms ------------------------------------------------------------------------------
    def axiom_violations(self) -> list[str]:
        """Human-readable descriptions of lattice-axiom violations (empty iff a lattice)."""
        problems: list[str] = []
        elements = self._elements
        for x in elements:
            if self.meet(x, x) != x:
                problems.append(f"meet not idempotent at {x!r}")
            if self.join(x, x) != x:
                problems.append(f"join not idempotent at {x!r}")
        for x, y in itertools.product(elements, repeat=2):
            if self.meet(x, y) != self.meet(y, x):
                problems.append(f"meet not commutative at {x!r}, {y!r}")
            if self.join(x, y) != self.join(y, x):
                problems.append(f"join not commutative at {x!r}, {y!r}")
            if self.join(x, self.meet(x, y)) != x:
                problems.append(f"absorption x+(x*y) fails at {x!r}, {y!r}")
            if self.meet(x, self.join(x, y)) != x:
                problems.append(f"absorption x*(x+y) fails at {x!r}, {y!r}")
        for x, y, z in itertools.product(elements, repeat=3):
            if self.meet(self.meet(x, y), z) != self.meet(x, self.meet(y, z)):
                problems.append(f"meet not associative at {x!r}, {y!r}, {z!r}")
            if self.join(self.join(x, y), z) != self.join(x, self.join(y, z)):
                problems.append(f"join not associative at {x!r}, {y!r}, {z!r}")
        return problems

    # -- constants and expression evaluation -----------------------------------------------------
    def with_constants(self, constants: Mapping[str, LatticeElement]) -> "FiniteLattice":
        """The same lattice with a different constant assignment."""
        return FiniteLattice(
            self._elements,
            self.meet,
            self.join,
            constants,
            validate=False,
        )

    def constant(self, name: str) -> LatticeElement:
        """The element named by an attribute."""
        try:
            return self._constants[name]
        except KeyError as exc:
            raise LatticeError(f"no constant named {name!r} in this lattice") from exc

    def evaluate(self, expression: ExpressionLike) -> LatticeElement:
        """Evaluate a partition expression inside the lattice (attributes via constants)."""
        node = as_expression(expression)
        if isinstance(node, Attr):
            return self.constant(node.name)
        if isinstance(node, Product):
            return self.meet(self.evaluate(node.left), self.evaluate(node.right))
        if isinstance(node, Sum):
            return self.join(self.evaluate(node.left), self.evaluate(node.right))
        raise LatticeError(f"unknown expression node {node!r}")

    def satisfies(self, dependency) -> bool:
        """``L ⊨ e = e'``: the two sides evaluate to the same element (§2.2)."""
        from repro.dependencies.pd import as_partition_dependency

        pd = as_partition_dependency(dependency)
        return self.evaluate(pd.left) == self.evaluate(pd.right)

    def satisfies_all(self, dependencies: Iterable) -> bool:
        """Satisfaction of a set of equations."""
        return all(self.satisfies(pd) for pd in dependencies)

    # -- substructures -----------------------------------------------------------------------------
    def sublattice(self, elements: Iterable[LatticeElement]) -> "FiniteLattice":
        """The sublattice generated by ``elements`` (closure under meet and join)."""
        current = set(elements)
        if not current:
            raise LatticeError("a sublattice needs at least one generator")
        unknown = current - set(self._elements)
        if unknown:
            raise LatticeError(f"not lattice elements: {unknown!r}")
        changed = True
        while changed:
            changed = False
            for x, y in itertools.combinations(sorted(current, key=repr), 2):
                for candidate in (self.meet(x, y), self.join(x, y)):
                    if candidate not in current:
                        current.add(candidate)
                        changed = True
        constants = {
            name: element for name, element in self._constants.items() if element in current
        }
        return FiniteLattice(
            sorted(current, key=repr), self.meet, self.join, constants, validate=False
        )

    def __repr__(self) -> str:
        return f"FiniteLattice({len(self._elements)} elements, constants={sorted(self._constants)})"
