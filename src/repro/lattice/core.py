"""Finite lattices on a dense integer/bitset kernel (§2.2).

A lattice is a set with two binary operations ``*`` (meet) and ``+`` (join)
satisfying associativity, commutativity, idempotence and the two absorption
laws; the natural partial order is ``x ≤ y  iff  x = x·y  iff  y = y + x``.

:class:`FiniteLattice` used to store hashable elements in dict operation
tables and answer every structural question by O(n²)–O(n³) elementwise scans
(that implementation survives as
:class:`repro.lattice.oracle.OracleFiniteLattice`, the cross-check oracle of
the randomized equivalence suite).  This module is the production kernel:

* elements are interned once into contiguous ids ``0 .. n-1`` (``_elements``
  list for id → element, ``_index`` dict for element → id);
* meet and join are flat id → id tables (lists of lists — two machine-int
  indexations per operation, no tuple keys, no hashing);
* the ``≤`` order is stored as per-element **bitset rows** (Python big-ints):
  ``up[i]`` has bit ``j`` set iff ``i ≤ j`` and ``down[j]`` has bit ``i`` set
  iff ``i ≤ j``, so order tests are one shift-and-mask and order-theoretic
  queries (covers, bounds, GLB/LUB candidates) are word-parallel ``&``/``|``;
* :meth:`from_partial_order` assigns ids along a linear extension, so the
  greatest lower bound of ``x, y`` is the **highest set bit** of
  ``down[x] & down[y]`` (dually the LUB is the highest-position bit of
  ``up[x] & up[y]`` under the reversed extension) — one big-int ``&`` plus
  ``bit_length`` instead of a quadratic scan per pair;
* :meth:`axiom_violations` replaces the O(n³) associativity sweep with the
  order-theoretic characterization — idempotence, commutativity and
  absorption on the tables, then transitivity and the GLB/LUB property as
  O(n²) bitset-row comparisons (``down[x·y] == down[x] & down[y]``).  The two
  characterizations agree: a magma pair is a lattice iff its induced ``≤`` is
  a partial order realized by the tables as GLB and LUB.

A *lattice with constants over U* additionally names some elements with
attribute names (the ``g`` of §2.2); expression evaluation memoizes id
results per interned AST node, so a batch of PDs walks each shared
subexpression once (the PR 3 DAG-evaluation pattern).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable, Optional

from repro.errors import LatticeError
from repro.expressions.ast import Attr, ExpressionLike, PartitionExpression, Product, Sum, as_expression

#: Lattice elements can be any hashable value.
LatticeElement = Hashable


class FiniteLattice:
    """An explicit finite lattice on the integer/bitset kernel, optionally with constants.

    ``constants`` maps attribute names to elements; several names may point
    at the same element, matching the paper's remark that an element can
    have more than one name.  The public surface is element-valued; the
    id-level kernel (``meet_ids``/``join_ids``/``up_masks``/``down_masks``)
    is exposed read-only for the property checks and the quotient pipeline.
    """

    __slots__ = (
        "_elements",
        "_index",
        "_meet_ids",
        "_join_ids",
        "_up",
        "_down",
        "_constants",
        "_constant_ids",
        "_eval_cache",
    )

    def __init__(
        self,
        elements: Iterable[LatticeElement],
        meet: Callable[[LatticeElement, LatticeElement], LatticeElement],
        join: Callable[[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> None:
        interned = list(dict.fromkeys(elements))
        if not interned:
            raise LatticeError("a lattice must be non-empty")
        index = {element: i for i, element in enumerate(interned)}
        meet_ids: list[list[int]] = []
        join_ids: list[list[int]] = []
        for x in interned:
            meet_row: list[int] = []
            join_row: list[int] = []
            for y in interned:
                m = index.get(meet(x, y))
                j = index.get(join(x, y))
                if m is None or j is None:
                    raise LatticeError(
                        f"meet/join of {x!r}, {y!r} escapes the element set"
                    )
                meet_row.append(m)
                join_row.append(j)
            meet_ids.append(meet_row)
            join_ids.append(join_row)
        self._init_from_tables(interned, index, meet_ids, join_ids, constants, validate)

    def _init_from_tables(
        self,
        elements: list[LatticeElement],
        index: dict[LatticeElement, int],
        meet_ids: list[list[int]],
        join_ids: list[list[int]],
        constants: Optional[Mapping[str, LatticeElement]],
        validate: bool,
    ) -> None:
        self._elements = elements
        self._index = index
        self._meet_ids = meet_ids
        self._join_ids = join_ids
        self._build_masks()
        self._constants = dict(constants or {})
        self._constant_ids: dict[str, int] = {}
        for name, element in self._constants.items():
            cid = index.get(element)
            if cid is None:
                raise LatticeError(f"constant {name!r} names unknown element {element!r}")
            self._constant_ids[name] = cid
        self._eval_cache: dict[PartitionExpression, int] = {}
        if validate:
            problems = self.axiom_violations()
            if problems:
                raise LatticeError(f"lattice axioms violated: {problems[:3]} ...")

    @classmethod
    def _trusted(
        cls,
        elements: list[LatticeElement],
        meet_ids: list[list[int]],
        join_ids: list[list[int]],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = False,
    ) -> "FiniteLattice":
        """Internal constructor from precomputed id tables (no operation callbacks)."""
        self = object.__new__(cls)
        index = {element: i for i, element in enumerate(elements)}
        self._init_from_tables(elements, index, meet_ids, join_ids, constants, validate)
        return self

    def _build_masks(self) -> None:
        """Derive the up/down bitset rows from the meet table: ``i ≤ j`` iff ``i·j = i``."""
        n = len(self._elements)
        up = [0] * n
        down = [0] * n
        for i in range(n):
            row = self._meet_ids[i]
            mask = 0
            bit = 1
            for j in range(n):
                if row[j] == i:
                    mask |= bit
                    down[j] |= 1 << i
                bit <<= 1
            up[i] = mask
        self._up = up
        self._down = down

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_tables(
        cls,
        elements: Iterable[LatticeElement],
        meet_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        join_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> "FiniteLattice":
        """Build from explicit operation tables (missing symmetric entries are filled in)."""

        def meet(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in meet_table:
                return meet_table[(x, y)]
            return meet_table[(y, x)]

        def join(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in join_table:
                return join_table[(x, y)]
            return join_table[(y, x)]

        return cls(elements, meet, join, constants, validate)

    @classmethod
    def from_partial_order(
        cls,
        elements: Iterable[LatticeElement],
        leq: Callable[[LatticeElement, LatticeElement], bool],
        constants: Optional[Mapping[str, LatticeElement]] = None,
    ) -> "FiniteLattice":
        """Build a lattice from a partial order, checking that meets and joins exist.

        The order is probed once (n² ``leq`` calls) into bitset rows; ids are
        then ranked along a linear extension so every GLB/LUB is the
        highest-position set bit of one mask intersection.  Raises
        :class:`LatticeError` when some pair has no greatest lower bound or
        least upper bound (i.e. the order is not a lattice order).
        """
        items = list(dict.fromkeys(elements))
        n = len(items)
        up = [0] * n
        down = [0] * n
        for i, x in enumerate(items):
            bit = 1 << i
            for j, y in enumerate(items):
                if leq(x, y):
                    up[i] |= 1 << j
                    down[j] |= bit
        for i in range(n):
            if not (up[i] >> i) & 1:
                raise LatticeError(f"the order is not reflexive at {items[i]!r}")
            others = up[i] & down[i] & ~(1 << i)
            if others:
                j = others.bit_length() - 1
                raise LatticeError(
                    f"the order is not antisymmetric at {items[i]!r}, {items[j]!r}"
                )

        # Rank ids along a linear extension (|down-set| is monotone in <),
        # then re-express each mask in rank space so the GLB of a pair is the
        # highest set bit of the intersected down-rows (dually for the LUB).
        order = sorted(range(n), key=lambda i: (_popcount(down[i]), i))
        rank = [0] * n
        for position, i in enumerate(order):
            rank[i] = position
        rank_down = [_rank_mask(down[i], rank) for i in range(n)]
        co_rank = [n - 1 - position for position in rank]
        rank_up = [_rank_mask(up[i], co_rank) for i in range(n)]

        meet_ids: list[list[int]] = []
        join_ids: list[list[int]] = []
        co_order = list(reversed(order))
        for i in range(n):
            down_i = rank_down[i]
            up_i = rank_up[i]
            meet_row: list[int] = []
            join_row: list[int] = []
            for j in range(n):
                lower = down_i & rank_down[j]
                if not lower:
                    raise LatticeError(
                        f"elements {items[i]!r}, {items[j]!r} have no unique greatest lower bound"
                    )
                glb = order[lower.bit_length() - 1]
                if rank_down[glb] != lower:
                    raise LatticeError(
                        f"elements {items[i]!r}, {items[j]!r} have no unique greatest lower bound"
                    )
                meet_row.append(glb)
                upper = up_i & rank_up[j]
                if not upper:
                    raise LatticeError(
                        f"elements {items[i]!r}, {items[j]!r} have no unique least upper bound"
                    )
                lub = co_order[upper.bit_length() - 1]
                if rank_up[lub] != upper:
                    raise LatticeError(
                        f"elements {items[i]!r}, {items[j]!r} have no unique least upper bound"
                    )
                join_row.append(lub)
            meet_ids.append(meet_row)
            join_ids.append(join_row)
        return cls._trusted(items, meet_ids, join_ids, constants, validate=True)

    @classmethod
    def chain(cls, length: int) -> "FiniteLattice":
        """The chain lattice 0 < 1 < ... < length-1 (handy in tests)."""
        if length <= 0:
            raise LatticeError("a chain needs at least one element")
        return cls(range(length), min, max)

    @classmethod
    def boolean(cls, generators: Iterable[str]) -> "FiniteLattice":
        """The Boolean (powerset) lattice over a finite generator set, constants = atoms."""
        names = sorted(set(generators))
        elements = [
            frozenset(combo)
            for size in range(len(names) + 1)
            for combo in itertools.combinations(names, size)
        ]
        constants = {name: frozenset([name]) for name in names}
        return cls(
            elements,
            lambda x, y: x & y,
            lambda x, y: x | y,
            constants,
        )

    # -- basic structure ---------------------------------------------------------------
    @property
    def elements(self) -> list[LatticeElement]:
        """The elements (in construction order)."""
        return list(self._elements)

    @property
    def constants(self) -> dict[str, LatticeElement]:
        """The named constants (attribute name → element)."""
        return dict(self._constants)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in self._index

    # -- id-level kernel surface -------------------------------------------------------
    def element_id(self, element: LatticeElement) -> int:
        """The interned id of an element (raises on unknown elements)."""
        try:
            return self._index[element]
        except KeyError as exc:
            raise LatticeError(f"{element!r} is not a lattice element") from exc

    def element_of(self, element_id: int) -> LatticeElement:
        """The element with a given id."""
        return self._elements[element_id]

    @property
    def meet_ids(self) -> list[list[int]]:
        """The meet table as id rows (``meet_ids[i][j]`` = id of ``i · j``; do not mutate)."""
        return self._meet_ids

    @property
    def join_ids(self) -> list[list[int]]:
        """The join table as id rows (``join_ids[i][j]`` = id of ``i + j``; do not mutate)."""
        return self._join_ids

    @property
    def up_masks(self) -> list[int]:
        """Bitset rows of the order: bit ``j`` of ``up_masks[i]`` is set iff ``i ≤ j``."""
        return self._up

    @property
    def down_masks(self) -> list[int]:
        """Bitset rows of the order: bit ``i`` of ``down_masks[j]`` is set iff ``i ≤ j``."""
        return self._down

    def leq_ids(self, i: int, j: int) -> bool:
        """``i ≤ j`` on element ids (one shift-and-mask)."""
        return (self._up[i] >> j) & 1 == 1

    # -- operations --------------------------------------------------------------------
    def meet(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x * y``."""
        try:
            return self._elements[self._meet_ids[self._index[x]][self._index[y]]]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def join(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x + y``."""
        try:
            return self._elements[self._join_ids[self._index[x]][self._index[y]]]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def leq(self, x: LatticeElement, y: LatticeElement) -> bool:
        """The natural partial order: ``x ≤ y`` iff ``x = x * y``."""
        try:
            return (self._up[self._index[x]] >> self._index[y]) & 1 == 1
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def top(self) -> LatticeElement:
        """The greatest element (the one whose down-set row is full)."""
        full = (1 << len(self._elements)) - 1
        for i, mask in enumerate(self._down):
            if mask == full:
                return self._elements[i]
        # Unvalidated non-lattices may lack a top; fold joins like the seed did.
        result = 0
        for j in range(1, len(self._elements)):
            result = self._join_ids[result][j]
        return self._elements[result]

    def bottom(self) -> LatticeElement:
        """The least element (the one whose up-set row is full)."""
        full = (1 << len(self._elements)) - 1
        for i, mask in enumerate(self._up):
            if mask == full:
                return self._elements[i]
        result = 0
        for j in range(1, len(self._elements)):
            result = self._meet_ids[result][j]
        return self._elements[result]

    def covers(self) -> list[tuple[LatticeElement, LatticeElement]]:
        """The covering pairs (Hasse-diagram edges) ``x ⋖ y``.

        ``x ⋖ y`` iff the order interval ``[x, y]`` — the bit intersection
        ``up[x] & down[y]`` — contains exactly the two endpoints.
        """
        elements = self._elements
        return [(elements[i], elements[j]) for i, j in iter_cover_ids(self._up, self._down)]

    # -- axioms ------------------------------------------------------------------------------
    def axiom_violations(self) -> list[str]:
        """Human-readable descriptions of lattice-axiom violations (empty iff a lattice).

        Order-theoretic formulation: the tables form a lattice iff meet/join
        are idempotent, commutative and mutually absorptive, the induced
        ``x ≤ y iff x·y = x`` is transitive, and every table entry realizes
        the greatest lower / least upper bound of its pair — all checked as
        O(n²) table scans and bitset-row comparisons (no O(n³) associativity
        sweep; associativity of a GLB/LUB-realizing table is automatic).
        """
        problems: list[str] = []
        elements = self._elements
        n = len(elements)
        meet_ids = self._meet_ids
        join_ids = self._join_ids
        for i in range(n):
            if meet_ids[i][i] != i:
                problems.append(f"meet not idempotent at {elements[i]!r}")
            if join_ids[i][i] != i:
                problems.append(f"join not idempotent at {elements[i]!r}")
        for i in range(n):
            meet_row = meet_ids[i]
            join_row = join_ids[i]
            for j in range(n):
                if meet_row[j] != meet_ids[j][i]:
                    problems.append(f"meet not commutative at {elements[i]!r}, {elements[j]!r}")
                if join_row[j] != join_ids[j][i]:
                    problems.append(f"join not commutative at {elements[i]!r}, {elements[j]!r}")
                if join_row[meet_row[j]] != i:
                    problems.append(f"absorption x+(x*y) fails at {elements[i]!r}, {elements[j]!r}")
                if meet_row[join_row[j]] != i:
                    problems.append(f"absorption x*(x+y) fails at {elements[i]!r}, {elements[j]!r}")
        if problems:
            # The induced relation is not even a candidate order; the bound
            # checks below presuppose these base axioms.
            return problems
        up = self._up
        down = self._down
        for j in range(n):
            members = down[j]
            union = 0
            remaining = members
            while remaining:
                low = remaining & -remaining
                union |= down[low.bit_length() - 1]
                remaining ^= low
            if union != members:
                problems.append(f"the induced order is not transitive below {elements[j]!r}")
        if problems:
            return problems
        for i in range(n):
            down_i = down[i]
            up_i = up[i]
            for j in range(n):
                if down[meet_ids[i][j]] != down_i & down[j]:
                    problems.append(
                        f"meet of {elements[i]!r}, {elements[j]!r} is not the greatest lower bound"
                    )
                if up[join_ids[i][j]] != up_i & up[j]:
                    problems.append(
                        f"join of {elements[i]!r}, {elements[j]!r} is not the least upper bound"
                    )
        return problems

    # -- constants and expression evaluation -----------------------------------------------------
    def with_constants(self, constants: Mapping[str, LatticeElement]) -> "FiniteLattice":
        """The same lattice with a different constant assignment (tables are shared)."""
        return FiniteLattice._trusted(
            self._elements,
            self._meet_ids,
            self._join_ids,
            constants,
            validate=False,
        )

    def constant(self, name: str) -> LatticeElement:
        """The element named by an attribute."""
        try:
            return self._elements[self._constant_ids[name]]
        except KeyError as exc:
            raise LatticeError(f"no constant named {name!r} in this lattice") from exc

    def evaluate_id(self, expression: ExpressionLike) -> int:
        """Evaluate a partition expression to an element id (memoized per AST node).

        Expression nodes are hash-consed (PR 2), so the cache keys on object
        identity and a batch of PDs walks each shared subexpression once.
        """
        node = as_expression(expression)
        cache = self._eval_cache
        cached = cache.get(node)
        if cached is not None:
            return cached
        stack: list[tuple[PartitionExpression, bool]] = [(node, False)]
        meet_ids = self._meet_ids
        join_ids = self._join_ids
        while stack:
            current, expanded = stack.pop()
            if current in cache:
                continue
            if isinstance(current, Attr):
                cid = self._constant_ids.get(current.name)
                if cid is None:
                    raise LatticeError(f"no constant named {current.name!r} in this lattice")
                cache[current] = cid
            elif expanded:
                left = cache[current.left]  # type: ignore[attr-defined]
                right = cache[current.right]  # type: ignore[attr-defined]
                if isinstance(current, Product):
                    cache[current] = meet_ids[left][right]
                elif isinstance(current, Sum):
                    cache[current] = join_ids[left][right]
                else:
                    raise LatticeError(f"unknown expression node {current!r}")
            else:
                if not isinstance(current, (Product, Sum)):
                    raise LatticeError(f"unknown expression node {current!r}")
                stack.append((current, True))
                stack.append((current.left, False))
                stack.append((current.right, False))
        return cache[node]

    def evaluate(self, expression: ExpressionLike) -> LatticeElement:
        """Evaluate a partition expression inside the lattice (attributes via constants)."""
        return self._elements[self.evaluate_id(expression)]

    def satisfies(self, dependency) -> bool:
        """``L ⊨ e = e'``: the two sides evaluate to the same element (§2.2)."""
        from repro.dependencies.pd import as_partition_dependency

        pd = as_partition_dependency(dependency)
        return self.evaluate_id(pd.left) == self.evaluate_id(pd.right)

    def satisfies_all(self, dependencies: Iterable) -> bool:
        """Satisfaction of a set of equations."""
        return all(self.satisfies(pd) for pd in dependencies)

    # -- substructures -----------------------------------------------------------------------------
    def sublattice(self, elements: Iterable[LatticeElement]) -> "FiniteLattice":
        """The sublattice generated by ``elements`` (closure under meet and join)."""
        generators = list(elements)
        if not generators:
            raise LatticeError("a sublattice needs at least one generator")
        unknown = {e for e in generators if e not in self._index}
        if unknown:
            raise LatticeError(f"not lattice elements: {unknown!r}")
        members: list[int] = list(dict.fromkeys(self._index[e] for e in generators))
        member_set = set(members)
        meet_ids = self._meet_ids
        join_ids = self._join_ids
        i = 0
        while i < len(members):
            a = members[i]
            meet_row = meet_ids[a]
            join_row = join_ids[a]
            for b in members[: i + 1]:
                for candidate in (meet_row[b], join_row[b]):
                    if candidate not in member_set:
                        member_set.add(candidate)
                        members.append(candidate)
            i += 1
        chosen = sorted((self._elements[i] for i in member_set), key=repr)
        old_ids = [self._index[element] for element in chosen]
        position_of_id = {old_id: p for p, old_id in enumerate(old_ids)}
        sub_meet = [
            [position_of_id[meet_ids[a][b]] for b in old_ids] for a in old_ids
        ]
        sub_join = [
            [position_of_id[join_ids[a][b]] for b in old_ids] for a in old_ids
        ]
        constants = {
            name: element
            for name, element in self._constants.items()
            if self._index[element] in member_set
        }
        return FiniteLattice._trusted(chosen, sub_meet, sub_join, constants, validate=False)

    def __repr__(self) -> str:
        return f"FiniteLattice({len(self._elements)} elements, constants={sorted(self._constants)})"


def iter_cover_ids(up: list[int], down: list[int]):
    """Yield the covering id pairs ``(i, j)`` of an order given as bitset rows.

    ``i ⋖ j`` iff ``i < j`` in the order and the interval ``up[i] & down[j]``
    holds only the two endpoints.  Shared by :meth:`FiniteLattice.covers` and
    the isomorphism profiles of :mod:`repro.lattice.properties`.
    """
    n = len(up)
    for i in range(n):
        up_i = up[i]
        not_i = ~(1 << i)
        for j in range(n):
            if i == j or not (up_i >> j) & 1:
                continue
            if up_i & down[j] & not_i & ~(1 << j):
                continue
            yield (i, j)


def _popcount(mask: int) -> int:
    """Number of set bits of a bitset row."""
    return mask.bit_count()


def _rank_mask(mask: int, rank: list[int]) -> int:
    """Scatter a mask's bits through a rank permutation (id space → rank space)."""
    result = 0
    while mask:
        low = mask & -mask
        result |= 1 << rank[low.bit_length() - 1]
        mask ^= low
    return result
