"""The lattice of all partitions of a finite set.

Two classical theorems the paper leans on live here:

* every lattice is isomorphic to a sublattice of the lattice of partitions of
  some set (Whitman [34 in the paper]) — used in Lemma 8.1a;
* every *finite* lattice embeds in the partition lattice of a *finite* set
  (Pudlák–Tůma [26]) — the non-trivial ingredient of Lemma 8.1b.

We do not reprove these; what the library provides is the finite partition
lattice itself (all partitions of an n-element set, Bell(n) many, with
product as meet and sum as join), which the tests use to check that partition
product/sum really are the lattice operations of the refinement order, and
that ``L(I)`` is always a sublattice of it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import LatticeError
from repro.lattice.core import FiniteLattice
from repro.partitions.kernel import Universe
from repro.partitions.partition import Element, Partition


def set_partitions(population: Sequence[Element]) -> Iterator[Partition]:
    """Generate every partition of ``population`` (Bell-number many).

    Uses the standard "restricted growth string" recursion: each element is
    either added to an existing block (label ``< used``) or starts a new one
    (label ``used``).  The growth strings *are* canonical first-occurrence
    label arrays, so each one is handed to the integer kernel directly over
    one shared :class:`~repro.partitions.kernel.Universe` — no list-of-blocks
    materialization, no ``Partition(...)`` revalidation, and every emitted
    partition shares the same universe object (O(n) flat comparisons between
    lattice elements).
    """
    universe = Universe(population)
    n = len(universe)
    if n == 0:
        yield Partition()
        return
    labels = [0] * n

    def recurse(index: int, used: int) -> Iterator[Partition]:
        if index == n:
            yield Partition.from_labels(universe, labels)
            return
        for label in range(used):
            labels[index] = label
            yield from recurse(index + 1, used)
        labels[index] = used
        yield from recurse(index + 1, used + 1)

    yield from recurse(0, 0)


def bell_number(n: int) -> int:
    """The number of partitions of an n-element set (for sanity checks and benchmarks)."""
    if n < 0:
        raise LatticeError("bell_number needs a non-negative argument")
    # Bell triangle.
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]


def partition_lattice(population: Iterable[Element], validate: bool = False) -> FiniteLattice:
    """The full partition lattice ``Π_n`` of a finite set, meet = product, join = sum.

    The population should be small (Bell(7) = 877, Bell(8) = 4140); the
    figures and tests use populations of size ≤ 5.  With the bitset kernel,
    ``validate=True`` re-checks the lattice axioms as O(n²) bitset-row
    comparisons — affordable up to Bell(6) or so, and used by the property
    tests to pin product/sum as genuine lattice operations.
    """
    items = list(population)
    elements = list(set_partitions(items))
    return FiniteLattice(
        elements,
        lambda x, y: x.product(y),
        lambda x, y: x.sum(y),
        validate=validate,
    )


def is_sublattice_of_partition_lattice(partitions: Iterable[Partition]) -> bool:
    """True iff the given set of partitions (of a common population) is closed under * and +."""
    pool = set(partitions)
    if not pool:
        return True
    populations = {p.population for p in pool}
    if len(populations) != 1:
        raise LatticeError("all partitions must share one population")
    for x in pool:
        for y in pool:
            if x.product(y) not in pool or x.sum(y) not in pool:
                return False
    return True
