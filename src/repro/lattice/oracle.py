"""The dict-table lattice subsystem preserved as a cross-check oracle.

PR 4 re-founded :mod:`repro.lattice.core` on a dense integer/bitset kernel
(interned element ids, big-int down-set/up-set rows, flat id→id meet/join
tables).  Following the PR 1–3 pattern, the previous implementation survives
here *verbatim* so the randomized equivalence suite
(``tests/test_lattice_kernel.py``) and the EXP-LAT benchmarks can prove the
kernel produces identical results:

* :class:`OracleFiniteLattice` — the seed's hashable-element dict-table
  lattice with its O(n²)–O(n³) scans;
* :func:`oracle_is_distributive` / :func:`oracle_is_modular` /
  :func:`oracle_is_homomorphism` — the elementwise triple-loop property
  checks;
* :func:`quotient_fragment_pairwise` — the O(|pool|·|classes|) pairwise
  ``engine.leq`` collapse that :func:`repro.lattice.quotient.quotient_fragment`
  replaced with a single group-by on congruence-class ids;
* :func:`finite_counterexample_oracle` — the ``L_H`` construction whose
  product-closure loop canonicalizes by linear scan over all elements.

Nothing here is exported at the package top level; the production paths all
live in :mod:`repro.lattice.core` and :mod:`repro.lattice.quotient`.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Callable, Optional

from repro.dependencies.pd import PartitionDependencyLike, as_partition_dependency
from repro.errors import LatticeError
from repro.expressions.ast import Attr, ExpressionLike, PartitionExpression, Product, Sum, as_expression, attr, sum_of
from repro.implication.alg import ImplicationEngine

LatticeElement = Hashable


class OracleFiniteLattice:
    """The seed's explicit finite lattice: dict operation tables, elementwise scans."""

    def __init__(
        self,
        elements: Iterable[LatticeElement],
        meet: Callable[[LatticeElement, LatticeElement], LatticeElement],
        join: Callable[[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> None:
        self._elements = list(dict.fromkeys(elements))
        if not self._elements:
            raise LatticeError("a lattice must be non-empty")
        element_set = set(self._elements)
        self._meet_table: dict[tuple[LatticeElement, LatticeElement], LatticeElement] = {}
        self._join_table: dict[tuple[LatticeElement, LatticeElement], LatticeElement] = {}
        for x in self._elements:
            for y in self._elements:
                m = meet(x, y)
                j = join(x, y)
                if m not in element_set or j not in element_set:
                    raise LatticeError(
                        f"meet/join of {x!r}, {y!r} escapes the element set"
                    )
                self._meet_table[(x, y)] = m
                self._join_table[(x, y)] = j
        self._constants = dict(constants or {})
        for name, element in self._constants.items():
            if element not in element_set:
                raise LatticeError(f"constant {name!r} names unknown element {element!r}")
        if validate:
            problems = self.axiom_violations()
            if problems:
                raise LatticeError(f"lattice axioms violated: {problems[:3]} ...")

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_tables(
        cls,
        elements: Iterable[LatticeElement],
        meet_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        join_table: Mapping[tuple[LatticeElement, LatticeElement], LatticeElement],
        constants: Optional[Mapping[str, LatticeElement]] = None,
        validate: bool = True,
    ) -> "OracleFiniteLattice":
        """Build from explicit operation tables (missing symmetric entries are filled in)."""

        def meet(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in meet_table:
                return meet_table[(x, y)]
            return meet_table[(y, x)]

        def join(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            if (x, y) in join_table:
                return join_table[(x, y)]
            return join_table[(y, x)]

        return cls(elements, meet, join, constants, validate)

    @classmethod
    def from_partial_order(
        cls,
        elements: Iterable[LatticeElement],
        leq: Callable[[LatticeElement, LatticeElement], bool],
        constants: Optional[Mapping[str, LatticeElement]] = None,
    ) -> "OracleFiniteLattice":
        """Build a lattice from a partial order, checking that meets and joins exist."""
        items = list(dict.fromkeys(elements))

        def glb(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            lower = [z for z in items if leq(z, x) and leq(z, y)]
            greatest = [z for z in lower if all(leq(w, z) for w in lower)]
            if len(greatest) != 1:
                raise LatticeError(f"elements {x!r}, {y!r} have no unique greatest lower bound")
            return greatest[0]

        def lub(x: LatticeElement, y: LatticeElement) -> LatticeElement:
            upper = [z for z in items if leq(x, z) and leq(y, z)]
            least = [z for z in upper if all(leq(z, w) for w in upper)]
            if len(least) != 1:
                raise LatticeError(f"elements {x!r}, {y!r} have no unique least upper bound")
            return least[0]

        return cls(items, glb, lub, constants)

    @classmethod
    def chain(cls, length: int) -> "OracleFiniteLattice":
        """The chain lattice 0 < 1 < ... < length-1 (handy in tests)."""
        if length <= 0:
            raise LatticeError("a chain needs at least one element")
        return cls(range(length), min, max)

    @classmethod
    def boolean(cls, generators: Iterable[str]) -> "OracleFiniteLattice":
        """The Boolean (powerset) lattice over a finite generator set, constants = atoms."""
        names = sorted(set(generators))
        elements = [
            frozenset(combo)
            for size in range(len(names) + 1)
            for combo in itertools.combinations(names, size)
        ]
        constants = {name: frozenset([name]) for name in names}
        return cls(
            elements,
            lambda x, y: x & y,
            lambda x, y: x | y,
            constants,
        )

    # -- basic structure ---------------------------------------------------------------
    @property
    def elements(self) -> list[LatticeElement]:
        """The elements (in construction order)."""
        return list(self._elements)

    @property
    def constants(self) -> dict[str, LatticeElement]:
        """The named constants (attribute name → element)."""
        return dict(self._constants)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in set(self._elements)

    def meet(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x * y``."""
        try:
            return self._meet_table[(x, y)]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def join(self, x: LatticeElement, y: LatticeElement) -> LatticeElement:
        """``x + y``."""
        try:
            return self._join_table[(x, y)]
        except KeyError as exc:
            raise LatticeError(f"{x!r} or {y!r} is not a lattice element") from exc

    def leq(self, x: LatticeElement, y: LatticeElement) -> bool:
        """The natural partial order: ``x ≤ y`` iff ``x = x * y``."""
        return self.meet(x, y) == x

    def top(self) -> LatticeElement:
        """The greatest element (join of everything)."""
        result = self._elements[0]
        for element in self._elements[1:]:
            result = self.join(result, element)
        return result

    def bottom(self) -> LatticeElement:
        """The least element (meet of everything)."""
        result = self._elements[0]
        for element in self._elements[1:]:
            result = self.meet(result, element)
        return result

    def covers(self) -> list[tuple[LatticeElement, LatticeElement]]:
        """The covering pairs (Hasse-diagram edges) ``x ⋖ y``."""
        result = []
        for x in self._elements:
            for y in self._elements:
                if x == y or not self.leq(x, y):
                    continue
                if any(
                    z not in (x, y) and self.leq(x, z) and self.leq(z, y)
                    for z in self._elements
                ):
                    continue
                result.append((x, y))
        return result

    # -- axioms ------------------------------------------------------------------------------
    def axiom_violations(self) -> list[str]:
        """Human-readable descriptions of lattice-axiom violations (empty iff a lattice)."""
        problems: list[str] = []
        elements = self._elements
        for x in elements:
            if self.meet(x, x) != x:
                problems.append(f"meet not idempotent at {x!r}")
            if self.join(x, x) != x:
                problems.append(f"join not idempotent at {x!r}")
        for x, y in itertools.product(elements, repeat=2):
            if self.meet(x, y) != self.meet(y, x):
                problems.append(f"meet not commutative at {x!r}, {y!r}")
            if self.join(x, y) != self.join(y, x):
                problems.append(f"join not commutative at {x!r}, {y!r}")
            if self.join(x, self.meet(x, y)) != x:
                problems.append(f"absorption x+(x*y) fails at {x!r}, {y!r}")
            if self.meet(x, self.join(x, y)) != x:
                problems.append(f"absorption x*(x+y) fails at {x!r}, {y!r}")
        for x, y, z in itertools.product(elements, repeat=3):
            if self.meet(self.meet(x, y), z) != self.meet(x, self.meet(y, z)):
                problems.append(f"meet not associative at {x!r}, {y!r}, {z!r}")
            if self.join(self.join(x, y), z) != self.join(x, self.join(y, z)):
                problems.append(f"join not associative at {x!r}, {y!r}, {z!r}")
        return problems

    # -- constants and expression evaluation -----------------------------------------------------
    def with_constants(self, constants: Mapping[str, LatticeElement]) -> "OracleFiniteLattice":
        """The same lattice with a different constant assignment."""
        return OracleFiniteLattice(
            self._elements,
            self.meet,
            self.join,
            constants,
            validate=False,
        )

    def constant(self, name: str) -> LatticeElement:
        """The element named by an attribute."""
        try:
            return self._constants[name]
        except KeyError as exc:
            raise LatticeError(f"no constant named {name!r} in this lattice") from exc

    def evaluate(self, expression: ExpressionLike) -> LatticeElement:
        """Evaluate a partition expression inside the lattice (attributes via constants)."""
        node = as_expression(expression)
        if isinstance(node, Attr):
            return self.constant(node.name)
        if isinstance(node, Product):
            return self.meet(self.evaluate(node.left), self.evaluate(node.right))
        if isinstance(node, Sum):
            return self.join(self.evaluate(node.left), self.evaluate(node.right))
        raise LatticeError(f"unknown expression node {node!r}")

    def satisfies(self, dependency) -> bool:
        """``L ⊨ e = e'``: the two sides evaluate to the same element (§2.2)."""
        pd = as_partition_dependency(dependency)
        return self.evaluate(pd.left) == self.evaluate(pd.right)

    def satisfies_all(self, dependencies: Iterable) -> bool:
        """Satisfaction of a set of equations."""
        return all(self.satisfies(pd) for pd in dependencies)

    # -- substructures -----------------------------------------------------------------------------
    def sublattice(self, elements: Iterable[LatticeElement]) -> "OracleFiniteLattice":
        """The sublattice generated by ``elements`` (closure under meet and join)."""
        current = set(elements)
        if not current:
            raise LatticeError("a sublattice needs at least one generator")
        unknown = current - set(self._elements)
        if unknown:
            raise LatticeError(f"not lattice elements: {unknown!r}")
        changed = True
        while changed:
            changed = False
            for x, y in itertools.combinations(sorted(current, key=repr), 2):
                for candidate in (self.meet(x, y), self.join(x, y)):
                    if candidate not in current:
                        current.add(candidate)
                        changed = True
        constants = {
            name: element for name, element in self._constants.items() if element in current
        }
        return OracleFiniteLattice(
            sorted(current, key=repr), self.meet, self.join, constants, validate=False
        )

    def __repr__(self) -> str:
        return (
            f"OracleFiniteLattice({len(self._elements)} elements, "
            f"constants={sorted(self._constants)})"
        )


# -- elementwise property checks (the seed's triple loops) ---------------------------


def oracle_find_distributivity_violation(lattice):
    """A triple witnessing non-distributivity by exhaustive elementwise scan."""
    for x, y, z in itertools.product(lattice.elements, repeat=3):
        left = lattice.meet(x, lattice.join(y, z))
        right = lattice.join(lattice.meet(x, y), lattice.meet(x, z))
        if left != right:
            return (x, y, z)
    return None


def oracle_is_distributive(lattice) -> bool:
    """Elementwise distributivity check (the seed implementation)."""
    return oracle_find_distributivity_violation(lattice) is None


def oracle_is_modular(lattice) -> bool:
    """Elementwise modularity check (the seed implementation)."""
    for x, y, z in itertools.product(lattice.elements, repeat=3):
        if lattice.leq(x, z):
            left = lattice.join(x, lattice.meet(y, z))
            right = lattice.meet(lattice.join(x, y), z)
            if left != right:
                return False
    return True


def oracle_is_homomorphism(source, target, mapping) -> bool:
    """Elementwise meet/join preservation check (the seed implementation)."""
    get = mapping.__getitem__ if isinstance(mapping, Mapping) else mapping
    for x, y in itertools.product(source.elements, repeat=2):
        if get(source.meet(x, y)) != target.meet(get(x), get(y)):
            return False
        if get(source.join(x, y)) != target.join(get(x), get(y)):
            return False
    return True


# -- the pairwise quotient pipeline (the seed's Theorem 8 hot path) ------------------


def quotient_fragment_pairwise(
    dependencies: Iterable[PartitionDependencyLike],
    pool: Sequence[PartitionExpression],
    engine: Optional[ImplicationEngine] = None,
):
    """Collapse ``pool`` into ``=_E`` classes by pairwise ``engine.leq`` scans.

    The seed implementation of :func:`repro.lattice.quotient.quotient_fragment`:
    every candidate is compared (two ``leq`` calls) against every
    representative found so far — O(|pool|·|classes|) engine queries where the
    class-driven production path issues one ``class_id`` per pool member.
    """
    from repro.lattice.quotient import QuotientFragment

    pds = tuple(as_partition_dependency(pd) for pd in dependencies)
    if engine is None:
        engine = ImplicationEngine(pds, query_expressions=pool)
    else:
        if set(engine.dependencies) != set(pds):
            raise LatticeError(
                "the shared engine must reason over exactly the PD set being quotiented"
            )
        engine.prepare(pool)
    representatives: list[PartitionExpression] = []
    for candidate in sorted(pool, key=lambda e: (e.size(), str(e))):
        if not any(
            engine.leq(candidate, seen) and engine.leq(seen, candidate)
            for seen in representatives
        ):
            representatives.append(candidate)
    order = frozenset(
        (i, j)
        for i, left in enumerate(representatives)
        for j, right in enumerate(representatives)
        if engine.leq(left, right)
    )
    return QuotientFragment(pds, tuple(representatives), order)


def finite_counterexample_oracle(
    dependencies: Iterable[PartitionDependencyLike],
    query: PartitionDependencyLike,
    max_pool: int = 4000,
) -> Optional[OracleFiniteLattice]:
    """The seed ``L_H`` construction: pairwise collapse + linear-scan canonicalization.

    Returns an :class:`OracleFiniteLattice`; the equivalence suite checks it
    is isomorphic to the kernel's ``L_H`` and reaches the same verdicts.
    """
    from repro.lattice.quotient import theorem8_pool

    pds = [as_partition_dependency(pd) for pd in dependencies]
    target = as_partition_dependency(query)
    engine = ImplicationEngine(pds)
    if engine.implies(target):
        return None

    pool = theorem8_pool(pds, target, max_pool=max_pool)
    attributes = sorted({a for e in pool for a in e.attributes()})
    top_expression = sum_of([attr(a) for a in attributes])

    fragment = quotient_fragment_pairwise(pds, pool, engine=engine)
    class_representatives = list(fragment.representatives)

    elements: list[PartitionExpression] = list(class_representatives)
    engine.prepare([top_expression])

    def same_class(a: PartitionExpression, b: PartitionExpression) -> bool:
        return engine.leq(a, b) and engine.leq(b, a)

    def canonical(expression: PartitionExpression) -> PartitionExpression:
        for existing in elements:
            if same_class(existing, expression):
                return existing
        elements.append(expression)
        return expression

    changed = True
    while changed:
        changed = False
        snapshot = list(elements)
        for left, right in itertools.combinations(snapshot, 2):
            product = Product(left, right)
            before = len(elements)
            canonical(product)
            if len(elements) != before:
                changed = True
    canonical(top_expression)

    constants = {}
    for attribute in attributes:
        constants[attribute] = canonical(attr(attribute))

    def leq(x: PartitionExpression, y: PartitionExpression) -> bool:
        return engine.leq(x, y)

    return OracleFiniteLattice.from_partial_order(elements, leq, constants=constants)
