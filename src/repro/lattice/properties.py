"""Structural properties of finite lattices: distributivity, modularity, morphisms.

Figure 1 of the paper exhibits an interpretation whose lattice ``L(I)`` is
*not* distributive (``B * (A + C) ≠ (B*A) + (B*C)``); Figure 2 rests on an
*isomorphism* between two interpretation lattices.  This module provides the
corresponding checks, plus homomorphism verification (used in the proof of
Theorem 7, where ``L(I) → L(J)`` is a surjective homomorphism) and a
brute-force isomorphism finder adequate for the small lattices in the paper's
constructions.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping
from typing import Optional

from repro.lattice.core import FiniteLattice, LatticeElement


def is_distributive(lattice: FiniteLattice) -> bool:
    """True iff ``x * (y + z) = (x*y) + (x*z)`` for all triples (equivalently the dual law)."""
    return find_distributivity_violation(lattice) is None


def find_distributivity_violation(
    lattice: FiniteLattice,
) -> Optional[tuple[LatticeElement, LatticeElement, LatticeElement]]:
    """A triple witnessing non-distributivity, or ``None`` if the lattice is distributive."""
    for x, y, z in itertools.product(lattice.elements, repeat=3):
        left = lattice.meet(x, lattice.join(y, z))
        right = lattice.join(lattice.meet(x, y), lattice.meet(x, z))
        if left != right:
            return (x, y, z)
    return None


def is_modular(lattice: FiniteLattice) -> bool:
    """True iff ``x ≤ z`` implies ``x + (y * z) = (x + y) * z`` for all triples."""
    for x, y, z in itertools.product(lattice.elements, repeat=3):
        if lattice.leq(x, z):
            left = lattice.join(x, lattice.meet(y, z))
            right = lattice.meet(lattice.join(x, y), z)
            if left != right:
                return False
    return True


def is_homomorphism(
    source: FiniteLattice,
    target: FiniteLattice,
    mapping: Mapping[LatticeElement, LatticeElement] | Callable[[LatticeElement], LatticeElement],
) -> bool:
    """True iff ``mapping`` preserves meets and joins from ``source`` into ``target``."""
    get = mapping.__getitem__ if isinstance(mapping, Mapping) else mapping
    for x, y in itertools.product(source.elements, repeat=2):
        if get(source.meet(x, y)) != target.meet(get(x), get(y)):
            return False
        if get(source.join(x, y)) != target.join(get(x), get(y)):
            return False
    return True


def find_isomorphism(
    first: FiniteLattice, second: FiniteLattice
) -> Optional[dict[LatticeElement, LatticeElement]]:
    """A lattice isomorphism between the two lattices, or ``None``.

    Brute force over bijections, pruned by matching the "profile" of each
    element (number of elements below/above it).  Intended for the ≤ ~20
    element lattices of the paper's figures; Theorem 5's Figure 2 pair has 8
    elements each.
    """
    if len(first) != len(second):
        return None

    def profile(lattice: FiniteLattice, element: LatticeElement) -> tuple[int, int]:
        below = sum(1 for other in lattice.elements if lattice.leq(other, element))
        above = sum(1 for other in lattice.elements if lattice.leq(element, other))
        return (below, above)

    first_profiles = {element: profile(first, element) for element in first.elements}
    second_by_profile: dict[tuple[int, int], list[LatticeElement]] = {}
    for element in second.elements:
        second_by_profile.setdefault(profile(second, element), []).append(element)

    # Group the source elements by profile; candidates must share the profile.
    source_elements = sorted(
        first.elements, key=lambda e: (len(second_by_profile.get(first_profiles[e], [])), repr(e))
    )

    assignment: dict[LatticeElement, LatticeElement] = {}
    used: set[LatticeElement] = set()

    def consistent(element: LatticeElement, image: LatticeElement) -> bool:
        for other, other_image in assignment.items():
            if first.leq(element, other) != second.leq(image, other_image):
                return False
            if first.leq(other, element) != second.leq(other_image, image):
                return False
            if assignment.get(first.meet(element, other)) is not None:
                if assignment[first.meet(element, other)] != second.meet(image, other_image):
                    return False
            if assignment.get(first.join(element, other)) is not None:
                if assignment[first.join(element, other)] != second.join(image, other_image):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(source_elements):
            return is_homomorphism(first, second, assignment) and len(set(assignment.values())) == len(
                assignment
            )
        element = source_elements[index]
        for image in second_by_profile.get(first_profiles[element], []):
            if image in used or not consistent(element, image):
                continue
            assignment[element] = image
            used.add(image)
            if backtrack(index + 1):
                return True
            del assignment[element]
            used.discard(image)
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def are_isomorphic(first: FiniteLattice, second: FiniteLattice) -> bool:
    """True iff the two lattices are isomorphic (ignoring constants)."""
    return find_isomorphism(first, second) is not None
