"""Structural properties of finite lattices: distributivity, modularity, morphisms.

Figure 1 of the paper exhibits an interpretation whose lattice ``L(I)`` is
*not* distributive (``B * (A + C) ≠ (B*A) + (B*C)``); Figure 2 rests on an
*isomorphism* between two interpretation lattices.  This module provides the
corresponding checks, plus homomorphism verification (used in the proof of
Theorem 7, where ``L(I) → L(J)`` is a surjective homomorphism) and an
invariant-pruned isomorphism finder adequate for the small lattices in the
paper's constructions.

All checks run on the id-level kernel of
:class:`~repro.lattice.core.FiniteLattice`: the triple loops index flat
id → id tables (machine ints, no element hashing) and the order tests are
bitset-row operations, so the same sweep that took O(n³) dict lookups on the
seed representation is now table gathers.  Any other object with the
``elements``/``meet``/``join`` duck surface (notably
:class:`repro.lattice.oracle.OracleFiniteLattice`) is adapted by probing its
operations once into the same table form; the elementwise originals survive
in :mod:`repro.lattice.oracle` as cross-check oracles.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Optional

from repro.errors import LatticeError
from repro.lattice.core import FiniteLattice, LatticeElement, iter_cover_ids


class _Tables:
    """Id-level view of a lattice: elements, flat meet/join tables, order bitsets."""

    __slots__ = ("elements", "meet", "join", "up", "down")

    def __init__(self, elements, meet, join, up, down) -> None:
        self.elements = elements
        self.meet = meet
        self.join = join
        self.up = up
        self.down = down


def _tables(lattice) -> _Tables:
    """The id-level kernel of a lattice (borrowed from :class:`FiniteLattice`, probed otherwise)."""
    if isinstance(lattice, FiniteLattice):
        return _Tables(
            lattice.elements, lattice.meet_ids, lattice.join_ids, lattice.up_masks, lattice.down_masks
        )
    elements = list(lattice.elements)
    index = {element: i for i, element in enumerate(elements)}
    meet = [[index[lattice.meet(x, y)] for y in elements] for x in elements]
    join = [[index[lattice.join(x, y)] for y in elements] for x in elements]
    n = len(elements)
    up = [0] * n
    down = [0] * n
    for i in range(n):
        row = meet[i]
        for j in range(n):
            if row[j] == i:
                up[i] |= 1 << j
                down[j] |= 1 << i
    return _Tables(elements, meet, join, up, down)


def is_distributive(lattice) -> bool:
    """True iff ``x * (y + z) = (x*y) + (x*z)`` for all triples (equivalently the dual law)."""
    return find_distributivity_violation(lattice) is None


def find_distributivity_violation(
    lattice,
) -> Optional[tuple[LatticeElement, LatticeElement, LatticeElement]]:
    """A triple witnessing non-distributivity, or ``None`` if the lattice is distributive."""
    tables = _tables(lattice)
    meet = tables.meet
    join = tables.join
    n = len(tables.elements)
    for x in range(n):
        meet_x = meet[x]
        for y in range(n):
            join_y = join[y]
            meet_xy = meet_x[y]
            join_of_meet_xy = join[meet_xy]
            for z in range(n):
                if meet_x[join_y[z]] != join_of_meet_xy[meet_x[z]]:
                    return (tables.elements[x], tables.elements[y], tables.elements[z])
    return None


def is_modular(lattice) -> bool:
    """True iff ``x ≤ z`` implies ``x + (y * z) = (x + y) * z`` for all triples.

    The outer loop ranges only over comparable pairs ``x ≤ z`` — read off the
    up-set bitset rows — instead of filtering all n² pairs.
    """
    tables = _tables(lattice)
    meet = tables.meet
    join = tables.join
    n = len(tables.elements)
    for x in range(n):
        join_x = join[x]
        remaining = tables.up[x]
        while remaining:
            low = remaining & -remaining
            z = low.bit_length() - 1
            remaining ^= low
            meet_z_column = meet[z]
            for y in range(n):
                if join_x[meet_z_column[y]] != meet[join_x[y]][z]:
                    return False
    return True


def is_homomorphism(
    source,
    target,
    mapping: Mapping[LatticeElement, LatticeElement] | Callable[[LatticeElement], LatticeElement],
) -> bool:
    """True iff ``mapping`` preserves meets and joins from ``source`` into ``target``."""
    get = mapping.__getitem__ if isinstance(mapping, Mapping) else mapping
    source_tables = _tables(source)
    target_tables = _tables(target)
    target_index = {element: i for i, element in enumerate(target_tables.elements)}
    n = len(source_tables.elements)
    image: list[int] = []
    for element in source_tables.elements:
        value = get(element)  # a Mapping without the key raises KeyError, as the seed did
        target_id = target_index.get(value)
        if target_id is None:
            raise LatticeError(f"{value!r} is not an element of the target lattice")
        image.append(target_id)
    meet_s = source_tables.meet
    join_s = source_tables.join
    meet_t = target_tables.meet
    join_t = target_tables.join
    for x in range(n):
        image_x = image[x]
        meet_row = meet_s[x]
        join_row = join_s[x]
        meet_t_row = meet_t[image_x]
        join_t_row = join_t[image_x]
        for y in range(n):
            if image[meet_row[y]] != meet_t_row[image[y]]:
                return False
            if image[join_row[y]] != join_t_row[image[y]]:
                return False
    return True


def _profiles(tables: _Tables) -> list[tuple[int, int, int, int]]:
    """Per-id isomorphism invariants: |down-set|, |up-set|, lower covers, upper covers."""
    n = len(tables.elements)
    up = tables.up
    down = tables.down
    lower_covers = [0] * n
    upper_covers = [0] * n
    for i, j in iter_cover_ids(up, down):
        upper_covers[i] += 1
        lower_covers[j] += 1
    return [
        (down[i].bit_count(), up[i].bit_count(), lower_covers[i], upper_covers[i])
        for i in range(n)
    ]


def find_isomorphism(
    first, second
) -> Optional[dict[LatticeElement, LatticeElement]]:
    """A lattice isomorphism between the two lattices, or ``None``.

    Backtracking over id assignments, pruned by matching each element's
    order "profile" — (|down-set|, |up-set|, lower covers, upper covers),
    all read off the bitset rows — and by checking order- and
    meet/join-compatibility against the partial assignment.  Intended for
    the ≤ ~20 element lattices of the paper's figures; Theorem 5's Figure 2
    pair has 8 elements each.
    """
    if len(first.elements) != len(second.elements):
        return None
    first_tables = _tables(first)
    second_tables = _tables(second)
    n = len(first_tables.elements)

    first_profiles = _profiles(first_tables)
    second_profiles = _profiles(second_tables)
    second_by_profile: dict[tuple[int, int, int, int], list[int]] = {}
    for j in range(n):
        second_by_profile.setdefault(second_profiles[j], []).append(j)

    # Group the source ids by profile; candidates must share the profile.
    source_ids = sorted(
        range(n),
        key=lambda i: (
            len(second_by_profile.get(first_profiles[i], [])),
            repr(first_tables.elements[i]),
        ),
    )

    up_f = first_tables.up
    up_s = second_tables.up
    meet_f = first_tables.meet
    join_f = first_tables.join
    meet_s = second_tables.meet
    join_s = second_tables.join

    assignment: dict[int, int] = {}
    used = 0

    def consistent(i: int, image: int) -> bool:
        for other, other_image in assignment.items():
            if (up_f[i] >> other) & 1 != (up_s[image] >> other_image) & 1:
                return False
            if (up_f[other] >> i) & 1 != (up_s[other_image] >> image) & 1:
                return False
            meet_image = assignment.get(meet_f[i][other])
            if meet_image is not None and meet_image != meet_s[image][other_image]:
                return False
            join_image = assignment.get(join_f[i][other])
            if join_image is not None and join_image != join_s[image][other_image]:
                return False
        return True

    def backtrack(position: int) -> bool:
        nonlocal used
        if position == n:
            return all(
                assignment[meet_f[x][y]] == meet_s[assignment[x]][assignment[y]]
                and assignment[join_f[x][y]] == join_s[assignment[x]][assignment[y]]
                for x in range(n)
                for y in range(n)
            )
        i = source_ids[position]
        for image in second_by_profile.get(first_profiles[i], []):
            if (used >> image) & 1 or not consistent(i, image):
                continue
            assignment[i] = image
            used |= 1 << image
            if backtrack(position + 1):
                return True
            del assignment[i]
            used &= ~(1 << image)
        return False

    if backtrack(0):
        return {
            first_tables.elements[i]: second_tables.elements[image]
            for i, image in assignment.items()
        }
    return None


def are_isomorphic(first, second) -> bool:
    """True iff the two lattices are isomorphic (ignoring constants)."""
    return find_isomorphism(first, second) is not None
