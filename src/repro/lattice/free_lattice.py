"""The free lattice on a finite generator set, approximated by bounded terms (§5.1).

The free lattice ``FL(U)`` has as elements the ``=_id`` equivalence classes
of partition expressions over ``U`` (Lemma 8.2: ``L_id`` is a lattice, and
``p = q`` is a lattice identity iff ``p =_id q``).  For ``|U| ≥ 3`` the free
lattice is infinite, so this module materializes *bounded* fragments: all
equivalence classes representable by expressions of complexity at most ``k``.

The fragment is not itself a lattice in general (meets/joins may need larger
terms), but it is exactly what the identity-recognition benchmark (EXP-T10)
and several property tests need: a supply of pairwise ``=_id``-inequivalent
expressions together with the ``≤_id`` order between them.

Every comparison routes through :func:`repro.implication.identities.identically_leq`,
whose Whitman recursion is memoized in a global weak table keyed on interned
node pairs — the pairwise scans of :func:`free_lattice_fragment` and
:meth:`FreeLatticeFragment.class_of` probe heavily overlapping subterm pairs,
so everything after the first scan is warm.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.expressions.ast import Attr, PartitionExpression, Product, Sum
from repro.implication.identities import identically_equal, identically_leq


def bounded_expressions(
    generators: Sequence[str], max_complexity: int
) -> list[PartitionExpression]:
    """All partition expressions over ``generators`` with at most ``max_complexity`` operators.

    Exhaustive and exponential — intended for the small bounds (≤ 3) used in
    tests and benchmarks.
    """
    by_complexity: dict[int, list[PartitionExpression]] = {0: [Attr(g) for g in generators]}
    for complexity in range(1, max_complexity + 1):
        level: list[PartitionExpression] = []
        for left_complexity in range(0, complexity):
            right_complexity = complexity - 1 - left_complexity
            for left in by_complexity[left_complexity]:
                for right in by_complexity[right_complexity]:
                    level.append(Product(left, right))
                    level.append(Sum(left, right))
        by_complexity[complexity] = level
    result: list[PartitionExpression] = []
    for complexity in range(0, max_complexity + 1):
        result.extend(by_complexity[complexity])
    return result


@dataclass(frozen=True)
class FreeLatticeFragment:
    """A bounded fragment of the free lattice: canonical representatives + the ``≤_id`` order."""

    generators: tuple[str, ...]
    max_complexity: int
    representatives: tuple[PartitionExpression, ...]

    def leq(self, left: PartitionExpression, right: PartitionExpression) -> bool:
        """The free-lattice order between two expressions."""
        return identically_leq(left, right)

    def equivalent(self, left: PartitionExpression, right: PartitionExpression) -> bool:
        """Equality in the free lattice."""
        return identically_equal(left, right)

    def class_of(self, expression: PartitionExpression) -> PartitionExpression:
        """The stored representative ``=_id``-equivalent to ``expression`` (or the expression itself)."""
        for representative in self.representatives:
            if identically_equal(representative, expression):
                return representative
        return expression

    def __len__(self) -> int:
        return len(self.representatives)


def free_lattice_fragment(generators: Sequence[str], max_complexity: int = 2) -> FreeLatticeFragment:
    """Canonical representatives of the ``=_id`` classes of bounded expressions.

    Representatives are chosen smallest-first (by AST size, then string), so
    an attribute represents its own class, ``A·B`` represents the class of
    ``B·A``, ``A·A·B``, etc.
    """
    representatives: list[PartitionExpression] = []
    candidates = sorted(
        bounded_expressions(generators, max_complexity), key=lambda e: (e.size(), str(e))
    )
    for candidate in candidates:
        if not any(identically_equal(candidate, seen) for seen in representatives):
            representatives.append(candidate)
    return FreeLatticeFragment(tuple(generators), max_complexity, tuple(representatives))


def free_lattice_size_on_two_generators() -> int:
    """The free lattice on two generators has exactly four elements: A, B, A·B, A+B.

    A classical fact (Whitman); returned as a constant and verified by the
    test suite against :func:`free_lattice_fragment`.
    """
    return 4


def whitman_condition_holds(
    left: PartitionExpression, right: PartitionExpression
) -> bool:
    """Whitman's (W) condition instance check for ``p·q ≤ r+s`` shapes.

    For expressions of the shape ``p·q`` and ``r+s``, returns True iff the
    inequality already follows from one of the four "component" inequalities
    ``p ≤ r+s``, ``q ≤ r+s``, ``p·q ≤ r``, ``p·q ≤ s`` — this is the defining
    property of free lattices and the content of ID rule case 6.  For other
    shapes the function simply reports whether ``left ≤_id right``.
    """
    if isinstance(left, Product) and isinstance(right, Sum):
        return (
            identically_leq(left.left, right)
            or identically_leq(left.right, right)
            or identically_leq(left, right.left)
            or identically_leq(left, right.right)
        )
    return identically_leq(left, right)
