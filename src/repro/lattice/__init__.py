"""Lattice substrate: finite lattices, partition lattices, L(I), free and quotient lattices (§2.2, §5.1).

The production path runs on the integer/bitset kernel of
:mod:`repro.lattice.core` and the class-driven quotient pipeline of
:mod:`repro.lattice.quotient`; the seed's dict-table implementations are
preserved unexported in :mod:`repro.lattice.oracle` as cross-check oracles.
"""

from repro.lattice.core import FiniteLattice, LatticeElement
from repro.lattice.free_lattice import (
    FreeLatticeFragment,
    bounded_expressions,
    free_lattice_fragment,
    free_lattice_size_on_two_generators,
    whitman_condition_holds,
)
from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.lattice.partition_lattice import (
    bell_number,
    is_sublattice_of_partition_lattice,
    partition_lattice,
    set_partitions,
)
from repro.lattice.properties import (
    are_isomorphic,
    find_distributivity_violation,
    find_isomorphism,
    is_distributive,
    is_homomorphism,
    is_modular,
)
from repro.lattice.quotient import (
    QuotientFragment,
    finite_counterexample,
    quotient_fragment,
    theorem8_pool,
)

__all__ = [
    "FiniteLattice",
    "LatticeElement",
    "is_distributive",
    "find_distributivity_violation",
    "is_modular",
    "is_homomorphism",
    "find_isomorphism",
    "are_isomorphic",
    "set_partitions",
    "bell_number",
    "partition_lattice",
    "is_sublattice_of_partition_lattice",
    "InterpretationLattice",
    "bounded_expressions",
    "FreeLatticeFragment",
    "free_lattice_fragment",
    "free_lattice_size_on_two_generators",
    "whitman_condition_holds",
    "QuotientFragment",
    "quotient_fragment",
    "theorem8_pool",
    "finite_counterexample",
]
