"""Figure 3 of the paper: the NOT-ALL-EQUAL-3SAT reduction instance for n = 4 (§6.1).

The figure shows the relations ``R0[A A1 A2 A3 A4]`` and
``R1[A A4 B1 B2 B3 B4]`` produced by the Theorem 11 reduction for the clause
``c1 = x1 ∨ x2 ∨ ¬x3`` over four variables, together with the padded
relation ``R`` over the full universe and the FD set
``E_F = {Bi → Ai (i = 1..4), B1B2B3 → A}``.

Two instances are materialized:

* :attr:`Figure3.raw_instance` — the literal figure layout (no
  preprocessing), used for the structural checks.  Note that this layout is
  *not* CAD-consistent on its own: with a single clause each ``Bi`` column
  holds a single symbol, so the two padded ``R0`` tuples cannot take distinct
  ``Bi`` values as the FD ``Bi → Ai`` requires.  The proof of Theorem 11
  implicitly assumes every variable occurs with both polarities in φ (its key
  step concludes ``{t1[Bi], t2[Bi]} = {a_i, b_i}``); the figure illustrates
  the gadget for one clause of a larger formula rather than a complete
  reduction instance.
* :attr:`Figure3.corrected_instance` — the library's full reduction of the
  same clause (with the polarity-normalization preprocessing documented in
  :mod:`repro.consistency.reduction`), whose consistency verdict provably
  agrees with the NAE-3SAT oracle.

The symbol names differ from the figure's (``pos1/neg1`` instead of
``a1/b1``, ``y1_4`` instead of ``y4``, …) but the structure — schemes, tuple
counts, which cells share symbols, and the dependency set — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consistency.cad import CadConsistencyResult, cad_consistency
from repro.consistency.reduction import ReductionInstance, reduce_nae3sat_to_cad_consistency
from repro.sat.formulas import Clause, CnfFormula, Literal
from repro.sat.nae3sat import nae_brute_force


@dataclass(frozen=True)
class Figure3:
    """The reduction instance drawn in Figure 3 (n = 4, clause x1 ∨ x2 ∨ ¬x3)."""

    formula: CnfFormula
    raw_instance: ReductionInstance
    corrected_instance: ReductionInstance

    def solve_raw(self, max_nodes: Optional[int] = None) -> CadConsistencyResult:
        """Run the exact CAD+EAP solver on the literal figure layout."""
        return cad_consistency(
            self.raw_instance.database, list(self.raw_instance.fds), max_nodes=max_nodes
        )

    def solve_corrected(self, max_nodes: Optional[int] = None) -> CadConsistencyResult:
        """Run the exact CAD+EAP solver on the full (preprocessed) reduction."""
        return cad_consistency(
            self.corrected_instance.database,
            list(self.corrected_instance.fds),
            max_nodes=max_nodes,
        )

    def oracle_satisfiable(self) -> bool:
        """NAE-satisfiability of the clause according to the brute-force oracle."""
        return nae_brute_force(self.formula) is not None

    def checks(self) -> dict[str, bool]:
        """Structural claims on the raw layout + behavioural agreement of the corrected reduction."""
        database = self.raw_instance.database
        r0 = database.relation("R0")
        r1 = database.relation("R1")
        corrected = self.solve_corrected()
        return {
            "R0 is over A A1..A4 with two tuples": (
                set(r0.attributes) == {"A", "A1", "A2", "A3", "A4"} and len(r0) == 2
            ),
            "R1 omits A1 A2 A3 and has one tuple": (
                {"A1", "A2", "A3"}.isdisjoint(set(r1.attributes)) and len(r1) == 1
            ),
            "E_F = {Bi -> Ai, i=1..4} + clause FD": len(self.raw_instance.fds) == 5,
            "clause FD is B1B2B3 -> A": any(
                set(fd.lhs) == {"B1", "B2", "B3"} and set(fd.rhs) == {"A"}
                for fd in self.raw_instance.fds
            ),
            "clause is NAE-satisfiable (oracle)": self.oracle_satisfiable(),
            "corrected reduction agrees with the oracle": (
                corrected.consistent == self.oracle_satisfiable()
            ),
        }


def build() -> Figure3:
    """Construct the Figure 3 instance: four variables, the single clause x1 ∨ x2 ∨ ¬x3."""
    formula = CnfFormula.of([["x1", "x2", "~x3"]])
    # Figure 3 is drawn over four variables; force x4 into the universe through
    # a tautologically NAE-satisfied clause that the gadget construction skips
    # (x4 ∨ ¬x4 ∨ x1) — the variable then gets its A4/B4 columns without
    # contributing a gadget, which is exactly the figure's layout.
    padding = Clause((Literal("x4", True), Literal("x4", False), Literal("x1", True)))
    padded = CnfFormula(formula.clauses + (padding,))
    raw_instance = reduce_nae3sat_to_cad_consistency(padded, preprocess=False)
    corrected_instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=True)
    return Figure3(formula, raw_instance, corrected_instance)


def report() -> str:
    """A textual rendition of Figure 3 with the consistency verdicts."""
    figure = build()
    lines = [
        "Figure 3 — the Theorem 11 reduction for clause c1 = x1 v x2 v ~x3, n = 4",
        "",
    ]
    for relation in figure.raw_instance.database.relations:
        lines.append(str(relation))
        lines.append("")
    lines.append("E_F:")
    for fd in figure.raw_instance.fds:
        lines.append(f"  {fd}")
    lines.append("")
    corrected = figure.solve_corrected()
    lines.append(f"NAE-3SAT oracle verdict:                 {figure.oracle_satisfiable()}")
    lines.append(
        f"full reduction CAD-consistency verdict:  {corrected.consistent} "
        f"(search nodes: {corrected.search_nodes})"
    )
    for claim, value in figure.checks().items():
        lines.append(f"  [{'ok' if value else 'FAIL'}] {claim}")
    return "\n".join(lines)
