"""Figure 1 of the paper: a worked partition interpretation (§3.2).

The figure exhibits, over attributes ``A, B, C`` with common population
``{1, 2, 3, 4}``:

* the atomic partitions
  ``π_A = {{1}, {4}, {2,3}}``, ``π_B = {{1,4}, {2,3}}``, ``π_C = {{1,2}, {3,4}}``;
* the naming functions
  ``f_A: a↦{1}, a1↦{4}, a2↦{2,3}``, ``f_B: b↦{1,4}, b1↦{2,3}``,
  ``f_C: c↦{1,2}, c1↦{3,4}`` (every other symbol ↦ ∅);
* a database ``d`` with the single relation ``R[ABC]`` holding the tuples
  ``a.b.c``, ``a2.b1.c``, ``a2.b1.c1``, ``a1.b.c1``;
* the FPD ``A = A·B`` as (part of) the constraint set ``E``;
* the observations that the interpretation satisfies ``d``, ``E``, CAD and
  EAP, and that the generated lattice ``L(I)`` is **not distributive**, the
  witness being ``B·(A+C) ≠ (B·A) + (B·C)``.

The constraint column of the printed figure also shows a second, partly
illegible item in the source text we reproduce from; only the verifiable
constraint ``A = A·B`` is included here (see EXPERIMENTS.md, entry FIG1).

:func:`build` returns all of these as one :class:`Figure1` value;
:func:`report` renders the same checks the caption makes, as text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependencies.pd import PartitionDependency
from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.partitions.assumptions import satisfies_cad, satisfies_eap
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.database import Database
from repro.relational.relations import Relation


@dataclass(frozen=True)
class Figure1:
    """The objects drawn in Figure 1."""

    interpretation: PartitionInterpretation
    database: Database
    dependencies: tuple[PartitionDependency, ...]
    lattice: InterpretationLattice
    non_distributivity_witness: PartitionDependency

    def checks(self) -> dict[str, bool]:
        """The claims the figure makes, each evaluated on the constructed objects."""
        relation = self.database.relations[0]
        return {
            "interpretation satisfies d": self.interpretation.satisfies_database(self.database),
            "interpretation satisfies E": self.interpretation.satisfies_all_pds(self.dependencies),
            "interpretation satisfies CAD": satisfies_cad(self.interpretation, self.database),
            "interpretation satisfies EAP": satisfies_eap(self.interpretation),
            "L(I) is NOT distributive": not self.lattice.is_distributive(),
            "B*(A+C) != (B*A)+(B*C) in L(I)": not self.lattice.satisfies(
                self.non_distributivity_witness
            ),
            "relation r satisfies E (Definition 7)": all(
                relation.satisfies_pd(pd) for pd in self.dependencies
            ),
        }


def build() -> Figure1:
    """Construct the Figure 1 interpretation, database, constraints and lattice."""
    interpretation = PartitionInterpretation.from_named_blocks(
        {
            "A": {"a": {1}, "a1": {4}, "a2": {2, 3}},
            "B": {"b": {1, 4}, "b1": {2, 3}},
            "C": {"c": {1, 2}, "c1": {3, 4}},
        }
    )
    relation = Relation.from_strings("R", "ABC", ["a.b.c", "a2.b1.c", "a2.b1.c1", "a1.b.c1"])
    database = Database.single(relation)
    dependencies = (PartitionDependency.parse("A = A*B"),)
    lattice = InterpretationLattice.from_interpretation(interpretation)
    witness = PartitionDependency.parse("B*(A+C) = (B*A)+(B*C)")
    return Figure1(interpretation, database, dependencies, lattice, witness)


def report() -> str:
    """A textual rendition of Figure 1's claims with their evaluated truth values."""
    figure = build()
    lines = ["Figure 1 — partition interpretation over A, B, C with population {1,2,3,4}", ""]
    lines.append(str(figure.database.relations[0]))
    lines.append("")
    lines.append(str(figure.interpretation))
    lines.append("")
    lines.append(f"E = {{ {', '.join(str(pd) for pd in figure.dependencies)} }}")
    lines.append(
        f"|L(I)| = {len(figure.lattice)}, Hasse edges = {len(figure.lattice.covers())}, "
        f"modular: {figure.lattice.is_modular()}"
    )
    lines.append("")
    for claim, value in figure.checks().items():
        lines.append(f"  [{'ok' if value else 'FAIL'}] {claim}")
    return "\n".join(lines)
