"""Figure 2 of the paper: MVDs are not expressible by PDs (Theorem 5, §4.2).

The figure exhibits two relations over ``ABC``:

* ``r1`` = {a.b1.c1, a.b1.c2, a.b2.c1, a.b2.c2} — satisfies the MVD
  ``A ↠ B``;
* ``r2`` = {a.b1.c1, a.b2.c2, a.b1.c2} — violates it;

and shows their canonical-interpretation lattices ``L(I(r1))`` and
``L(I(r2))`` are *isomorphic*.  Since PD satisfaction only depends on the
lattice (Theorem 1), no set of PDs can separate ``r1`` from ``r2`` — so no
set of PDs expresses the MVD.

:func:`build` constructs both relations, their lattices, and an explicit
isomorphism; :func:`report` prints the Theorem 5 argument with every step
evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.lattice.properties import find_isomorphism
from repro.relational.multivalued_dependencies import MultivaluedDependency, theorem5_mvd
from repro.relational.relations import Relation


@dataclass(frozen=True)
class Figure2:
    """The objects drawn in Figure 2."""

    r1: Relation
    r2: Relation
    mvd: MultivaluedDependency
    lattice1: InterpretationLattice
    lattice2: InterpretationLattice

    @cached_property
    def _isomorphism(self) -> Optional[dict]:
        return find_isomorphism(self.lattice1.lattice, self.lattice2.lattice)

    def isomorphism(self) -> Optional[dict]:
        """An explicit lattice isomorphism ``L(I(r1)) → L(I(r2))`` (exists per Theorem 5).

        The backtracking search runs once per figure; ``checks()`` and
        ``report()`` both read the cached mapping.
        """
        return self._isomorphism

    def checks(self) -> dict[str, bool]:
        """The claims of Theorem 5 / Figure 2, evaluated."""
        return {
            "r1 satisfies the MVD A ->> B": self.mvd.is_satisfied_by(self.r1),
            "r2 violates the MVD A ->> B": not self.mvd.is_satisfied_by(self.r2),
            "L(I(r1)) and L(I(r2)) are isomorphic": self.isomorphism() is not None,
            "lattices have equal size": len(self.lattice1) == len(self.lattice2),
        }


def build() -> Figure2:
    """Construct the two relations of Figure 2 and their interpretation lattices."""
    r1 = Relation.from_strings("r1", "ABC", ["a.b1.c1", "a.b1.c2", "a.b2.c1", "a.b2.c2"])
    r2 = Relation.from_strings("r2", "ABC", ["a.b1.c1", "a.b2.c2", "a.b1.c2"])
    return Figure2(
        r1=r1,
        r2=r2,
        mvd=theorem5_mvd(),
        lattice1=InterpretationLattice.from_relation(r1),
        lattice2=InterpretationLattice.from_relation(r2),
    )


def report() -> str:
    """A textual rendition of the Theorem 5 argument on the Figure 2 data."""
    figure = build()
    lines = ["Figure 2 — the simplest MVD is not expressible by PDs (Theorem 5)", ""]
    lines.append(str(figure.r1))
    lines.append("")
    lines.append(str(figure.r2))
    lines.append("")
    lines.append(f"|L(I(r1))| = {len(figure.lattice1)}, |L(I(r2))| = {len(figure.lattice2)}")
    mapping = figure.isomorphism()
    lines.append(
        "explicit isomorphism found by the invariant-pruned search: "
        f"{'yes, ' + str(len(mapping)) + ' elements mapped' if mapping else 'no'}"
    )
    for claim, value in figure.checks().items():
        lines.append(f"  [{'ok' if value else 'FAIL'}] {claim}")
    lines.append("")
    lines.append(
        "Since PD satisfaction depends only on the interpretation lattice (Theorem 1), "
        "isomorphic lattices satisfy the same PDs; hence no PD set separates r1 from r2."
    )
    return "\n".join(lines)
