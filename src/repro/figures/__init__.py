"""The paper's figures as executable constructions (Figures 1, 2, 3)."""

from repro.figures import figure1, figure2, figure3
from repro.figures.figure1 import Figure1
from repro.figures.figure2 import Figure2
from repro.figures.figure3 import Figure3

__all__ = ["figure1", "figure2", "figure3", "Figure1", "Figure2", "Figure3"]
