"""Continuous serving end to end: an async client driving the socket server.

Starts a :class:`~repro.service.server.QueryServer` in-process on an
ephemeral port, then acts as several concurrent clients against it:

1. a burst of typed requests from three connections at once — the server's
   micro-batcher windows them *across* connections, so the batch planner's
   amortization survives live traffic while each connection still gets its
   answers in its own order;
2. a ``{"control": "stats"}`` line showing the latency percentiles
   (enqueue → respond, per stage) and window occupancy;
3. a graceful drain — every admitted request is answered before shutdown.

The same JSONL protocol works against a standalone server started with
``python -m repro.service serve --port 8765``; point :func:`client` at it.

Run with ``python examples/async_client.py`` (needs ``src`` on the path,
e.g. ``PYTHONPATH=src``).
"""

import asyncio
import json

from repro.service import (
    QueryServer,
    ServiceConfig,
    dump_request_line,
    implies_request,
    load_result_line,
)


async def client(host: str, port: int, name: str, lines: list[str]) -> list[str]:
    """One connection: send every line, collect one answer per line, in order."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(("".join(line + "\n" for line in lines)).encode())
    await writer.drain()
    writer.write_eof()
    answers = []
    for _ in lines:
        answers.append((await reader.readline()).decode().rstrip("\n"))
    writer.close()
    await writer.wait_closed()
    print(f"  [{name}] {len(answers)} answers, ids in order:",
          [load_result_line(a).id for a in answers])
    return answers


async def _main() -> None:
    theory = ["A = A*B", "B = B*C"]
    config = ServiceConfig(max_wait_ms=10.0, max_batch=32).with_dependencies("; ".join(theory))

    async with QueryServer(config) as server:
        host, port = server.host, server.port
        print(f"== server listening on {host}:{port} ==")

        print("\n== 1. Three concurrent connections, one shared micro-batcher ==")
        streams = [
            [
                dump_request_line(implies_request("A = A*C", id=f"{who}-transitive")),
                dump_request_line(implies_request("C", "C * A", id=f"{who}-converse")),
            ]
            for who in ("alice", "bob", "carol")
        ]
        answers = await asyncio.gather(
            *(client(host, port, who, lines)
              for who, lines in zip(("alice", "bob", "carol"), streams))
        )
        verdicts = {load_result_line(a).id: load_result_line(a).value["implied"]
                    for conn in answers for a in conn}
        print("  verdicts:", verdicts)

        print("\n== 2. The stats control line ==")
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"control":"stats"}\n')
        await writer.drain()
        stats = json.loads(await reader.readline())["stats"]
        writer.close()
        await writer.wait_closed()
        print("  windows:   ", stats["windows"])
        print("  total (ms):", stats["latency_ms"]["total"])

        print("\n== 3. Graceful drain ==")
    # Leaving the `async with` drained the server: listener closed, every
    # admitted request answered, batcher and worker stopped.
    print("  drained; answered =", stats["requests"]["answered"])


def main() -> None:
    asyncio.run(_main())


if __name__ == "__main__":
    main()
