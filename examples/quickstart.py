#!/usr/bin/env python3
"""Quickstart: partition semantics in ten minutes.

This walk-through touches every layer of the library on a tiny employee
database:

1. build relations and a database;
2. state constraints as functional dependencies (FDs) and as partition
   dependencies (PDs) and check satisfaction both ways (Theorem 3);
3. look at the partition semantics explicitly: the canonical interpretation
   ``I(r)``, the meanings of expressions, and the lattice ``L(I)``;
4. run the implication engine (ALG, Theorem 9);
5. run the weak-instance consistency test for a multi-relation database
   (Theorems 6/7/12).

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    FunctionalDependency,
    InterpretationLattice,
    PartitionDependency,
    Relation,
    canonical_interpretation,
    fd_to_pd,
    pd_consistency,
    pd_implies,
    relation_satisfies_pd,
)


def main() -> None:
    # ------------------------------------------------------------------ 1. data
    employees = Relation.from_rows(
        "employees",
        ["Emp", "Mgr", "Dept"],
        [
            {"Emp": "alice", "Mgr": "dana", "Dept": "db"},
            {"Emp": "bob", "Mgr": "dana", "Dept": "db"},
            {"Emp": "carol", "Mgr": "erin", "Dept": "os"},
        ],
    )
    departments = Relation.from_rows(
        "departments",
        ["Dept", "Floor"],
        [
            {"Dept": "db", "Floor": "3"},
            {"Dept": "os", "Floor": "4"},
        ],
    )
    print(employees.to_table())
    print()
    print(departments.to_table())
    print()

    # ---------------------------------------------------- 2. FDs and their PDs
    fd = FunctionalDependency(["Emp"], ["Mgr"])
    pd = fd_to_pd(fd)  # the FPD  Emp = Emp · Mgr
    print(f"FD  {fd}   satisfied: {employees.satisfies_fd(fd)}")
    print(f"PD  {pd}   satisfied: {relation_satisfies_pd(employees, pd)}  (Theorem 3: always agrees)")
    print()

    # ------------------------------------------- 3. the partition semantics view
    interpretation = canonical_interpretation(employees)
    print("Canonical interpretation I(employees): tuples are the population 1..3")
    print(interpretation)
    print()
    print("meaning of Emp       :", interpretation.meaning("Emp"))
    print("meaning of Mgr       :", interpretation.meaning("Mgr"))
    print("meaning of Emp * Mgr :", interpretation.meaning("Emp * Mgr"))
    print("meaning of Mgr + Dept:", interpretation.meaning("Mgr + Dept"))
    lattice = InterpretationLattice.from_interpretation(interpretation)
    print(f"L(I) has {len(lattice)} elements; distributive: {lattice.is_distributive()}")
    print()

    # ------------------------------------------------------- 4. implication (ALG)
    e = ["Emp = Emp*Mgr", "Mgr = Mgr*Dept"]
    query = "Emp = Emp*Dept"
    print(f"E = {e}")
    print(f"E implies {query!r}: {pd_implies(e, query)}   (transitivity, via ALG)")
    connectivity = PartitionDependency.parse("Dept = Emp + Mgr")
    print(f"E implies {str(connectivity)!r}: {pd_implies(e, connectivity)}")
    print()

    # --------------------------------------- 5. consistency of the whole database
    database = Database([employees, departments])
    constraints = ["Emp = Emp*Mgr", "Dept = Dept*Floor", "Mgr = Mgr*Dept"]
    result = pd_consistency(database, constraints)
    print(f"database consistent with {constraints}: {result.consistent}")
    if result.consistent:
        print("one weak instance witnessing it:")
        print(result.weak_instance.to_table())


if __name__ == "__main__":
    main()
