#!/usr/bin/env python3
"""Modelling with partition dependencies: Examples a–d of the paper (§3.2).

The paper motivates PDs with four modelling situations:

* Example a — functional determination: "each employee has one manager",
  written ``A = A·B`` (or ``A ≤ B`` or ``B = B + A``), and — unlike the FD —
  meaningful even when managers exist who manage nobody with an employee
  number (``p_A ⊆ p_B`` rather than ``p_A = p_B``).
* Example b — ISA relationships: "every car is a vehicle" as ``C = C·B``.
* Example c — disjoint union: "every vehicle is a car or a bicycle", written
  ``A = C + B`` when the car and bicycle populations are disjoint.
* Example d — complex objects: "a car is determined by its registration
  number and serial number", i.e. the scheme equation ``Car = Reg · Serial``.

This script builds explicit partition interpretations for each example and
checks the PDs against them, then shows the same constraints at the relation
level.

Run with:  python examples/modelling_with_pds.py
"""

from repro import PartitionInterpretation, Relation, relation_satisfies_pd
from repro.dependencies.conversion import scheme_equation_to_fds


def example_a_functional_determination() -> None:
    print("Example a — employees and managers (functional determination)")
    # Population: 5 individuals. Employees 1-3 (two share employee number e13),
    # individuals 4-5 are managed but have no employee number of their own.
    interpretation = PartitionInterpretation.from_named_blocks(
        {
            "EmpNo": {"e13": {1, 2}, "e14": {3}},
            "MgrNo": {"m7": {1, 2, 3}, "m8": {4, 5}},
        }
    )
    for pd in ("EmpNo = EmpNo * MgrNo", "MgrNo = MgrNo + EmpNo", "EmpNo <= MgrNo"):
        print(f"   I |= {pd:28s}: {interpretation.satisfies_pd(pd)}")
    print(f"   p_EmpNo ⊂ p_MgrNo: {set(interpretation.population('EmpNo')) < set(interpretation.population('MgrNo'))}")
    print("   (managers may manage individuals without employee numbers)")
    print()


def example_b_isa() -> None:
    print("Example b — ISA: every car is a vehicle")
    interpretation = PartitionInterpretation.from_named_blocks(
        {
            "CarReg": {"car1": {1}, "car2": {2}},
            "VehicleReg": {"veh1": {1}, "veh2": {2}, "veh3": {3}},
        }
    )
    print(f"   I |= CarReg = CarReg * VehicleReg: "
          f"{interpretation.satisfies_pd('CarReg = CarReg * VehicleReg')}")
    print("   (the car population is contained in the vehicle population, and each")
    print("    car block determines a vehicle block — ISA as functional determination)")
    print()


def example_c_disjoint_union() -> None:
    print("Example c — every vehicle is a car or a bicycle (disjoint populations)")
    interpretation = PartitionInterpretation.from_named_blocks(
        {
            "Car": {"c1": {1, 2}, "c2": {3}},
            "Bike": {"b1": {4}, "b2": {5, 6}},
            "Vehicle": {"v1": {1, 2}, "v2": {3}, "v3": {4}, "v4": {5, 6}},
        }
    )
    print(f"   I |= Vehicle = Car + Bike: {interpretation.satisfies_pd('Vehicle = Car + Bike')}")
    print("   (+ on disjoint populations is just the union of the block families)")
    print()


def example_d_complex_objects() -> None:
    print("Example d — cars as complex objects: Car = Reg · Serial")
    cars = Relation.from_rows(
        "cars",
        ["Car", "Reg", "Serial"],
        [
            {"Car": "car1", "Reg": "r1", "Serial": "s1"},
            {"Car": "car2", "Reg": "r1", "Serial": "s2"},
            {"Car": "car3", "Reg": "r2", "Serial": "s1"},
        ],
    )
    pd = "Car = Reg * Serial"
    print(f"   r |= {pd}: {relation_satisfies_pd(cars, pd)}")
    # Example f: the same constraint as a pair of FDs.
    fds = scheme_equation_to_fds(["Car"], ["Reg", "Serial"])
    print(f"   equivalently the FDs: {', '.join(str(fd) for fd in fds)}")
    for fd in fds:
        print(f"      r |= {fd}: {fd.is_satisfied_by(cars)}")
    print()


def main() -> None:
    example_a_functional_determination()
    example_b_isa()
    example_c_disjoint_union()
    example_d_complex_objects()


if __name__ == "__main__":
    main()
