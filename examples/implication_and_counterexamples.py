#!/usr/bin/env python3
"""PD implication, identities, and explicit counterexamples (Theorems 8, 9, 10).

The implication engine answers "does E force δ?" in polynomial time.  When it
answers *no*, the library can also construct concrete evidence: a finite
lattice (Theorem 8's ``L_H``) and, for many cases, a finite relation, each
satisfying ``E`` and violating δ.  When ``E`` is empty, the cheaper identity
checker of Theorem 10 applies.

Run with:  python examples/implication_and_counterexamples.py
"""

from repro import (
    ImplicationEngine,
    Relation,
    finite_counterexample,
    identically_equal,
    lattice_identity,
    pd_implies,
    relation_satisfies_pd,
)


def implication_demo() -> None:
    print("1. implication with the incremental ALG engine (Theorem 9)")
    engine = ImplicationEngine(
        ["Account = Account*Customer", "Customer = Customer*Branch", "Region = Branch + Customer"]
    )
    queries = [
        "Account = Account*Branch",      # FD-style transitivity
        "Customer = Customer*Region",    # Customer <= Branch <= ... <= Region via the sum
        "Branch = Branch*Region",
        "Region = Region*Branch",        # Branch+Customer <= Branch since Customer <= Branch
        "Account = Account*Region",
    ]
    # One engine serves the whole query stream: each query only extends the
    # closure with its own new subexpressions instead of recomputing it.
    for query in queries:
        print(f"   E implies {query:32s}: {engine.implies(query)}")
    index = engine.index
    print(f"   closure state: {index.vertex_count} vertices in "
          f"{index.class_count} congruence classes, {index.arc_count()} arcs")

    # The theory itself can grow in place; propagation resumes delta-wise.
    engine.add_dependencies(["Branch = Branch*Account"])
    print("   after adding Branch = Branch*Account:")
    print(f"   E implies Account = Branch           : {engine.implies('Account = Branch')}")
    print(f"   Account and Branch now share a class : "
          f"{index.equivalent('Account', 'Branch')}")
    print()


def identity_demo() -> None:
    print("2. identities (E = empty, Theorem 10)")
    for identity in [
        "A * (A + B) = A",
        "A + (B + C) = (A + B) + C",
        "A * (B + C) = (A*B) + (A*C)",
        "(A*B) + (A*C) = (A*B) + (A*C) + (A * (B + C)) * (A*B + A*C)",
    ]:
        print(f"   {identity:58s}: {lattice_identity(identity)}")
    print(f"   identically_equal('A*B', 'B*A'): {identically_equal('A*B', 'B*A')}")
    print()


def counterexample_demo() -> None:
    print("3. counterexamples for non-implications (Theorem 8)")
    E = ["A = A*B"]
    query = "B = B*A"
    print(f"   E = {E}, query = {query!r}, implied: {pd_implies(E, query)}")

    lattice = finite_counterexample(E, query)
    print(f"   finite lattice counterexample with {len(lattice)} elements:")
    print(f"      satisfies E: {lattice.satisfies_all(E)}, satisfies query: {lattice.satisfies(query)}")

    relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1"])
    print("   finite relation counterexample:")
    print("   " + "\n   ".join(relation.to_table().splitlines()))
    print(f"      r |= E: {relation_satisfies_pd(relation, E[0])}, r |= query: {relation_satisfies_pd(relation, query)}")


def large_counterexample_demo() -> None:
    """A Theorem 8 instance whose L_H is an order of magnitude past the old demo.

    Four attributes drag 36 bounded expressions into the pool and the
    product closure grows L_H to 43 elements.  The class-driven quotient
    pipeline (PR 4) collapses the pool with one congruence-class group-by
    and canonicalizes every product by a dict hit on its class id; the
    seed's pairwise-leq collapse and linear canonicalization scan made this
    region painfully quadratic (see the EXP-LAT quotient-collapse series
    for the isolated gap), and the bitset kernel validates the resulting
    43-element lattice with O(n²) bitset-row comparisons.
    """
    from repro.dependencies.pd import as_partition_dependency
    from repro.lattice import theorem8_pool

    print("4. a larger L_H: four attributes, 43-element countermodel")
    E = ["C = C*D"]
    query = "A = A*B"
    pool = theorem8_pool([as_partition_dependency(pd) for pd in E], as_partition_dependency(query))
    lattice = finite_counterexample(E, query)
    print(f"   E = {E}, query = {query!r}")
    print(f"   Theorem 8 pool: {len(pool)} expressions over 4 attributes")
    print(f"   L_H: {len(lattice)} elements, {len(lattice.covers())} Hasse edges, "
          f"axiom check clean: {not lattice.axiom_violations()}")
    print(f"      satisfies E: {lattice.satisfies_all(E)}, satisfies query: {lattice.satisfies(query)}")


def main() -> None:
    implication_demo()
    identity_demo()
    counterexample_demo()
    large_counterexample_demo()


if __name__ == "__main__":
    main()
