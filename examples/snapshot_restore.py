"""Durable Γ snapshots: warm a session, export, "restart", restore, re-answer.

The full snapshot lifecycle on one small workload:

1. warm a :class:`~repro.service.session.Session` — the ALG implication
   closure, the Theorem 12 normalization artifacts and the result cache all
   materialize as a mixed stream is answered;
2. export the warm state with :meth:`Session.export_snapshot` — one
   canonical, versioned, digest-protected JSON document;
3. simulate a process restart by restoring into a *fresh* session with
   :meth:`Session.restore` (in a real deployment this is ``--snapshot-dir``
   on boot, or a snapshot shipped to shard workers);
4. answer the same stream again and check byte-identity — the restored
   session is indistinguishable from the warm one, and answers arrive from
   the shipped result cache without recomputing anything;
5. watch the codec refuse a corrupted document (the digest catches it).

Run with ``python examples/snapshot_restore.py`` (needs ``src`` on the path,
e.g. ``PYTHONPATH=src``).
"""

import time

from repro.errors import ServiceError
from repro.service import Session, decode_snapshot, dump_result_line, restore_session
from repro.workloads.random_service import random_service_requests


def main() -> None:
    print("== 1. Warm a session on a mixed 60-request stream ==")
    stream = random_service_requests(
        60, seed=19, theory_count=2, pds_per_theory=4, embed_dependencies=False
    )
    warm = Session(["A = A*B", "B = B*C", "C = C + D*E"])
    started = time.perf_counter()
    warm_lines = [dump_result_line(r) for r in warm.execute_many(stream)]
    cold_seconds = time.perf_counter() - started
    print(f"  answered {len(warm_lines)} requests cold in {cold_seconds * 1000:.1f} ms")
    print(f"  cache: {warm.cache_info()}")

    print("\n== 2. Export the warm Γ state ==")
    snapshot = warm.export_snapshot()
    payload = decode_snapshot(snapshot)
    print(f"  snapshot: {len(snapshot)} bytes, version {payload['v']},")
    print(f"  digest {payload['digest'][:16]}…, generation {payload['generation']},")
    print(
        f"  {len(payload['index']['expressions'])} index vertices, "
        f"{len(payload['results'])} cached results"
    )

    print("\n== 3. 'Restart': restore into a fresh process-equivalent session ==")
    started = time.perf_counter()
    restored = restore_session(snapshot, expected_generation=warm.generation)
    restore_seconds = time.perf_counter() - started
    print(f"  restored in {restore_seconds * 1000:.1f} ms (zero-warmup boot)")

    print("\n== 4. Re-answer the same stream ==")
    started = time.perf_counter()
    restored_lines = [dump_result_line(r) for r in restored.execute_many(stream)]
    replay_seconds = time.perf_counter() - started
    print(f"  byte-identical to the warm session: {restored_lines == warm_lines}")
    print(
        f"  answered from the shipped cache in {replay_seconds * 1000:.1f} ms "
        f"({restored.cache_info()['hits']} hits, {restored.cache_info()['misses']} misses)"
    )

    print("\n== 5. Corruption is refused before anything is rebuilt ==")
    corrupted = snapshot.replace('"generation":0', '"generation":1', 1)
    try:
        restore_session(corrupted)
    except ServiceError as exc:
        print(f"  ServiceError: {str(exc)[:80]}…")


if __name__ == "__main__":
    main()
