#!/usr/bin/env python3
"""Weak instances and consistency: Theorems 6, 7, 12 on a multi-relation database.

A hospital keeps three relations that never mention all attributes at once.
Partition semantics (equivalently, the weak instance assumption) lets us ask
whether the three relations *could* come from one consistent world:

* the open-world test (Theorem 12 / Honeyman's chase) runs in polynomial time
  and also returns a witnessing weak instance;
* the closed-world variant (CAD + EAP, Theorem 6b) forbids inventing new
  symbols and is NP-complete; on this example the two verdicts differ, which
  is exactly the gap §6 of the paper is about.

Run with:  python examples/weak_instance_consistency.py
"""

from repro import Database, Relation, cad_consistency, pd_consistency
from repro.consistency.normalization import validate_only_fpds
from repro.relational.weak_instance import is_weak_instance


def build_database() -> Database:
    admissions = Relation.from_rows(
        "admissions",
        ["Patient", "Ward"],
        [
            {"Patient": "p1", "Ward": "w_cardio"},
            {"Patient": "p2", "Ward": "w_cardio"},
            {"Patient": "p3", "Ward": "w_neuro"},
        ],
    )
    staffing = Relation.from_rows(
        "staffing",
        ["Ward", "Doctor"],
        [
            {"Ward": "w_cardio", "Doctor": "dr_ada"},
            {"Ward": "w_neuro", "Doctor": "dr_bo"},
        ],
    )
    treatments = Relation.from_rows(
        "treatments",
        ["Patient", "Doctor"],
        [
            {"Patient": "p1", "Doctor": "dr_ada"},
            {"Patient": "p3", "Doctor": "dr_bo"},
        ],
    )
    return Database([admissions, staffing, treatments])


def main() -> None:
    database = build_database()
    for relation in database:
        print(relation.to_table())
        print()

    constraints = [
        "Patient = Patient * Ward",   # every patient is in one ward
        "Ward = Ward * Doctor",       # every ward has one responsible doctor
        "Patient = Patient * Doctor", # every patient has one responsible doctor
    ]
    print("constraints (FPDs):")
    for fd in validate_only_fpds(constraints):
        print(f"   {fd}")
    print()

    result = pd_consistency(database, constraints)
    print(f"open-world consistency (Theorem 12): {result.consistent}")
    if result.consistent:
        witness = result.weak_instance
        print("   witnessing weak instance (chased representative instance):")
        print("   " + "\n   ".join(witness.to_table().splitlines()))
        print(f"   is a weak instance for the database: {is_weak_instance(witness, database)}")
        print(f"   satisfies all the FDs: {all(fd.is_satisfied_by(witness) for fd in result.normalized.fds)}")
    print()

    cad = cad_consistency(database, validate_only_fpds(constraints))
    print(f"closed-world consistency (CAD + EAP, Theorem 6b / 11): {cad.consistent}")
    print(f"   search nodes explored by the exact solver: {cad.search_nodes}")
    if cad.consistent and cad.witness is not None:
        print("   witness (no invented symbols):")
        print("   " + "\n   ".join(cad.witness.to_table().splitlines()))
    print()

    # Make the database inconsistent: p2 is treated by dr_bo although admitted
    # to cardiology, whose responsible doctor is dr_ada.
    broken = database.with_relation(
        Relation.from_rows(
            "treatments",
            ["Patient", "Doctor"],
            [
                {"Patient": "p1", "Doctor": "dr_ada"},
                {"Patient": "p2", "Doctor": "dr_bo"},
                {"Patient": "p3", "Doctor": "dr_bo"},
            ],
        )
    )
    broken_result = pd_consistency(broken, constraints)
    print(f"after the conflicting treatment row, open-world consistency: {broken_result.consistent}")
    print("   (the chase tries to equate dr_ada with dr_bo and reports the clash)")


if __name__ == "__main__":
    main()
