"""Observability end-to-end: trace trees, kernel counters, the metrics registry.

The telemetry layer watches the service without changing it — trace ids stay
out of cache keys and results, and a traced stream answers byte-identically
to an untraced one.  This walk covers the whole surface:

1. kernel profiling counters, ticked on the deadline-check sites inside a
   ``profiling.profile()`` scope;
2. a traced file-mode stream: per-request span trees (root → plan / execute
   / respond), the per-work-unit cost log, and the ``--metrics-dir`` dump;
3. the unified metrics registry export (canonical JSON);
4. byte-identity of the traced run against an untraced one.

Run with ``python examples/observability.py`` (needs ``src`` on the path,
e.g. ``PYTHONPATH=src``).
"""

import json
import tempfile
from pathlib import Path

from repro import profiling
from repro.relational.database import Database
from repro.relational.relations import Relation
from repro.service import Session, ServiceConfig, consistent_request, telemetry
from repro.service.cli import serve_lines
from repro.service.wire import requests_to_jsonl
from repro.workloads.random_service import random_service_requests


def main() -> None:
    print("== 1. Kernel profiling counters ==")
    session = Session(["A = A*B", "B = B*C"])
    database = Database([Relation.from_strings("R", "ABC", ["a.b.c", "a.b2.c", "a2.b.c2"])])
    request = consistent_request(database, dependencies=["A = A*B"], id="probe")
    with profiling.profile() as prof:
        result = session.execute(request)
    print(f"  consistent: ok={result.ok} value={result.value}")
    print(f"  kernel counters: {prof.as_dict()}")

    print("\n== 2. A traced stream with a metrics directory ==")
    requests = random_service_requests(
        40, seed=7, kind_weights={"implies": 5, "consistent": 3, "counterexample": 1}
    )
    lines = requests_to_jsonl(requests).strip().split("\n")
    untraced, _ = serve_lines(lines, config=ServiceConfig())
    with tempfile.TemporaryDirectory() as directory:
        traced, _ = serve_lines(
            lines, config=ServiceConfig(trace=True, metrics_dir=directory)
        )
        spans = [json.loads(l) for l in (Path(directory) / "trace.jsonl").open()]
        cost = [json.loads(l) for l in (Path(directory) / "costlog.jsonl").open()]
        metrics = [json.loads(l) for l in (Path(directory) / "metrics.jsonl").open()]
    telemetry.reset()

    roots = [s for s in spans if s["span"].endswith(".r")]
    print(f"  {len(spans)} spans recorded, {len(roots)} request roots")
    root = roots[0]
    children = [s for s in spans if s.get("parent") == root["span"]]
    print(f"  one tree: root {root['span']} ({root['attrs']['kind']}, ok={root['attrs']['ok']})")
    for child in sorted(children, key=lambda s: s["start_ms"]):
        print(f"    └─ {child['name']:<9} {child['duration_ms']:.3f} ms")

    print(f"\n  {len(cost)} work-unit cost records; the busiest:")
    busiest = max(cost, key=lambda r: sum(r["kernel"].values()))
    print(f"    {json.dumps(busiest)}")

    print("\n== 3. The unified metrics document ==")
    counters = metrics[-1]["counters"]
    for name in sorted(counters):
        print(f"  {name} = {counters[name]}")

    print("\n== 4. Telemetry never changes an answer ==")
    print(f"  traced result lines == untraced result lines: {traced == untraced}")


if __name__ == "__main__":
    main()
