#!/usr/bin/env python3
"""The NP-completeness frontier: Theorem 11's NAE-3SAT reduction, end to end.

This example shows both directions of Theorem 11's reduction in action:

1. take a NOT-ALL-EQUAL-3SAT formula, reduce it to a CAD+EAP consistency
   instance (database + FPDs), solve the instance exactly, and decode the
   witness back into a truth assignment;
2. compare against the direct NAE-3SAT solvers;
3. print the Figure 3 instance (the paper's n = 4 illustration);
4. sweep a few formula sizes to make the exponential growth of the exact
   solver visible (the full sweep lives in benchmarks/bench_cad.py).

Run with:  python examples/np_completeness_reduction.py
"""

import time

from repro import CnfFormula, nae_backtracking, reduce_nae3sat_to_cad_consistency, cad_consistency
from repro.consistency.reduction import decode_assignment, solve_nae3sat_via_reduction
from repro.figures import figure3
from repro.workloads.random_formulas import random_3cnf


def round_trip_demo() -> None:
    print("1. reduction round trip")
    formula = CnfFormula.of(
        [["x1", "x2", "~x3"], ["~x1", "x3", "x4"], ["x2", "~x4", "x1"]]
    )
    print(f"   formula: {formula}")
    instance = reduce_nae3sat_to_cad_consistency(formula)
    database = instance.database
    print(
        f"   reduced instance: {len(database)} relations, "
        f"{database.total_tuples()} tuples, {len(instance.fds)} FDs, "
        f"{len(database.universe)} attributes"
    )
    result = cad_consistency(database, list(instance.fds))
    print(f"   CAD-consistent: {result.consistent} (search nodes: {result.search_nodes})")
    assignment = decode_assignment(instance, result)
    print(f"   decoded assignment: {assignment}")
    direct = nae_backtracking(formula)
    print(f"   direct NAE solver agrees it is satisfiable: {direct is not None}")
    restricted = {variable: assignment[variable] for variable in formula.variables}
    print(f"   decoded assignment NAE-satisfies the formula: {formula.nae_evaluate(restricted)}")
    print()


def figure3_demo() -> None:
    print("2. the paper's Figure 3 instance")
    print("   " + "\n   ".join(figure3.report().splitlines()))
    print()


def scaling_preview() -> None:
    print("3. exponential growth of the exact CAD solver (preview of bench_cad.py)")
    print(f"   {'variables':>10} {'clauses':>8} {'consistent':>11} {'nodes':>8} {'seconds':>9}")
    for variables in (3, 4, 5, 6):
        formula = random_3cnf(variables, 2 * variables, seed=variables)
        start = time.perf_counter()
        assignment = solve_nae3sat_via_reduction(formula)
        elapsed = time.perf_counter() - start
        instance = reduce_nae3sat_to_cad_consistency(formula)
        result = cad_consistency(instance.database, list(instance.fds))
        print(
            f"   {variables:>10} {2 * variables:>8} {str(result.consistent):>11} "
            f"{result.search_nodes:>8} {elapsed:>9.3f}"
        )
        assert (assignment is not None) == result.consistent


def main() -> None:
    round_trip_demo()
    figure3_demo()
    scaling_preview()


if __name__ == "__main__":
    main()
