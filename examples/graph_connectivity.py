#!/usr/bin/env python3
"""Connectivity with partition dependencies: Example e and Theorem 4.

FDs (and, more generally, first-order constraints) cannot talk about
connected components; the PD ``C = A + B`` can.  This script:

1. encodes a small social-network graph as the Example e relation and checks
   ``C = A + B`` three ways (canonical interpretation, direct chain
   characterization, one-directional order);
2. shows what happens when the component column is wrong;
3. replays the Theorem 4 intuition: the path relations ``r_i`` need chains of
   unbounded length, which is why no first-order sentence can express the PD.

Run with:  python examples/graph_connectivity.py
"""

from repro import graph_to_relation, satisfies_connectivity_pd, theorem4_path_relation
from repro.graphs.connectivity import components_by_partition_sum
from repro.graphs.encoding import graph_to_relation_with_labels
from repro.graphs.families import theorem4_designated_tuples


def friendship_components() -> None:
    print("1. friend groups as connected components")
    people = ["ann", "ben", "cho", "dee", "eli", "fay"]
    friendships = [{"ann", "ben"}, {"ben", "cho"}, {"dee", "eli"}]
    relation = graph_to_relation(people, friendships, name="friends")
    print(relation.to_table())
    print(f"   C = A + B holds (canonical):  {satisfies_connectivity_pd(relation, 'canonical')}")
    print(f"   C = A + B holds (direct):     {satisfies_connectivity_pd(relation, 'direct')}")
    print(f"   number of components: {components_by_partition_sum(relation).block_count()}")
    print()

    print("2. a wrong component column is detected")
    wrong_labels = {person: "one_big_group" for person in people}
    mislabeled = graph_to_relation_with_labels(people, friendships, wrong_labels, name="friends_bad")
    print(f"   C = A + B holds:  {satisfies_connectivity_pd(mislabeled, 'direct')}")
    print(f"   C <= A + B holds: {satisfies_connectivity_pd(mislabeled, 'order')}")
    print("   (one C value spans three separate components, so tuples agreeing on C")
    print("    need not be chain-connected: both the equality and the order PD fail)")
    print()


def theorem4_chains() -> None:
    print("3. Theorem 4: the chains needed to verify C = A + B grow without bound")
    for i in (2, 4, 8, 16):
        relation = theorem4_path_relation(i)
        first, last = theorem4_designated_tuples(i)
        holds = satisfies_connectivity_pd(relation, "direct")
        print(
            f"   r_{i:<3d}: {len(relation):3d} tuples, designated tuples {first} and {last}, "
            f"C = A + B holds: {holds}"
        )
    print("   A first-order sentence can only inspect a bounded neighbourhood of tuples,")
    print("   so by compactness no set of first-order sentences expresses C = A + B.")


def main() -> None:
    friendship_components()
    theorem4_chains()


if __name__ == "__main__":
    main()
