"""Query deadlines end-to-end: budgets on the wire, typed timeouts in the API.

The decision procedures behind the service are super-polynomial in the worst
case, so a production deployment bounds each query instead of trusting it:

1. attach ``deadline_ms`` to a request (wire version 2) — the kernels check
   the budget cooperatively at every unit of search work;
2. a request that finishes in time answers normally: the deadline changes
   *when* a query may fail, never *what* it answers;
3. a request that blows its budget comes back as a typed ``Timeout`` error
   result, and the typed client API raises
   :class:`~repro.errors.QueryTimeoutError` — co-batched requests are
   unaffected;
4. the same budget machinery is reusable directly via
   :func:`~repro.deadline.deadline_scope` around any kernel call.

The slow query is simulated with the deterministic fault-injection harness
(:mod:`repro.service.faults`) — the same seeded plans the chaos tests and the
CI fault smoke job use.

Run with ``python examples/deadline_timeout.py`` (needs ``src`` on the path,
e.g. ``PYTHONPATH=src``).
"""

from repro.deadline import deadline_scope
from repro.errors import DeadlineExceeded, QueryTimeoutError
from repro.lattice.quotient import finite_counterexample
from repro.service import (
    Fault,
    FaultPlan,
    Session,
    answer_for,
    clear_fault_plan,
    counterexample_request,
    implies_request,
    install_fault_plan,
)


def main() -> None:
    session = Session(["A = A*B", "B = B*C"])

    print("== 1. A budgeted request that finishes in time ==")
    request = implies_request("A = A*C", id="fast", deadline_ms=5_000)
    result = session.execute(request)
    print(f"  {request.id}: ok={result.ok} value={result.value} (budget 5000 ms)")

    print("\n== 2. A slow query blows its budget ==")
    # Simulate a pathological counterexample search with a deterministic
    # fault plan: 10 s of injected latency against a 150 ms budget.
    plan = FaultPlan(
        seed=11, faults=(Fault(kind="delay", request_id="slow", delay_ms=10_000.0),)
    )
    install_fault_plan(plan)
    try:
        slow = counterexample_request("A = A*D", id="slow", deadline_ms=150)
        fast = implies_request("C = C*A", id="neighbor")
        timed_out, neighbor = session.execute_many([slow, fast])
        print(f"  {slow.id}: ok={timed_out.ok} error={timed_out.error}")
        print(f"  {fast.id}: ok={neighbor.ok} (co-batched request unaffected)")

        print("\n== 3. The typed API raises QueryTimeoutError ==")
        try:
            answer_for(timed_out)
        except QueryTimeoutError as exc:
            print(f"  QueryTimeoutError: {exc}")
    finally:
        clear_fault_plan()

    print("\n== 4. deadline_scope around a kernel call directly ==")
    with deadline_scope(0.0):  # an already-expired budget
        try:
            finite_counterexample(["A = A*B"], "C = C*D")
        except DeadlineExceeded as exc:
            print(f"  DeadlineExceeded: {exc}")


if __name__ == "__main__":
    main()
