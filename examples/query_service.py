"""The query service end to end: sessions, wire codecs, the planner and shards.

Walks the four layers of ``repro.service`` on one small workload:

1. a stateful :class:`~repro.service.session.Session` answering uniform
   ``QueryRequest → QueryResult`` calls over a growing Γ (watch the result
   cache invalidate when Γ grows);
2. the wire codecs — the exact JSONL a deployment would ship;
3. the batch planner regrouping a mixed stream;
4. the multiprocess shard executor producing byte-identical results.

Run with ``python examples/query_service.py`` (needs ``src`` on the path,
e.g. ``PYTHONPATH=src``).
"""

from repro.dependencies.pd import PartitionDependency
from repro.service import (
    QueryRequest,
    Session,
    ShardExecutor,
    dump_request_line,
    dump_result_line,
    execute_plan,
    plan_summary,
)
from repro.workloads.random_service import random_service_requests


def main() -> None:
    print("== 1. A stateful session over Γ = {A = A·B, B = B·C} ==")
    session = Session(["A = A*B", "B = B*C"])
    transitive = QueryRequest(kind="implies", id="t", query=PartitionDependency.parse("A = A*C"))
    print("  A = A*C implied? ", session.execute(transitive).value)

    novel = QueryRequest(kind="implies", id="n", query=PartitionDependency.parse("A = A*D"))
    print("  A = A*D implied? ", session.execute(novel).value)
    session.add_dependencies(["C = C*D"])  # Γ grows: base-Γ cache entries evicted
    after = session.execute(novel)
    print("  ... after adding C = C*D:", after.value, f"(cached={after.cached})")

    print("\n== 2. The wire format (one JSONL line per request/result) ==")
    print("  request: ", dump_request_line(transitive))
    print("  result:  ", dump_result_line(session.execute(transitive)))

    print("\n== 3. A mixed 40-request stream through the batch planner ==")
    stream = random_service_requests(40, seed=11, theory_count=2, pds_per_theory=3)
    print("  plan:", plan_summary(stream))
    fresh = Session()
    results = execute_plan(fresh, stream)
    ok = sum(1 for r in results if r.ok)
    print(f"  answered {len(results)} requests ({ok} ok); cache: {fresh.cache_info()}")

    print("\n== 4. The same stream across 2 worker processes ==")
    with ShardExecutor(shards=2) as executor:
        sharded = executor.execute(stream)
    identical = [dump_result_line(a) for a in results] == [dump_result_line(b) for b in sharded]
    print(f"  byte-identical to the in-process run: {identical}")


if __name__ == "__main__":
    main()
