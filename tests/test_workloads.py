"""Tests for repro.workloads: generators are deterministic, well-formed, and sized as asked."""

from repro.relational.weak_instance import is_weak_instance
from repro.workloads.random_dependencies import random_fd_set, random_fpd_set, random_pd_set
from repro.workloads.random_expressions import (
    random_expression,
    random_expression_of_exact_complexity,
)
from repro.workloads.random_formulas import random_3cnf, random_nae_satisfiable_3cnf
from repro.workloads.random_graphs import random_graph_relation, random_sparse_forest_relation
from repro.workloads.random_relations import (
    attribute_names,
    random_consistent_database,
    random_database,
    random_functional_relation,
    random_relation,
)
from repro.relational.functional_dependencies import FunctionalDependency
from repro.sat.nae3sat import nae_brute_force


class TestRelationsAndDatabases:
    def test_attribute_names_are_distinct(self):
        names = attribute_names(30)
        assert len(names) == 30 and len(set(names)) == 30

    def test_random_relation_shape(self):
        relation = random_relation(4, 10, domain_size=3, seed=1)
        assert len(relation.attributes) == 4
        assert 1 <= len(relation) <= 10  # duplicates may collapse

    def test_random_relation_deterministic(self):
        assert random_relation(3, 5, seed=9) == random_relation(3, 5, seed=9)
        assert random_relation(3, 5, seed=9) != random_relation(3, 5, seed=10)

    def test_random_functional_relation_satisfies_fd(self):
        relation = random_functional_relation(4, 12, determinant="A", seed=3)
        assert relation.satisfies_fd(FunctionalDependency("A", "BCD"))

    def test_random_database_shape(self):
        database = random_database(3, 6, 3, 4, seed=2)
        assert len(database) == 3
        assert len(database.universe) <= 6

    def test_random_consistent_database_has_weak_instance(self):
        database, hidden = random_consistent_database(3, 5, 3, 3, seed=4)
        assert is_weak_instance(hidden, database)


class TestDependencyAndExpressionGenerators:
    def test_random_fd_set_size_and_determinism(self):
        fds = random_fd_set(5, 7, seed=1)
        assert len(fds) == 7
        assert fds == random_fd_set(5, 7, seed=1)

    def test_random_pd_set(self):
        pds = random_pd_set(4, 5, seed=2, max_complexity=2)
        assert len(pds) == 5
        assert all(pd.complexity() <= 4 for pd in pds)

    def test_random_fpd_set_is_functional(self):
        assert all(pd.is_functional() for pd in random_fpd_set(4, 6, seed=3))

    def test_random_expression_complexity_bound(self):
        expression = random_expression(["A", "B"], seed=5, max_complexity=3)
        assert expression.complexity() <= 3

    def test_exact_complexity(self):
        for k in range(0, 5):
            expression = random_expression_of_exact_complexity(["A", "B", "C"], k, seed=k)
            assert expression.complexity() == k

    def test_product_bias_extremes(self):
        pure_product = random_expression(["A", "B"], seed=8, max_complexity=4, product_bias=1.0)
        assert pure_product.is_product_of_attributes()


class TestGraphAndFormulaGenerators:
    def test_random_graph_relation_satisfies_connectivity_pd(self):
        from repro.graphs.connectivity import satisfies_connectivity_pd

        relation = random_graph_relation(8, 0.3, seed=1)
        assert satisfies_connectivity_pd(relation, method="direct")

    def test_random_forest_relation_satisfies_connectivity_pd(self):
        from repro.graphs.connectivity import satisfies_connectivity_pd

        relation = random_sparse_forest_relation(10, seed=2)
        assert satisfies_connectivity_pd(relation, method="direct")

    def test_random_3cnf_shape(self):
        formula = random_3cnf(5, 8, seed=1)
        assert len(formula) == 8
        assert formula.is_3cnf()
        assert all(len(clause.variables) == 3 for clause in formula)

    def test_random_3cnf_improper_allows_repeats(self):
        formula = random_3cnf(2, 6, seed=3, proper=False)
        assert formula.is_3cnf()

    def test_planted_formula_is_nae_satisfiable(self):
        for seed in range(3):
            formula = random_nae_satisfiable_3cnf(5, 6, seed=seed)
            assert nae_brute_force(formula) is not None


class TestZipfMultitenantStream:
    def _stream(self, count=300, **kwargs):
        from repro.workloads.random_service import zipf_multitenant_requests

        defaults = dict(seed=11, tenants=20, skew=1.2, pool_per_tenant=3)
        defaults.update(kwargs)
        return zipf_multitenant_requests(count, **defaults)

    def test_deterministic_per_seed_with_stream_ids(self):
        first, second = self._stream(), self._stream()
        assert first == second
        assert [request.id for request in first] == [f"q{i}" for i in range(300)]
        assert self._stream(seed=12) != first

    def test_zipf_head_dominates(self):
        from collections import Counter

        counts = Counter(request.tenant for request in self._stream())
        assert set(counts) <= {f"t{i}" for i in range(1, 21)}
        # Rank 1 is the hottest tenant and beats the tail decisively.
        assert counts["t1"] == max(counts.values())
        assert counts["t1"] > 3 * counts.get("t20", 0)

    def test_skew_zero_is_roughly_uniform(self):
        from collections import Counter

        counts = Counter(
            request.tenant for request in self._stream(count=2000, skew=0.0, tenants=4)
        )
        assert all(350 < counts[f"t{i}"] < 650 for i in range(1, 5))

    def test_draws_come_from_fixed_per_tenant_pools(self):
        from repro.service.wire import request_cache_key

        stream = self._stream(count=400, tenants=10, pool_per_tenant=2)
        keys = {request.tenant: set() for request in stream}
        for request in stream:
            keys[request.tenant].add(request_cache_key(request))
        # Each tenant re-asks from its own fixed pool: at most 2 distinct slots.
        assert all(len(slots) <= 2 for slots in keys.values())

    def test_requests_mix_kinds_and_stay_self_contained(self):
        kinds = {request.kind for request in self._stream()}
        assert len(kinds) >= 3
        for request in self._stream(count=50):
            assert request.dependencies is not None or request.kind == "fd_implies"

    def test_weights_and_validation(self):
        import pytest

        from repro.workloads.random_service import zipf_tenant_weights

        weights = zipf_tenant_weights(4, 1.0)
        assert weights == [1.0, 0.5, 1 / 3, 0.25]
        assert zipf_tenant_weights(3, 0.0) == [1.0, 1.0, 1.0]
        with pytest.raises(ValueError):
            zipf_tenant_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_tenant_weights(5, -0.1)
        with pytest.raises(ValueError):
            self._stream(count=-1)
        with pytest.raises(ValueError):
            self._stream(pool_per_tenant=0)
