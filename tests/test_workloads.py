"""Tests for repro.workloads: generators are deterministic, well-formed, and sized as asked."""

from repro.relational.weak_instance import is_weak_instance
from repro.workloads.random_dependencies import random_fd_set, random_fpd_set, random_pd_set
from repro.workloads.random_expressions import (
    random_expression,
    random_expression_of_exact_complexity,
)
from repro.workloads.random_formulas import random_3cnf, random_nae_satisfiable_3cnf
from repro.workloads.random_graphs import random_graph_relation, random_sparse_forest_relation
from repro.workloads.random_relations import (
    attribute_names,
    random_consistent_database,
    random_database,
    random_functional_relation,
    random_relation,
)
from repro.relational.functional_dependencies import FunctionalDependency
from repro.sat.nae3sat import nae_brute_force


class TestRelationsAndDatabases:
    def test_attribute_names_are_distinct(self):
        names = attribute_names(30)
        assert len(names) == 30 and len(set(names)) == 30

    def test_random_relation_shape(self):
        relation = random_relation(4, 10, domain_size=3, seed=1)
        assert len(relation.attributes) == 4
        assert 1 <= len(relation) <= 10  # duplicates may collapse

    def test_random_relation_deterministic(self):
        assert random_relation(3, 5, seed=9) == random_relation(3, 5, seed=9)
        assert random_relation(3, 5, seed=9) != random_relation(3, 5, seed=10)

    def test_random_functional_relation_satisfies_fd(self):
        relation = random_functional_relation(4, 12, determinant="A", seed=3)
        assert relation.satisfies_fd(FunctionalDependency("A", "BCD"))

    def test_random_database_shape(self):
        database = random_database(3, 6, 3, 4, seed=2)
        assert len(database) == 3
        assert len(database.universe) <= 6

    def test_random_consistent_database_has_weak_instance(self):
        database, hidden = random_consistent_database(3, 5, 3, 3, seed=4)
        assert is_weak_instance(hidden, database)


class TestDependencyAndExpressionGenerators:
    def test_random_fd_set_size_and_determinism(self):
        fds = random_fd_set(5, 7, seed=1)
        assert len(fds) == 7
        assert fds == random_fd_set(5, 7, seed=1)

    def test_random_pd_set(self):
        pds = random_pd_set(4, 5, seed=2, max_complexity=2)
        assert len(pds) == 5
        assert all(pd.complexity() <= 4 for pd in pds)

    def test_random_fpd_set_is_functional(self):
        assert all(pd.is_functional() for pd in random_fpd_set(4, 6, seed=3))

    def test_random_expression_complexity_bound(self):
        expression = random_expression(["A", "B"], seed=5, max_complexity=3)
        assert expression.complexity() <= 3

    def test_exact_complexity(self):
        for k in range(0, 5):
            expression = random_expression_of_exact_complexity(["A", "B", "C"], k, seed=k)
            assert expression.complexity() == k

    def test_product_bias_extremes(self):
        pure_product = random_expression(["A", "B"], seed=8, max_complexity=4, product_bias=1.0)
        assert pure_product.is_product_of_attributes()


class TestGraphAndFormulaGenerators:
    def test_random_graph_relation_satisfies_connectivity_pd(self):
        from repro.graphs.connectivity import satisfies_connectivity_pd

        relation = random_graph_relation(8, 0.3, seed=1)
        assert satisfies_connectivity_pd(relation, method="direct")

    def test_random_forest_relation_satisfies_connectivity_pd(self):
        from repro.graphs.connectivity import satisfies_connectivity_pd

        relation = random_sparse_forest_relation(10, seed=2)
        assert satisfies_connectivity_pd(relation, method="direct")

    def test_random_3cnf_shape(self):
        formula = random_3cnf(5, 8, seed=1)
        assert len(formula) == 8
        assert formula.is_3cnf()
        assert all(len(clause.variables) == 3 for clause in formula)

    def test_random_3cnf_improper_allows_repeats(self):
        formula = random_3cnf(2, 6, seed=3, proper=False)
        assert formula.is_3cnf()

    def test_planted_formula_is_nae_satisfiable(self):
        for seed in range(3):
            formula = random_nae_satisfiable_3cnf(5, 6, seed=seed)
            assert nae_brute_force(formula) is not None
