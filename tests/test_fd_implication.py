"""Tests for repro.implication.fd_implication and word_problems (§5.3)."""

import random

from repro.implication.fd_implication import (
    ArmstrongDerivation,
    closure_sequence,
    derive_fd,
    fd_closure,
    fd_implies,
    fd_implies_all_via_pds,
    fd_implies_via_pds,
    is_superkey,
)
from repro.implication.word_problems import (
    fd_implication_as_semigroup_problem,
    lattice_identity,
    lattice_word_problem,
    lattice_word_problems,
    semigroup_word_problem,
)
from repro.relational.attributes import AttributeSet
from repro.relational.functional_dependencies import FunctionalDependency, parse_fd_set
from repro.workloads.random_dependencies import random_fd_set


class TestArmstrongDerivations:
    def test_derivation_exists_iff_implied(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        assert derive_fd(fds, FunctionalDependency("A", "C")) is not None
        assert derive_fd(fds, FunctionalDependency("C", "A")) is None

    def test_derivations_check(self):
        rng = random.Random(3)
        for trial in range(15):
            fds = random_fd_set(4, rng.randint(1, 4), seed=rng.randint(0, 10**6), max_side=2)
            target = random_fd_set(4, 1, seed=rng.randint(0, 10**6), max_side=2)[0]
            derivation = derive_fd(fds, target)
            if fd_implies(fds, target):
                assert derivation is not None
                assert derivation.check(), str(derivation)
                assert derivation.conclusion == target
            else:
                assert derivation is None

    def test_trivial_fd_derivation(self):
        derivation = derive_fd([], FunctionalDependency("AB", "A"))
        assert derivation is not None and derivation.check()

    def test_manual_bad_derivation_rejected(self):
        derivation = ArmstrongDerivation()
        derivation.add(FunctionalDependency("A", "B"), "transitivity", ())
        assert not derivation.check()

    def test_forward_reference_rejected(self):
        derivation = ArmstrongDerivation()
        derivation.add(FunctionalDependency("A", "A"), "reflexivity", (1,))
        assert not derivation.check()


class TestClosureHelpers:
    def test_closure_sequence_is_increasing_and_ends_at_closure(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        sequence = closure_sequence("A", fds)
        assert sequence[0] == AttributeSet("A")
        assert sequence[-1] == fd_closure("A", fds)
        assert all(earlier <= later for earlier, later in zip(sequence, sequence[1:]))

    def test_is_superkey(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        assert is_superkey("A", "ABC", fds)
        assert not is_superkey("B", "ABC", fds)


class TestSection53Correspondences:
    def test_fd_implication_via_pds_agrees(self):
        rng = random.Random(5)
        for trial in range(15):
            fds = random_fd_set(4, rng.randint(1, 3), seed=rng.randint(0, 10**6), max_side=2)
            target = random_fd_set(4, 1, seed=rng.randint(0, 10**6), max_side=2)[0]
            assert fd_implies_via_pds(fds, target) == fd_implies(fds, target)

    def test_batched_fd_implication_agrees_with_per_target(self):
        rng = random.Random(7)
        for trial in range(8):
            fds = random_fd_set(4, rng.randint(1, 4), seed=rng.randint(0, 10**6), max_side=2)
            targets = random_fd_set(4, 6, seed=rng.randint(0, 10**6), max_side=2)
            batched = fd_implies_all_via_pds(fds, targets)
            assert batched == [fd_implies(fds, target) for target in targets]

    def test_batched_lattice_word_problems_agree(self):
        equations = [("A", "A*B"), ("B", "B*C")]
        queries = [("A", "A*C"), ("C", "C*A"), ("A*B", "B*A")]
        batched = lattice_word_problems(equations, queries)
        assert batched == [
            lattice_word_problem(equations, query) for query in queries
        ]

    def test_semigroup_word_problem_basic(self):
        equations = [("A", "A*B"), ("B", "B*C")]
        assert semigroup_word_problem(equations, ("A", "A*C"))
        assert not semigroup_word_problem(equations, ("C", "C*A"))

    def test_semigroup_word_problem_with_sets(self):
        assert semigroup_word_problem([({"A"}, {"A", "B"})], ({"A"}, {"A", "B"}))

    def test_fd_implication_as_semigroup_problem_agrees(self):
        rng = random.Random(9)
        for trial in range(15):
            fds = random_fd_set(4, rng.randint(1, 3), seed=rng.randint(0, 10**6), max_side=2)
            target = random_fd_set(4, 1, seed=rng.randint(0, 10**6), max_side=2)[0]
            assert fd_implication_as_semigroup_problem(fds, target) == fd_implies(fds, target)

    def test_lattice_word_problem_wrapper(self):
        assert lattice_word_problem(["A = A*B", "B = B*C"], "A = A*C")
        assert lattice_word_problem([("A", "B")], ("B", "A"))
        assert not lattice_word_problem(["A = A*B"], "B = B*A")

    def test_lattice_identity_wrapper(self):
        assert lattice_identity("A * (A + B) = A")
        assert not lattice_identity("A * (B + C) = (A*B) + (A*C)")
